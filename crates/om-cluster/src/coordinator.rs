//! The coordinator: the `/v1` API served by distributed merge.
//!
//! A [`Coordinator`] implements `om_server::ops::EngineOps` — the same
//! seam the resident single-node backend implements — by fanning every
//! operation out to its shard processes and merging their partials:
//!
//! * **Replicated partitions.** The topology is `partitions x replicas`
//!   shard processes: `shard_addrs` lists them partition-block by
//!   partition-block, and [`crate::router::replica_set`] maps each
//!   partition to its ordered replica set. With `replicas == 1` (the
//!   default) every behavior below degenerates to the unreplicated
//!   cluster, byte for byte.
//! * **Epoch pinning.** Every store-backed read (compare, GI, slice,
//!   batch) first pins one published generation per *partition*, then
//!   fetches each partition's full store *at that pinned generation*
//!   (`/internal/store?expect=G`). A replica that republished in
//!   between answers `409` and the whole read re-pins — a merged store
//!   can therefore never mix generations. Replicas of a partition seal
//!   at identical row counts, so a generation names the same store
//!   bytes on every replica; the merged store is cached keyed by the
//!   per-partition generation vector, and steady-state reads fan out
//!   only the cheap generation poll.
//! * **Retry, failover, hedging.** Each replica address carries a
//!   consecutive-failure circuit breaker ([`crate::health`]). A
//!   transport failure is retried on the same replica under capped,
//!   jittered exponential backoff, then the read fails over to the next
//!   replica in preference order; open breakers are skipped outright
//!   and half-open probes are replayed missed ingest rows before the
//!   replica serves reads again. When `hedge_after` is set, a store
//!   fetch that runs past the threshold fires a hedged duplicate at the
//!   next replica and the first success wins. A partition is only
//!   *down* when every replica is exhausted.
//! * **Degraded partial answers.** A request that opted in with
//!   `allow_partial` answers from the live partitions when some
//!   partition is down, attaching a coverage envelope (partitions
//!   answered, share of rows covered, the missing shard addresses).
//!   Without the opt-in — and always, when *every* partition is down —
//!   the failure stays a `503` envelope naming the partition, with a
//!   `Retry-After` hint derived from the soonest breaker half-open
//!   time. Partial merges are never cached.
//! * **Deterministic merge.** Partials merge in partition order with
//!   the cube merge algebra (`cube(A) ⊕ cube(B) == cube(A ∪ B)`), and
//!   failures gather with om-exec's earliest-partition-error-wins rule
//!   ([`om_exec::gather_in_order`]) — the response does not depend on
//!   which shard answered first on the wire.
//! * **Identical engine code.** The merged store is then queried by the
//!   *single-node* comparator/miner code, and names resolve through a
//!   zero-row engine twin built from the shards' own schema — which is
//!   why full-coverage coordinator responses (results *and* error
//!   messages) are byte-identical to a single node holding the union of
//!   the partitions. The only sanctioned divergences are availability
//!   errors a single node cannot have (a partition down or lagging, a
//!   generation race that never settles); those surface as `503`
//!   envelopes, or as partial answers when the caller opted in.
//! * **Drill-down.** The drill walk runs the shared
//!   [`om_compare::drill_down_via`] loop over a [`DrillPopulation`]
//!   backed by `/internal/level` fan-outs (merged per level) and
//!   `/internal/count` emptiness probes, each with the same per-replica
//!   failover. Drill levels read the shards' immutable *base*
//!   partitions — exactly as a single node drills its base dataset — so
//!   level stores are generation-free and cacheable.
//! * **Ingest.** Rows are validated up front against the shared schema
//!   (identical `bad_row` envelopes, all-or-nothing), routed by the
//!   stable row hash ([`crate::router`]) to a *partition*, and written
//!   to every live replica of that partition. The partition acks when
//!   at least one replica acked; replicas that missed the write have
//!   the rows queued and replayed when they recover (the replay probes
//!   the replica's durable row count first, so a write whose ack was
//!   lost is never double-applied). Failed replica writes are *not*
//!   retried in place — replay-on-recovery is the idempotent path.
//!   Acks report `accepted` as the minimum and `rows_total` as the
//!   maximum across a partition's replicas, summed over partitions;
//!   the reported generation is the maximum across touched shards.
//!   Cross-partition atomicity is not guaranteed: a mid-batch partition
//!   failure leaves the rows accepted by other partitions durable in
//!   their WALs.
//!
//! The coordinator assumes every shard runs the default engine
//! configuration (the cluster tooling starts shards that way); the
//! comparator/miner thresholds it applies to merged stores come from
//! the same defaults.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use om_api::{
    b64_decode, ConditionWire, CoverageWire, ErrorCode, ErrorEnvelope, IngestRequest,
    IngestResponse, InternalCountRequest, InternalCountResponse, InternalGenerationResponse,
    InternalLevelRequest, InternalLevelResponse, InternalSchemaResponse, InternalStoreResponse,
};
use om_compare::{
    candidate_attrs_in, drill_down_via, CompareConfig, CompareError, Comparator, ComparisonResult,
    ComparisonSpec, DrillConfig, DrillLevel, DrillPopulation,
};
use om_cube::persist::decode_store;
use om_cube::CubeStore;
use om_data::persist::decode_dataset;
use om_data::{Schema, ValueId};
use om_engine::{
    fail, BatchItem, BatchOutcome, Budget, Condition, EngineConfig, EngineError, FaultError,
    GiReport, OpportunityMap, SharedStore, StoreSnapshot,
};
use om_exec::gather_in_order;
use om_gi::{mine_exceptions_budgeted, mine_influence_budgeted, mine_trends_budgeted};
use om_ingest::RowParser;
use om_server::ops::{ingest_envelope, EngineOps, IngestAck, OpsError};

use crate::client::ShardClient;
use crate::health::{backoff_delay, Admission, Health, HealthConfig};
use crate::metrics::ClusterMetrics;
use crate::router::{replica_set, route_fields};

/// How a coordinator reaches and treats its shards.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard endpoints (`host:port`), grouped partition by partition:
    /// with R replicas, addresses `[p*R, (p+1)*R)` serve partition `p`.
    /// The order is part of the cluster identity: routing and merging
    /// both use it.
    pub shard_addrs: Vec<String>,
    /// Replication factor: how many consecutive addresses serve each
    /// partition. `shard_addrs.len()` must be a multiple of it.
    pub replicas: usize,
    /// Per-shard whole-request timeout; a replica that exceeds it is
    /// retried, failed over, or reported in a `503` envelope.
    pub shard_timeout: Duration,
    /// `Retry-After` hint attached to overload envelopes when no
    /// breaker supplies a sharper one, in seconds.
    pub retry_after_secs: u64,
    /// How many times a store read re-pins when shards republish
    /// mid-fan-out before giving up with an overload envelope.
    pub stale_retries: u32,
    /// Same-replica retries after a transport failure before failing
    /// over to the next replica.
    pub fetch_retries: u32,
    /// First-retry backoff; each further retry doubles it (with jitter).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Consecutive failures that open a replica's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before half-opening a probe.
    pub breaker_open: Duration,
    /// When set, a store fetch still pending after this long fires a
    /// hedged duplicate at the next replica (first success wins).
    pub hedge_after: Option<Duration>,
    /// Whether `/v1/ingest` is live (requires shards started with
    /// ingest WALs).
    pub ingest: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shard_addrs: Vec::new(),
            replicas: 1,
            shard_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            stale_retries: 3,
            fetch_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            breaker_threshold: 3,
            breaker_open: Duration::from_secs(2),
            hedge_after: None,
            ingest: false,
        }
    }
}

/// A resolved condition path, as a hashable cache key.
type CondKey = Vec<(usize, ValueId)>;

fn cond_key(conditions: &[Condition]) -> CondKey {
    conditions.iter().map(|c| (c.attr, c.value)).collect()
}

fn wire_conditions(conditions: &[Condition]) -> Vec<ConditionWire> {
    conditions
        .iter()
        .map(|c| ConditionWire {
            attr: c.attr as u64,
            value: u64::from(c.value),
        })
        .collect()
}

/// Drill-level stores are cached per (condition path, attribute set);
/// clear-on-cap keeps a pathological request mix from growing without
/// bound while leaving the common session shapes fully cached.
const LEVEL_CACHE_CAP: usize = 512;

type LevelCache = HashMap<(CondKey, Vec<usize>), Arc<CubeStore>>;

/// One replica's catch-up state: rows it missed while down, plus a
/// flag marking a replay in flight. Rows stay queued until the replay
/// *succeeds*, so concurrent callers never mistake a mid-replay
/// replica for a caught-up one — and the replayer does its network
/// round trips without holding this lock.
#[derive(Default)]
struct CatchupQueue {
    rows: Vec<Vec<String>>,
    in_flight: bool,
}

/// What `flush_catchup` found: the replica is ready to serve, or a
/// replay is already in flight elsewhere (skip the replica, but do not
/// penalise its breaker — contention is not evidence of unhealth).
enum Catchup {
    Ready,
    Busy,
}

/// Every replica of one partition was skipped or exhausted; carries the
/// per-replica evidence for the `503` envelope.
struct PartitionDown {
    partition: usize,
    /// `(global shard index, failure message)`, in the order tried.
    failures: Vec<(usize, String)>,
}

/// `true` when a replica's error names a 4xx status: the *request* is
/// at fault, every replica would answer identically, and neither
/// failover nor a health penalty is warranted.
fn is_request_fault(msg: &str) -> bool {
    msg.starts_with("HTTP 4")
}

/// One store-fetch outcome at a pinned generation.
enum Fetch {
    Fresh(Box<CubeStore>),
    /// The replica republished since the poll: not a failure, a re-pin.
    Stale,
}

/// A single `/internal/store?expect=G` attempt against one replica —
/// the unit both the sequential and the hedged fetch paths run.
fn fetch_store_once(shard: &ShardClient, expect: u64) -> Result<Fetch, String> {
    fail::inject("cluster.fetch").map_err(|e| e.to_string())?;
    let (status, body) = shard.get(&format!("/internal/store?expect={expect}"))?;
    match status {
        200 => {
            let resp = InternalStoreResponse::parse(&body)?;
            let bytes = b64_decode(&resp.store_b64)?;
            let store = decode_store(Bytes::from(bytes))
                .map_err(|e| format!("store decode failed: {e}"))?;
            Ok(Fetch::Fresh(Box::new(store)))
        }
        409 => Ok(Fetch::Stale),
        s => Err(format!("HTTP {s}: {}", body.trim())),
    }
}

/// Record one hedged-fetch outcome in the shared breaker and counters.
/// A free function over `Arc`-shared state because hedge workers can
/// outlive the fetch that spawned them: the coordinator returns on the
/// first success, and a loser's result landing after that must *still*
/// be reported — an unreported half-open probe wedges its breaker at
/// Deny (and a worker's failure must open breakers even when nobody is
/// listening).
fn record_fetch_outcome(
    health: &Health,
    metrics: &ClusterMetrics,
    g: usize,
    result: &Result<Fetch, String>,
) {
    match result {
        // Fresh and Stale (409) both prove the replica transport is
        // healthy; so does a 4xx, where only the request is at fault.
        Ok(_) => health.record_success(g),
        Err(msg) if is_request_fault(msg) => health.record_success(g),
        Err(_) => {
            ClusterMetrics::add(&metrics.shard_errors_total, 1);
            if health.record_failure(g) {
                ClusterMetrics::add(&metrics.breaker_opens_total, 1);
            }
        }
    }
}

/// The coordinator for one shard topology. See the module docs.
pub struct Coordinator {
    shards: Vec<ShardClient>,
    /// Zero-row engine twin built from the shards' schema: resolves
    /// names, validates conditions and carries the shared configs with
    /// the exact single-node code (and error messages).
    om: OpportunityMap,
    parser: RowParser,
    n_partitions: usize,
    replicas: usize,
    retry_after_secs: u64,
    stale_retries: u32,
    fetch_retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    hedge_after: Option<Duration>,
    ingest: bool,
    /// One circuit breaker per shard address (shared with detached
    /// hedge workers).
    health: Arc<Health>,
    /// Monotonic salt decorrelating concurrent backoff sleeps.
    backoff_salt: AtomicU64,
    /// Per-replica rows that missed a write (replica down at ingest
    /// time), replayed in order when the replica recovers.
    catchup: Vec<Mutex<CatchupQueue>>,
    /// Per-partition base-partition row count (fixed at connect).
    part_base_rows: Vec<u64>,
    /// Per-partition authoritative live-ingested row count: the highest
    /// `rows_total` any replica acked.
    part_ingested: Vec<AtomicU64>,
    /// Merged full store, keyed by the pinned per-partition generation
    /// vector. Only full-coverage merges are cached.
    merged: Mutex<Option<(Vec<u64>, Arc<StoreSnapshot>)>>,
    /// Merged drill-level stores (generation-free; see module docs).
    levels: Mutex<LevelCache>,
    /// Conditioned base-partition row counts, summed across partitions.
    counts: Mutex<HashMap<CondKey, u64>>,
    metrics: Arc<ClusterMetrics>,
}

impl Coordinator {
    /// Connect to the shards: fetch and cross-check their schemas,
    /// bootstrap the zero-row engine twin, and record each partition's
    /// base row count (the denominator of coverage envelopes).
    ///
    /// # Errors
    /// Unreachable shards, shards that disagree on the schema, an
    /// address list that does not tile into `partitions x replicas`, or
    /// a schema the engine cannot host.
    pub fn connect(config: ClusterConfig) -> Result<Self, String> {
        if config.replicas == 0 {
            return Err("replication factor must be at least 1".to_owned());
        }
        if config.shard_addrs.is_empty() {
            return Err("cluster needs at least one shard".to_owned());
        }
        if !config.shard_addrs.len().is_multiple_of(config.replicas) {
            return Err(format!(
                "{} shard address(es) do not tile into whole partitions at replication \
                 factor {}; the address list must be partitions x replicas",
                config.shard_addrs.len(),
                config.replicas
            ));
        }
        let shards: Vec<ShardClient> = config
            .shard_addrs
            .iter()
            .map(|a| ShardClient::new(a.clone(), config.shard_timeout))
            .collect();
        let n_partitions = shards.len() / config.replicas;
        let mut schema_b64 = String::new();
        for (i, shard) in shards.iter().enumerate() {
            let body = shard
                .expect_ok("GET", "/internal/schema", None)
                .map_err(|e| format!("shard {i} ({}): schema fetch failed: {e}", shard.addr()))?;
            let resp = InternalSchemaResponse::parse(&body)
                .map_err(|e| format!("shard {i} ({}): bad schema response: {e}", shard.addr()))?;
            if i == 0 {
                schema_b64 = resp.dataset_b64;
            } else if schema_b64 != resp.dataset_b64 {
                return Err(format!(
                    "shard {i} ({}) disagrees with shard 0 on the schema; \
                     every shard must be partitioned from the same dataset",
                    shard.addr()
                ));
            }
        }
        let bytes = b64_decode(&schema_b64).map_err(|e| format!("shard schema is not valid base64: {e}"))?;
        let zero = decode_dataset(Bytes::from(bytes))
            .map_err(|e| format!("shard schema dataset failed to decode: {e}"))?;
        let om = OpportunityMap::build(zero, EngineConfig::default())
            .map_err(|e| format!("coordinator engine bootstrap failed: {e}"))?;
        let parser = RowParser::new(om.dataset().schema().clone(), om.cut_points())
            .map_err(|e| format!("coordinator row parser bootstrap failed: {e}"))?;
        let empty_count = InternalCountRequest {
            conditions: Vec::new(),
        }
        .encode();
        let mut part_base_rows = Vec::with_capacity(n_partitions);
        for p in 0..n_partitions {
            let g = replica_set(p, n_partitions, config.replicas)
                .first()
                .copied()
                .unwrap_or(p);
            let Some(shard) = shards.get(g) else {
                return Err(format!("partition {p} has no replica at index {g}"));
            };
            let body = shard
                .expect_ok("POST", "/internal/count", Some(&empty_count))
                .map_err(|e| format!("shard {g} ({}): base count failed: {e}", shard.addr()))?;
            let count = InternalCountResponse::parse(&body)
                .map_err(|e| format!("shard {g} ({}): bad count response: {e}", shard.addr()))?
                .count;
            part_base_rows.push(count);
        }
        let metrics = Arc::new(ClusterMetrics::default());
        metrics.shards.store(shards.len() as u64, Ordering::Relaxed);
        metrics
            .partitions
            .store(n_partitions as u64, Ordering::Relaxed);
        metrics
            .replicas
            .store(config.replicas as u64, Ordering::Relaxed);
        let health = Arc::new(Health::new(
            shards.len(),
            HealthConfig {
                threshold: config.breaker_threshold,
                open_for: config.breaker_open,
                // A legitimate probe is bounded by the catch-up replay
                // (two round trips) plus the request itself, each
                // clamped to the whole-request timeout.
                probe_timeout: config
                    .shard_timeout
                    .saturating_mul(3)
                    .saturating_add(config.breaker_open),
            },
        ));
        let catchup = (0..shards.len())
            .map(|_| Mutex::new(CatchupQueue::default()))
            .collect();
        // Catch-up queues are in-memory only: a coordinator restart
        // drops any rows queued for a down replica. Cross-check the
        // replicas' durable row counts here so a partition whose
        // replicas diverged while no coordinator was watching is
        // refused instead of silently serving mismatched stores (the
        // generation-pinned merge relies on replicas sealing at
        // identical row counts), and seed the per-partition targets
        // from the durable counts rather than zero.
        let mut part_ingested_seed = vec![0u64; n_partitions];
        if config.ingest {
            for (p, seed) in part_ingested_seed.iter_mut().enumerate() {
                let mut agreed: Option<(usize, u64)> = None;
                for g in replica_set(p, n_partitions, config.replicas) {
                    let Some(shard) = shards.get(g) else { continue };
                    let body = shard
                        .expect_ok("POST", "/v1/ingest", Some("{\"rows\":[]}"))
                        .map_err(|e| {
                            format!("shard {g} ({}): ingest probe failed: {e}", shard.addr())
                        })?;
                    let rows = IngestResponse::parse(&body)
                        .map_err(|e| {
                            format!("shard {g} ({}): bad ingest probe response: {e}", shard.addr())
                        })?
                        .rows_total;
                    match agreed {
                        None => agreed = Some((g, rows)),
                        Some((g0, rows0)) if rows0 != rows => {
                            return Err(format!(
                                "partition {p} replicas disagree on durable ingested rows: \
                                 shard {g0} has {rows0}, shard {g} ({}) has {rows}; the \
                                 replicas diverged while no coordinator was replaying missed \
                                 writes — re-seed the lagging replica from its peer's WAL \
                                 before reconnecting",
                                shard.addr()
                            ));
                        }
                        Some(_) => {}
                    }
                }
                *seed = agreed.map_or(0, |(_, rows)| rows);
            }
        }
        let part_ingested = part_ingested_seed.into_iter().map(AtomicU64::new).collect();
        Ok(Self {
            shards,
            om,
            parser,
            n_partitions,
            replicas: config.replicas,
            retry_after_secs: config.retry_after_secs,
            stale_retries: config.stale_retries,
            fetch_retries: config.fetch_retries,
            backoff_base: config.backoff_base,
            backoff_cap: config.backoff_cap,
            hedge_after: config.hedge_after,
            ingest: config.ingest,
            health,
            backoff_salt: AtomicU64::new(0),
            catchup,
            part_base_rows,
            part_ingested,
            merged: Mutex::new(None),
            levels: Mutex::new(HashMap::new()),
            counts: Mutex::new(HashMap::new()),
            metrics,
        })
    }

    /// Number of shard processes in the topology.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of partitions (shards divided by the replication factor).
    #[must_use]
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// The replication factor.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The coordinator's counters (rendered into `/metrics`).
    #[must_use]
    pub fn cluster_metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Shard addresses the coordinator currently considers degraded:
    /// breaker not closed, or queued catch-up rows not yet replayed.
    /// Empty means every replica is healthy and fully caught up — the
    /// cluster tooling polls this to wait for a rejoin to settle.
    #[must_use]
    pub fn degraded_addrs(&self) -> Vec<String> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(g, _)| {
                !self.health.is_closed(*g)
                    || self.catchup.get(*g).is_some_and(|q| !q.lock().rows.is_empty())
            })
            .map(|(_, s)| s.addr().to_owned())
            .collect()
    }

    fn shard_addr(&self, i: usize) -> &str {
        self.shards.get(i).map_or("?", ShardClient::addr)
    }

    fn overloaded(&self, message: String) -> ErrorEnvelope {
        ErrorEnvelope {
            retry_after_ms: Some(self.retry_after_secs.saturating_mul(1000)),
            ..ErrorEnvelope::new(ErrorCode::Overloaded, message)
        }
    }

    /// The `503` envelope for a downed partition. At replication factor
    /// 1 the message is the legacy single-shard form; above it, the
    /// partition is named with every replica's evidence. The
    /// `Retry-After` hint is the soonest any involved breaker
    /// half-opens, falling back to the static hint when none is open.
    fn partition_envelope(&self, op: &str, down: &PartitionDown) -> ErrorEnvelope {
        let members = replica_set(down.partition, self.n_partitions, self.replicas);
        let retry_after_ms = self
            .health
            .min_retry_after(members.iter().copied())
            .map_or(self.retry_after_secs.saturating_mul(1000), |d| {
                (u64::try_from(d.as_millis()).unwrap_or(u64::MAX)).max(1)
            });
        let message = match down.failures.as_slice() {
            [(g, msg)] if self.replicas == 1 => {
                format!("shard {g} ({}) failed during {op}: {msg}", self.shard_addr(*g))
            }
            failures => {
                let evidence: Vec<String> = failures
                    .iter()
                    .map(|(g, msg)| format!("replica {g} ({}): {msg}", self.shard_addr(*g)))
                    .collect();
                format!(
                    "partition {} is unavailable for {op} (all {} replica(s) failed): {}",
                    down.partition,
                    members.len(),
                    evidence.join("; ")
                )
            }
        };
        ErrorEnvelope {
            retry_after_ms: Some(retry_after_ms),
            ..ErrorEnvelope::new(ErrorCode::Overloaded, message)
        }
    }

    /// Record one replica failure in the breaker and the counters.
    fn note_failure(&self, g: usize) {
        ClusterMetrics::add(&self.metrics.shard_errors_total, 1);
        if self.health.record_failure(g) {
            ClusterMetrics::add(&self.metrics.breaker_opens_total, 1);
        }
    }

    /// Replay rows a replica missed while it was down, before it serves
    /// anything else. The replica's durable `rows_total` is probed
    /// first (an empty ingest batch is a pure stats read) and only the
    /// genuinely missing tail is resent — a write whose ack was lost is
    /// never double-applied.
    ///
    /// The network round trips run *outside* the queue lock: the lock
    /// is taken only to snapshot the queue (setting `in_flight`) and to
    /// commit the outcome. Rows stay queued until the replay succeeds,
    /// and concurrent callers see `in_flight` and skip the replica —
    /// so a mid-replay replica is never mistaken for a caught-up one
    /// and never accepts new direct writes out of order.
    fn flush_catchup(&self, g: usize, shard: &ShardClient) -> Result<Catchup, String> {
        if !self.ingest {
            return Ok(Catchup::Ready);
        }
        let Some(slot) = self.catchup.get(g) else {
            return Ok(Catchup::Ready);
        };
        let batch = {
            let mut queue = slot.lock();
            if queue.in_flight {
                return Ok(Catchup::Busy);
            }
            if queue.rows.is_empty() {
                return Ok(Catchup::Ready);
            }
            queue.in_flight = true;
            queue.rows.clone()
        };
        let result = self.replay_missed_rows(g, shard, &batch);
        let mut queue = slot.lock();
        queue.in_flight = false;
        match result {
            Ok(()) => {
                // Drop exactly the snapshot we replayed; rows queued
                // while the replay was in flight stay for the next one.
                let replayed = batch.len().min(queue.rows.len());
                queue.rows.drain(..replayed);
                Ok(Catchup::Ready)
            }
            Err(msg) => Err(msg),
        }
    }

    /// The network half of [`Self::flush_catchup`]: probe the replica's
    /// durable row count, resend only the tail it actually lacks.
    fn replay_missed_rows(
        &self,
        g: usize,
        shard: &ShardClient,
        batch: &[Vec<String>],
    ) -> Result<(), String> {
        let probe = shard.expect_ok("POST", "/v1/ingest", Some("{\"rows\":[]}"))?;
        let have = IngestResponse::parse(&probe)?.rows_total;
        let target = self
            .part_ingested
            .get(g / self.replicas.max(1))
            .map_or(0, |t| t.load(Ordering::Relaxed));
        let missing = usize::try_from(target.saturating_sub(have))
            .unwrap_or(usize::MAX)
            .min(batch.len());
        if missing > 0 {
            let tail = batch
                .get(batch.len() - missing..)
                .map(<[Vec<String>]>::to_vec)
                .unwrap_or_default();
            let body = IngestRequest { rows: tail }.encode();
            let resp = shard.expect_ok("POST", "/v1/ingest", Some(&body))?;
            IngestResponse::parse(&resp)?;
            ClusterMetrics::add(&self.metrics.catchup_rows_total, missing as u64);
        }
        Ok(())
    }

    /// Walk one partition's replicas in preference order: admit each
    /// through its breaker, replay queued catch-up rows, then run `f`
    /// with same-replica retries under capped jittered backoff before
    /// failing over to the next replica.
    fn try_replicas<T>(
        &self,
        partition: usize,
        f: impl Fn(usize, &ShardClient) -> Result<T, String>,
    ) -> Result<T, PartitionDown> {
        let members = replica_set(partition, self.n_partitions, self.replicas);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (k, &g) in members.iter().enumerate() {
            let Some(shard) = self.shards.get(g) else {
                continue;
            };
            match self.health.admit(g) {
                Admission::Deny => {
                    failures.push((g, "circuit breaker open (recent failures); skipped".to_owned()));
                    continue;
                }
                Admission::Probe => ClusterMetrics::add(&self.metrics.breaker_probes_total, 1),
                Admission::Allow => {}
            }
            match self.flush_catchup(g, shard) {
                Ok(Catchup::Ready) => {}
                Ok(Catchup::Busy) => {
                    failures.push((g, "catch-up replay in progress; skipped".to_owned()));
                    continue;
                }
                Err(msg) => {
                    self.note_failure(g);
                    failures.push((g, format!("catch-up replay failed: {msg}")));
                    continue;
                }
            }
            let mut attempt = 0u32;
            loop {
                // Per-attempt seam: bounds the retry ladder under chaos
                // and gives tests a hook between attempts.
                if let Err(e) = fail::inject("cluster.replica-retry") {
                    failures.push((g, format!("failpoint: {e}")));
                    break;
                }
                match f(g, shard) {
                    Ok(v) => {
                        self.health.record_success(g);
                        return Ok(v);
                    }
                    Err(msg) if is_request_fault(&msg) => {
                        // The replica answered — its transport is fine;
                        // only the request is at fault. Recording the
                        // success matters for a half-open probe, which
                        // would otherwise stay wedged at Deny.
                        self.health.record_success(g);
                        failures.push((g, msg));
                        return Err(PartitionDown { partition, failures });
                    }
                    Err(msg) => {
                        self.note_failure(g);
                        // Stop retrying a replica whose breaker just
                        // opened — it will only burn the backoff budget.
                        if attempt >= self.fetch_retries || !self.health.is_closed(g) {
                            failures.push((g, msg));
                            break;
                        }
                        ClusterMetrics::add(&self.metrics.retries_total, 1);
                        let salt = self.backoff_salt.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff_delay(
                            self.backoff_base,
                            self.backoff_cap,
                            attempt,
                            salt,
                        ));
                        attempt += 1;
                    }
                }
            }
            if k + 1 < members.len() {
                ClusterMetrics::add(&self.metrics.failovers_total, 1);
            }
        }
        Err(PartitionDown { partition, failures })
    }

    /// Run `f(partition)` once per partition, concurrently, and return
    /// the per-partition results in partition order.
    fn fan_out_partitions<T: Send>(
        &self,
        f: impl Fn(usize) -> Result<T, PartitionDown> + Sync,
    ) -> Vec<Result<T, PartitionDown>> {
        ClusterMetrics::add(&self.metrics.fanouts_total, 1);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..self.n_partitions)
                .map(|p| scope.spawn(move || f(p)))
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    h.join().unwrap_or_else(|_| {
                        Err(PartitionDown {
                            partition: p,
                            failures: vec![(p, "partition fan-out worker panicked".to_owned())],
                        })
                    })
                })
                .collect()
        })
    }

    /// Earliest-partition-error-wins gather: the reported failure is
    /// the lowest-numbered failing partition, independent of wire
    /// timing.
    fn gather_parts<T>(
        &self,
        op: &str,
        results: Vec<Result<T, PartitionDown>>,
    ) -> Result<Vec<T>, ErrorEnvelope> {
        let indexed = results
            .into_iter()
            .map(|r| r.map_err(|down| (down.partition, down)));
        gather_in_order(indexed).map_err(|(_, down)| self.partition_envelope(op, &down))
    }

    /// Fetch one partition's store at the pinned generation, failing
    /// over between replicas — hedged when configured.
    fn fetch_partition_store(&self, partition: usize, expect: u64) -> Result<Fetch, PartitionDown> {
        match self.hedge_after {
            Some(hedge_after) if self.replicas > 1 => {
                self.fetch_partition_store_hedged(partition, expect, hedge_after)
            }
            _ => self.try_replicas(partition, |_, shard| fetch_store_once(shard, expect)),
        }
    }

    /// Launch the next admissible candidate's fetch on a detached
    /// worker. Returns `true` when a worker was actually launched.
    ///
    /// Admission happens *here*, at launch time — never for candidates
    /// that may end up unlaunched. A half-open probe admitted up front
    /// but abandoned by an early return would leave its breaker wedged
    /// at Deny forever. The worker records its own outcome in the
    /// shared breaker, so even results arriving after the coordinator
    /// stopped listening are reported.
    fn launch_hedged_fetch(
        &self,
        candidates: &[usize],
        next: &mut usize,
        failures: &mut Vec<(usize, String)>,
        expect: u64,
        tx: &mpsc::Sender<(usize, Result<Fetch, String>)>,
    ) -> bool {
        while let Some(&g) = candidates.get(*next) {
            *next += 1;
            let Some(shard) = self.shards.get(g) else {
                continue;
            };
            match self.health.admit(g) {
                Admission::Deny => {
                    failures.push((g, "circuit breaker open (recent failures); skipped".to_owned()));
                    continue;
                }
                Admission::Probe => ClusterMetrics::add(&self.metrics.breaker_probes_total, 1),
                Admission::Allow => {}
            }
            match self.flush_catchup(g, shard) {
                Ok(Catchup::Ready) => {}
                Ok(Catchup::Busy) => {
                    failures.push((g, "catch-up replay in progress; skipped".to_owned()));
                    continue;
                }
                Err(msg) => {
                    self.note_failure(g);
                    failures.push((g, format!("catch-up replay failed: {msg}")));
                    continue;
                }
            }
            let shard = shard.clone();
            let tx = tx.clone();
            let health = Arc::clone(&self.health);
            let metrics = Arc::clone(&self.metrics);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    fetch_store_once(&shard, expect)
                }))
                .unwrap_or_else(|_| Err("store fetch worker panicked".to_owned()));
                record_fetch_outcome(&health, &metrics, g, &result);
                let _ = tx.send((g, result));
            });
            return true;
        }
        false
    }

    /// The hedged store fetch: the preferred replica goes first; if it
    /// is still pending after `hedge_after`, the next replica is raced
    /// against it and the first success wins. Losers run on until their
    /// whole-request deadline and record their own breaker outcomes, so
    /// the early return never strands an admitted probe.
    fn fetch_partition_store_hedged(
        &self,
        partition: usize,
        expect: u64,
        hedge_after: Duration,
    ) -> Result<Fetch, PartitionDown> {
        let candidates = replica_set(partition, self.n_partitions, self.replicas);
        let mut failures: Vec<(usize, String)> = Vec::new();
        let (tx, rx) = mpsc::channel::<(usize, Result<Fetch, String>)>();
        let mut next = 0usize;
        let mut pending = 0usize;
        loop {
            while pending == 0 {
                if self.launch_hedged_fetch(&candidates, &mut next, &mut failures, expect, &tx) {
                    pending += 1;
                } else {
                    return Err(PartitionDown { partition, failures });
                }
            }
            // While unlaunched candidates remain, wait only the hedge
            // threshold; afterwards, workers are bounded by the client's
            // whole-request deadline, so a generous wait terminates.
            let wait = if next < candidates.len() {
                hedge_after
            } else {
                self.backoff_cap.max(Duration::from_secs(60))
            };
            // Health outcomes are recorded by the workers themselves
            // (see `launch_hedged_fetch`); this loop only steers.
            match rx.recv_timeout(wait) {
                Ok((_, Ok(fetch))) => {
                    return Ok(fetch);
                }
                Ok((g, Err(msg))) if is_request_fault(&msg) => {
                    // A 4xx is the request's fault: every replica would
                    // answer identically, so hedging further is futile.
                    failures.push((g, msg));
                    return Err(PartitionDown { partition, failures });
                }
                Ok((g, Err(msg))) => {
                    pending -= 1;
                    failures.push((g, msg));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if next < candidates.len()
                        && self.launch_hedged_fetch(&candidates, &mut next, &mut failures, expect, &tx)
                    {
                        ClusterMetrics::add(&self.metrics.hedges_total, 1);
                        pending += 1;
                    } else if pending == 0 {
                        return Err(PartitionDown { partition, failures });
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(PartitionDown { partition, failures });
                }
            }
        }
    }

    /// The coverage envelope for a partial answer: which partitions
    /// answered, the share of the cluster's rows they hold, and the
    /// addresses behind the gaps.
    fn coverage_for(&self, answered: &[bool]) -> CoverageWire {
        let mut total_rows = 0u64;
        let mut covered_rows = 0u64;
        let mut partitions_answered = 0u64;
        let mut missing_partitions: Vec<u64> = Vec::new();
        let mut missing_shards: Vec<String> = Vec::new();
        for p in 0..self.n_partitions {
            let rows = self.part_base_rows.get(p).copied().unwrap_or(0)
                + self
                    .part_ingested
                    .get(p)
                    .map_or(0, |t| t.load(Ordering::Relaxed));
            total_rows += rows;
            if answered.get(p).copied().unwrap_or(false) {
                covered_rows += rows;
                partitions_answered += 1;
            } else {
                missing_partitions.push(p as u64);
                for g in replica_set(p, self.n_partitions, self.replicas) {
                    missing_shards.push(self.shard_addr(g).to_owned());
                }
            }
        }
        let rows_covered_pct = if total_rows == 0 {
            100.0 * partitions_answered as f64 / (self.n_partitions.max(1)) as f64
        } else {
            100.0 * covered_rows as f64 / total_rows as f64
        };
        CoverageWire {
            partitions_total: self.n_partitions as u64,
            partitions_answered,
            rows_covered_pct,
            missing_partitions,
            missing_shards,
        }
    }

    /// Pin one generation per partition and return the merged store at
    /// exactly that generation vector (cached across requests when the
    /// coverage is full). With `allow_partial`, partitions whose every
    /// replica is down are skipped and reported in the returned
    /// coverage envelope instead of failing the read — unless *every*
    /// partition is down, which is always an error.
    fn pinned_store_with(
        &self,
        allow_partial: bool,
    ) -> Result<(Arc<StoreSnapshot>, Option<CoverageWire>), ErrorEnvelope> {
        for _ in 0..=self.stale_retries {
            // Phase 1: pin a generation per partition via any live
            // replica.
            let polls = self.fan_out_partitions(|p| {
                self.try_replicas(p, |_, shard| {
                    let body = shard.expect_ok("GET", "/internal/generation", None)?;
                    InternalGenerationResponse::parse(&body).map(|r| r.generation)
                })
            });
            let mut gens: Vec<Option<u64>> = Vec::with_capacity(polls.len());
            let mut first_down: Option<PartitionDown> = None;
            for poll in polls {
                match poll {
                    Ok(g) => gens.push(Some(g)),
                    Err(down) => {
                        if !allow_partial {
                            return Err(self.partition_envelope("generation poll", &down));
                        }
                        if first_down.is_none() {
                            first_down = Some(down);
                        }
                        gens.push(None);
                    }
                }
            }
            if gens.iter().all(Option::is_none) {
                let down = first_down.unwrap_or(PartitionDown {
                    partition: 0,
                    failures: Vec::new(),
                });
                return Err(self.partition_envelope("generation poll", &down));
            }
            // Full coverage at an unchanged generation vector: serve
            // the cached merge without any store fetch.
            if gens.iter().all(Option::is_some) {
                let key: Vec<u64> = gens.iter().map(|g| g.unwrap_or(0)).collect();
                if let Some((pinned, snap)) = self.merged.lock().clone() {
                    if pinned == key {
                        return Ok((snap, None));
                    }
                }
            }
            // Phase 2: fetch each live partition's store at its pinned
            // generation (hedged when configured).
            let fetched = self.fan_out_partitions(|p| match gens.get(p).copied().flatten() {
                None => Ok(None),
                Some(expect) => self.fetch_partition_store(p, expect).map(Some),
            });
            let mut parts: Vec<Option<Fetch>> = Vec::with_capacity(fetched.len());
            for r in fetched {
                match r {
                    Ok(opt) => parts.push(opt),
                    Err(down) => {
                        if !allow_partial {
                            return Err(self.partition_envelope("store fetch", &down));
                        }
                        parts.push(None);
                    }
                }
            }
            if parts.iter().any(|p| matches!(p, Some(Fetch::Stale))) {
                ClusterMetrics::add(&self.metrics.stale_retries_total, 1);
                continue;
            }
            if parts.iter().all(Option::is_none) {
                return Err(self.overloaded(
                    "every partition became unavailable during the store fetch; retry".to_owned(),
                ));
            }
            // Phase 3: merge in partition order.
            let mut answered: Vec<bool> = Vec::with_capacity(parts.len());
            let mut merged: Option<CubeStore> = None;
            for part in parts {
                let Some(Fetch::Fresh(part)) = part else {
                    answered.push(false);
                    continue;
                };
                answered.push(true);
                merged = Some(match merged {
                    None => *part,
                    Some(acc) => acc.merge(&part).map_err(|e| {
                        ErrorEnvelope::new(
                            ErrorCode::Internal,
                            format!("shard store merge failed: {e}"),
                        )
                    })?,
                });
            }
            let Some(merged) = merged else {
                return Err(ErrorEnvelope::new(
                    ErrorCode::Internal,
                    "cluster produced no shard stores",
                ));
            };
            let snap = SharedStore::new(merged).snapshot();
            ClusterMetrics::add(&self.metrics.store_refreshes_total, 1);
            if answered.iter().all(|&a| a) {
                let key: Vec<u64> = gens.iter().map(|g| g.unwrap_or(0)).collect();
                *self.merged.lock() = Some((key, Arc::clone(&snap)));
                return Ok((snap, None));
            }
            ClusterMetrics::add(&self.metrics.partial_answers_total, 1);
            let coverage = self.coverage_for(&answered);
            return Ok((snap, Some(coverage)));
        }
        Err(self.overloaded(format!(
            "cluster store generations kept moving across {} pins (live ingestion racing the \
             fan-out); retry",
            u64::from(self.stale_retries) + 1
        )))
    }

    /// Pin one generation per partition and return the merged full
    /// store at exactly that generation vector (cached across
    /// requests). All-or-nothing: any downed partition is an error.
    fn pinned_store(&self, _budget: &Budget) -> Result<Arc<StoreSnapshot>, ErrorEnvelope> {
        self.pinned_store_with(false).map(|(snap, _)| snap)
    }

    /// Merged drill-level store over the shards' conditioned *base*
    /// partitions (generation-free; see module docs).
    fn cluster_level_store(
        &self,
        conditions: &[Condition],
        attrs: &[usize],
    ) -> Result<Arc<CubeStore>, ErrorEnvelope> {
        let key = (cond_key(conditions), attrs.to_vec());
        if let Some(hit) = self.levels.lock().get(&key) {
            ClusterMetrics::add(&self.metrics.level_cache_hits_total, 1);
            return Ok(Arc::clone(hit));
        }
        ClusterMetrics::add(&self.metrics.level_cache_misses_total, 1);
        let request = InternalLevelRequest {
            conditions: wire_conditions(conditions),
            attrs: attrs.iter().map(|&a| a as u64).collect(),
        }
        .encode();
        let parts = self.gather_parts(
            "drill-level fan-out",
            self.fan_out_partitions(|p| {
                self.try_replicas(p, |_, shard| {
                    let body = shard.expect_ok("POST", "/internal/level", Some(&request))?;
                    let resp = InternalLevelResponse::parse(&body)?;
                    let bytes = b64_decode(&resp.store_b64)?;
                    decode_store(Bytes::from(bytes))
                        .map_err(|e| format!("level store decode failed: {e}"))
                })
            }),
        )?;
        let mut parts = parts.into_iter();
        let Some(mut acc) = parts.next() else {
            return Err(ErrorEnvelope::new(
                ErrorCode::Internal,
                "cluster produced no level stores",
            ));
        };
        for part in parts {
            acc = acc.merge(&part).map_err(|e| {
                ErrorEnvelope::new(ErrorCode::Internal, format!("level store merge failed: {e}"))
            })?;
        }
        let merged = Arc::new(acc);
        let mut cache = self.levels.lock();
        if cache.len() >= LEVEL_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&merged));
        Ok(merged)
    }

    /// Conditioned base-partition row count, summed across partitions.
    fn cluster_count(&self, conditions: &[Condition]) -> Result<u64, ErrorEnvelope> {
        let key = cond_key(conditions);
        if let Some(&hit) = self.counts.lock().get(&key) {
            return Ok(hit);
        }
        let request = InternalCountRequest {
            conditions: wire_conditions(conditions),
        }
        .encode();
        let counts = self.gather_parts(
            "count fan-out",
            self.fan_out_partitions(|p| {
                self.try_replicas(p, |_, shard| {
                    let body = shard.expect_ok("POST", "/internal/count", Some(&request))?;
                    InternalCountResponse::parse(&body).map(|r| r.count)
                })
            }),
        )?;
        let total: u64 = counts.iter().sum();
        let mut cache = self.counts.lock();
        if cache.len() >= LEVEL_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, total);
        Ok(total)
    }

    /// Write one partition's sub-batch to every live replica. The
    /// partition acks when at least one replica acked; replicas that
    /// missed a non-empty write get the rows queued for replay. Failed
    /// writes are *not* retried in place — replay-on-recovery probes
    /// the replica's durable row count first and is therefore safe
    /// against lost acks, where an in-place retry could double-apply.
    fn ingest_partition(
        &self,
        partition: usize,
        sub: &[Vec<String>],
    ) -> Result<IngestAck, PartitionDown> {
        let body = IngestRequest { rows: sub.to_vec() }.encode();
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut missed: Vec<usize> = Vec::new();
        let mut ack: Option<IngestAck> = None;
        for g in replica_set(partition, self.n_partitions, self.replicas) {
            let Some(shard) = self.shards.get(g) else {
                continue;
            };
            // Per-replica seam: a skipped replica is a miss, queued for
            // catch-up replay like any other write failure.
            if let Err(e) = fail::inject("cluster.ingest-replica") {
                failures.push((g, format!("failpoint: {e}")));
                missed.push(g);
                continue;
            }
            match self.health.admit(g) {
                Admission::Deny => {
                    failures.push((g, "circuit breaker open (recent failures); skipped".to_owned()));
                    missed.push(g);
                    continue;
                }
                Admission::Probe => ClusterMetrics::add(&self.metrics.breaker_probes_total, 1),
                Admission::Allow => {}
            }
            match self.flush_catchup(g, shard) {
                Ok(Catchup::Ready) => {}
                Ok(Catchup::Busy) => {
                    failures.push((g, "catch-up replay in progress; skipped".to_owned()));
                    missed.push(g);
                    continue;
                }
                Err(msg) => {
                    self.note_failure(g);
                    failures.push((g, format!("catch-up replay failed: {msg}")));
                    missed.push(g);
                    continue;
                }
            }
            let outcome = shard
                .expect_ok("POST", "/v1/ingest", Some(&body))
                .and_then(|r| IngestResponse::parse(&r));
            match outcome {
                Ok(replica_ack) => {
                    self.health.record_success(g);
                    ack = Some(match ack {
                        None => IngestAck {
                            accepted: replica_ack.accepted,
                            rows_total: replica_ack.rows_total,
                            generation: replica_ack.generation,
                        },
                        Some(prev) => IngestAck {
                            accepted: prev.accepted.min(replica_ack.accepted),
                            rows_total: prev.rows_total.max(replica_ack.rows_total),
                            generation: prev.generation.max(replica_ack.generation),
                        },
                    });
                }
                Err(msg) if is_request_fault(&msg) => {
                    // The batch itself is bad: every replica would
                    // reject it identically, so fail the partition
                    // without queueing anything. The replica answered,
                    // though — record the success so a half-open probe
                    // closes instead of wedging at Deny.
                    self.health.record_success(g);
                    failures.push((g, msg));
                    return Err(PartitionDown { partition, failures });
                }
                Err(msg) => {
                    self.note_failure(g);
                    failures.push((g, msg));
                    missed.push(g);
                }
            }
        }
        let Some(ack) = ack else {
            return Err(PartitionDown { partition, failures });
        };
        if let Some(total) = self.part_ingested.get(partition) {
            total.fetch_max(ack.rows_total, Ordering::Relaxed);
        }
        if !sub.is_empty() {
            for g in missed {
                if let Some(queue) = self.catchup.get(g) {
                    queue.lock().rows.extend(sub.iter().cloned());
                }
            }
        }
        Ok(ack)
    }

    /// The coordinator's mirror of om-exec's `run_drill_item`: the same
    /// walk, budgets, memoization and error classification, with level
    /// stores and emptiness probes answered by shard fan-out.
    fn drill_item(
        &self,
        spec: &ComparisonSpec,
        path: &[Condition],
        budget: &Budget,
        drill_config: &DrillConfig,
        compare_config: &CompareConfig,
        memo: &mut HashMap<(Vec<Condition>, ComparisonSpec), ComparisonResult>,
    ) -> BatchOutcome {
        if path.is_empty() {
            // The automated walk; only the unconditioned root result is
            // memoizable from outside (deeper levels depend on the
            // walk's own findings) — it is the runner's first call.
            let mut at_root = true;
            let mut pop = ClusterPopulation::new(self);
            let compare = compare_config.clone();
            let walked = drill_down_via(&mut pop, spec, drill_config, budget, |store, spec, budget| {
                let is_root = std::mem::take(&mut at_root);
                let root_key = (Vec::new(), *spec);
                if is_root {
                    if let Some(hit) = memo.get(&root_key) {
                        return Ok(hit.clone());
                    }
                }
                let result =
                    Comparator::with_config(&store, compare.clone()).compare_budgeted(spec, budget)?;
                if is_root {
                    memo.insert(root_key, result.clone());
                }
                Ok(result)
            });
            return match walked {
                Ok(levels) => BatchOutcome::Drill(levels),
                Err(e) => match pop.failure.take() {
                    Some(env) => BatchOutcome::Overloaded { message: env.message },
                    None => BatchOutcome::from_error(&e),
                },
            };
        }

        let schema = self.om.dataset().schema();
        let mut levels: Vec<DrillLevel> = Vec::new();
        for depth in 0..=path.len() {
            if let Err(e) = budget.check() {
                return BatchOutcome::from_error(&CompareError::Fault(e));
            }
            if let Err(e) = fail::inject("compare.drill-level") {
                return BatchOutcome::from_error(&CompareError::Fault(e));
            }
            let Some(prefix) = path.get(..depth) else {
                break;
            };
            match self.validate_prefix(prefix, schema) {
                Ok(()) => {}
                Err(PrefixError::Invalid(message)) => return BatchOutcome::Failed { message },
                Err(PrefixError::FanOut(env)) => {
                    return BatchOutcome::Overloaded { message: env.message }
                }
            }
            let mut excluded: Vec<usize> = vec![spec.attr];
            excluded.extend(prefix.iter().map(|c| c.attr));
            let attrs = candidate_attrs_in(schema, spec.attr, &excluded);
            if attrs.len() < 2 {
                break; // nothing left to rank under these conditions
            }
            let key = (prefix.to_vec(), *spec);
            let result = if let Some(hit) = memo.get(&key) {
                hit.clone()
            } else {
                let store = match self.cluster_level_store(prefix, &attrs) {
                    Ok(store) => store,
                    Err(env) => return BatchOutcome::Overloaded { message: env.message },
                };
                let computed =
                    Comparator::with_config(&store, compare_config.clone()).compare_budgeted(spec, budget);
                match computed {
                    Ok(r) => {
                        memo.insert(key, r.clone());
                        r
                    }
                    Err(e) if depth == 0 => return BatchOutcome::from_error(&e),
                    Err(e @ CompareError::Fault(_)) => return BatchOutcome::from_error(&e),
                    Err(_) => break, // conditioned data too thin — stop cleanly
                }
            };
            levels.push(DrillLevel {
                conditions: prefix.to_vec(),
                condition_labels: prefix.iter().map(|c| c.display(schema)).collect(),
                result,
            });
        }
        BatchOutcome::Drill(levels)
    }

    /// The conditioned-population mirror of the batch fixed-path walk:
    /// validate each condition against the schema and probe the
    /// cluster-wide sub-population for emptiness, producing the exact
    /// single-node failure messages.
    fn validate_prefix(&self, prefix: &[Condition], schema: &Schema) -> Result<(), PrefixError> {
        for j in 0..prefix.len() {
            let Some(&cond) = prefix.get(j) else { break };
            // Each condition costs a cluster-wide count; the seam bounds
            // the walk the same way compare.drill-level bounds levels.
            if let Err(e) = fail::inject("cluster.validate-prefix") {
                return Err(PrefixError::FanOut(
                    self.overloaded(format!("prefix validation aborted: {e}")),
                ));
            }
            // The zero-row twin runs the same validity checks as a
            // shard's sub_population (they depend only on the schema).
            if let Err(e) = self.om.dataset().sub_population(cond.attr, cond.value) {
                return Err(PrefixError::Invalid(format!(
                    "condition {} is invalid: {e}",
                    cond.display(schema)
                )));
            }
            // om-lint: allow(panic-path) — j < prefix.len() by the enumerate bound
            match self.cluster_count(&prefix[..=j]) {
                Ok(0) => {
                    return Err(PrefixError::Invalid(format!(
                        "condition {} selects no records",
                        cond.display(schema)
                    )))
                }
                Ok(_) => {}
                Err(env) => return Err(PrefixError::FanOut(env)),
            }
        }
        Ok(())
    }
}

enum PrefixError {
    /// The request is at fault — the single-node `Failed` message.
    Invalid(String),
    /// A shard fan-out failed — availability, retryable.
    FanOut(ErrorEnvelope),
}

/// The distributed [`DrillPopulation`]: levels are merged shard
/// partials, descent is a schema validity probe plus a cluster-wide
/// emptiness count. A shard failure mid-walk is stashed as the `/v1`
/// envelope (the carrier `CompareError` is replaced by the caller).
struct ClusterPopulation<'a> {
    co: &'a Coordinator,
    conditions: Vec<Condition>,
    failure: Option<ErrorEnvelope>,
}

impl<'a> ClusterPopulation<'a> {
    fn new(co: &'a Coordinator) -> Self {
        Self {
            co,
            conditions: Vec::new(),
            failure: None,
        }
    }

    fn fan_out_failed(&mut self, env: ErrorEnvelope) -> CompareError {
        let carrier = CompareError::Fault(FaultError::Injected(format!(
            "cluster fan-out failed: {}",
            env.message
        )));
        self.failure = Some(env);
        carrier
    }
}

impl DrillPopulation for ClusterPopulation<'_> {
    fn schema(&self) -> &Schema {
        self.co.om.dataset().schema()
    }

    fn level_store(&mut self, attrs: Vec<usize>) -> Result<Arc<CubeStore>, CompareError> {
        match self.co.cluster_level_store(&self.conditions, &attrs) {
            Ok(store) => Ok(store),
            Err(env) => Err(self.fan_out_failed(env)),
        }
    }

    fn descend(&mut self, condition: Condition) -> Result<bool, CompareError> {
        // Validity first, on the zero-row twin — the exact checks a
        // single node's sub_population applies (schema-only), with an
        // invalid condition ending the walk cleanly just like there.
        if self
            .co
            .om
            .dataset()
            .sub_population(condition.attr, condition.value)
            .is_err()
        {
            return Ok(false);
        }
        let mut probe = self.conditions.clone();
        probe.push(condition);
        match self.co.cluster_count(&probe) {
            Ok(0) => Ok(false),
            Ok(_) => {
                self.conditions = probe;
                Ok(true)
            }
            Err(env) => Err(self.fan_out_failed(env)),
        }
    }
}

fn item_budget(batch: &Budget, budget_ms: Option<u64>) -> Budget {
    match budget_ms {
        Some(ms) => batch.narrowed(Duration::from_millis(ms)),
        None => batch.clone(),
    }
}

type GroupKey = (usize, ValueId, ValueId);

fn group_key(spec: &ComparisonSpec) -> GroupKey {
    let (lo, hi) = if spec.value_1 <= spec.value_2 {
        (spec.value_1, spec.value_2)
    } else {
        (spec.value_2, spec.value_1)
    };
    (spec.attr, lo, hi)
}

impl EngineOps for Coordinator {
    fn compare_config(&self) -> CompareConfig {
        self.om.config().compare.clone()
    }

    fn spec_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonSpec, OpsError> {
        Ok(self.om.spec_by_name(attr, value_1, value_2, class)?)
    }

    fn condition_by_name(&self, attr: &str, value: &str) -> Result<Condition, OpsError> {
        Ok(self.om.condition_by_name(attr, value)?)
    }

    fn attr_index(&self, name: &str) -> Result<usize, OpsError> {
        Ok(self.om.attr_index(name)?)
    }

    fn run_compare_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<ComparisonResult, OpsError> {
        // Same order as the single node: resolve, then the compare
        // failpoint, then the store.
        let spec = self.om.spec_by_name(attr, value_1, value_2, class)?;
        fail::inject("engine.compare").map_err(EngineError::from)?;
        let store = self.pinned_store(budget)?;
        Comparator::with_config(&store, self.compare_config())
            .compare_budgeted(&spec, budget)
            .map_err(|e| OpsError::Engine(EngineError::from(e)))
    }

    fn run_compare_by_name_partial(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<(ComparisonResult, Option<CoverageWire>), OpsError> {
        let spec = self.om.spec_by_name(attr, value_1, value_2, class)?;
        fail::inject("engine.compare").map_err(EngineError::from)?;
        let (store, coverage) = self.pinned_store_with(true)?;
        let result = Comparator::with_config(&store, self.compare_config())
            .compare_budgeted(&spec, budget)
            .map_err(|e| OpsError::Engine(EngineError::from(e)))?;
        Ok((result, coverage))
    }

    fn run_drill_down_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<DrillLevel>, OpsError> {
        fail::inject("engine.drill").map_err(EngineError::from)?;
        let spec = self.om.spec_by_name(attr, value_1, value_2, class)?;
        let compare = config.compare.clone();
        let mut pop = ClusterPopulation::new(self);
        let walked = drill_down_via(&mut pop, &spec, config, budget, move |store, spec, budget| {
            Comparator::with_config(&store, compare.clone()).compare_budgeted(spec, budget)
        });
        match walked {
            Ok(levels) => Ok(levels),
            Err(e) => match pop.failure.take() {
                Some(env) => Err(OpsError::Envelope(env)),
                None => Err(OpsError::Engine(EngineError::from(e))),
            },
        }
    }

    fn run_general_impressions(&self, budget: &Budget) -> Result<GiReport, OpsError> {
        fail::inject("engine.gi").map_err(EngineError::from)?;
        let snapshot = self.pinned_store(budget)?;
        let config = self.om.config();
        let mine = || -> Result<GiReport, EngineError> {
            Ok(GiReport {
                trends: mine_trends_budgeted(&snapshot, &config.trend, budget)?,
                exceptions: mine_exceptions_budgeted(&snapshot, &config.exception, budget)?,
                influence: mine_influence_budgeted(&snapshot, budget)?,
            })
        };
        mine().map_err(OpsError::Engine)
    }

    fn run_general_impressions_partial(
        &self,
        budget: &Budget,
    ) -> Result<(GiReport, Option<CoverageWire>), OpsError> {
        fail::inject("engine.gi").map_err(EngineError::from)?;
        let (snapshot, coverage) = self.pinned_store_with(true)?;
        let config = self.om.config();
        let mine = || -> Result<GiReport, EngineError> {
            Ok(GiReport {
                trends: mine_trends_budgeted(&snapshot, &config.trend, budget)?,
                exceptions: mine_exceptions_budgeted(&snapshot, &config.exception, budget)?,
                influence: mine_influence_budgeted(&snapshot, budget)?,
            })
        };
        mine().map(|report| (report, coverage)).map_err(OpsError::Engine)
    }

    fn query_store(&self, budget: &Budget) -> Result<Arc<StoreSnapshot>, OpsError> {
        Ok(self.pinned_store(budget)?)
    }

    fn run_batch(
        &self,
        items: &[BatchItem],
        drill_config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<BatchOutcome>, OpsError> {
        fail::inject("engine.batch").map_err(EngineError::from)?;
        budget.check().map_err(EngineError::from)?;
        // One pinned merged store for the whole batch, like the single
        // node's one snapshot.
        let store = self.pinned_store(budget)?;
        let compare_config = self.compare_config();
        let mut outcomes: Vec<Option<BatchOutcome>> = vec![None; items.len()];

        // Compare items, grouped exactly as om-exec groups them (the
        // shared pass there is an optimization with byte-identical
        // output; here each member runs the serial comparator on the
        // merged store).
        let mut groups: HashMap<GroupKey, Vec<(usize, ComparisonSpec, Budget)>> = HashMap::new();
        let mut group_order: Vec<GroupKey> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if let BatchItem::Compare { spec, budget_ms } = item {
                let key = group_key(spec);
                groups
                    .entry(key)
                    .or_insert_with(|| {
                        group_order.push(key);
                        Vec::new()
                    })
                    .push((i, *spec, item_budget(budget, *budget_ms)));
            }
        }
        for key in group_order {
            let Some(members) = groups.remove(&key) else {
                continue;
            };
            let group_fault = fail::inject("exec.batch-group").err();
            for (i, spec, member_budget) in members {
                let outcome = match &group_fault {
                    Some(f) => BatchOutcome::from_error(&CompareError::Fault(f.clone())),
                    None => match member_budget.check() {
                        Err(e) => BatchOutcome::from_error(&CompareError::Fault(e)),
                        Ok(()) => match Comparator::with_config(&store, compare_config.clone())
                            .compare_budgeted(&spec, &member_budget)
                        {
                            Ok(r) => BatchOutcome::Compare(r),
                            Err(e) => BatchOutcome::from_error(&e),
                        },
                    },
                };
                if let Some(slot) = outcomes.get_mut(i) {
                    *slot = Some(outcome);
                }
            }
        }

        // Drill items: memoized path walk, same sharing as om-exec.
        let mut memo: HashMap<(Vec<Condition>, ComparisonSpec), ComparisonResult> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if let BatchItem::Drill {
                spec,
                path,
                budget_ms,
            } = item
            {
                let member_budget = item_budget(budget, *budget_ms);
                let outcome = self.drill_item(
                    spec,
                    path,
                    &member_budget,
                    drill_config,
                    &compare_config,
                    &mut memo,
                );
                if let Some(slot) = outcomes.get_mut(i) {
                    *slot = Some(outcome);
                }
            }
        }

        Ok(outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| BatchOutcome::Failed {
                    message: "batch item produced no outcome".to_owned(),
                })
            })
            .collect())
    }

    fn ingest_enabled(&self) -> bool {
        self.ingest
    }

    fn ingest_rows(&self, rows: &[Vec<String>]) -> Result<IngestAck, OpsError> {
        if !self.ingest {
            return Err(ErrorEnvelope::new(
                ErrorCode::NotFound,
                "live ingestion is not enabled (start the server with an ingest WAL)",
            )
            .into());
        }
        // Validate the whole batch up front against the shared schema:
        // all-or-nothing with the exact single-node bad_row envelope,
        // and no shard ever sees a batch its siblings would reject.
        for (i, row) in rows.iter().enumerate() {
            self.parser
                .parse_fields(row, i + 1)
                .map_err(|e| OpsError::Envelope(ingest_envelope(&e)))?;
        }
        let mut parts: Vec<Vec<Vec<String>>> = vec![Vec::new(); self.n_partitions];
        for row in rows {
            if let Some(part) = parts.get_mut(route_fields(row, self.n_partitions)) {
                part.push(row.clone());
            }
        }
        ClusterMetrics::add(&self.metrics.ingest_rows_routed_total, rows.len() as u64);
        // Every partition gets a write fan-out — an empty batch for
        // partitions the router assigned nothing. The ack's
        // `rows_total` is cumulative per partition, so the cluster-wide
        // total is only right if every partition reports.
        let acks = self
            .gather_parts(
                "ingest fan-out",
                self.fan_out_partitions(|p| {
                    let sub = parts.get(p).map(Vec::as_slice).unwrap_or(&[]);
                    self.ingest_partition(p, sub)
                }),
            )
            .map_err(OpsError::Envelope)?;
        let mut ack = IngestAck {
            accepted: 0,
            rows_total: 0,
            generation: 0,
        };
        for part_ack in acks {
            ack.accepted += part_ack.accepted;
            ack.rows_total += part_ack.rows_total;
            // Shard generations advance independently; report the
            // furthest one (documented divergence from a single node's
            // scalar generation).
            ack.generation = ack.generation.max(part_ack.generation);
        }
        Ok(ack)
    }

    fn extra_metrics(&self) -> String {
        self.metrics
            .breaker_open
            .store(self.health.open_count(), Ordering::Relaxed);
        self.metrics.render()
    }
}
