//! The coordinator: the `/v1` API served by distributed merge.
//!
//! A [`Coordinator`] implements `om_server::ops::EngineOps` — the same
//! seam the resident single-node backend implements — by fanning every
//! operation out to N om-server shards and merging their partials:
//!
//! * **Epoch pinning.** Every store-backed read (compare, GI, slice,
//!   batch) first polls each shard's published generation, then fetches
//!   each shard's full store *at that pinned generation*
//!   (`/internal/store?expect=G`). A shard that republished in between
//!   answers `409` and the whole read re-pins — a merged store can
//!   therefore never mix generations. The merged store is cached keyed
//!   by the generation vector, so steady-state reads fan out only the
//!   cheap generation poll.
//! * **Deterministic merge.** Partials merge in shard order with the
//!   cube merge algebra (`cube(A) ⊕ cube(B) == cube(A ∪ B)`), and
//!   failures gather with om-exec's earliest-shard-error-wins rule
//!   ([`om_exec::gather_in_order`]) — the response does not depend on
//!   which shard answered first on the wire.
//! * **Identical engine code.** The merged store is then queried by the
//!   *single-node* comparator/miner code, and names resolve through a
//!   zero-row engine twin built from the shards' own schema — which is
//!   why coordinator responses (results *and* error messages) are
//!   byte-identical to a single node holding the union of the
//!   partitions. The only sanctioned divergences are availability
//!   errors a single node cannot have (a shard down or lagging, a
//!   generation race that never settles); those surface as `503`
//!   envelopes naming the shard, with a `Retry-After` hint.
//! * **Drill-down.** The drill walk runs the shared
//!   [`om_compare::drill_down_via`] loop over a [`DrillPopulation`]
//!   backed by `/internal/level` fan-outs (merged per level) and
//!   `/internal/count` emptiness probes. Drill levels read the shards'
//!   immutable *base* partitions — exactly as a single node drills its
//!   base dataset — so level stores are generation-free and cacheable.
//! * **Ingest.** Rows are validated up front against the shared schema
//!   (identical `bad_row` envelopes, all-or-nothing), routed by the
//!   stable row hash ([`crate::router`]), and forwarded to the owning
//!   shards' `/v1/ingest`. Acks sum `accepted`/`rows_total`; the
//!   reported generation is the maximum across touched shards (shard
//!   generations advance independently). Cross-shard atomicity is not
//!   guaranteed: a mid-batch shard failure leaves the rows accepted by
//!   other shards durable in their WALs.
//!
//! The coordinator assumes every shard runs the default engine
//! configuration (the cluster tooling starts shards that way); the
//! comparator/miner thresholds it applies to merged stores come from
//! the same defaults.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use om_api::{
    b64_decode, ConditionWire, ErrorCode, ErrorEnvelope, IngestRequest, IngestResponse,
    InternalCountRequest, InternalCountResponse, InternalGenerationResponse, InternalLevelRequest,
    InternalLevelResponse, InternalSchemaResponse, InternalStoreResponse,
};
use om_compare::{
    candidate_attrs_in, drill_down_via, CompareConfig, CompareError, Comparator, ComparisonResult,
    ComparisonSpec, DrillConfig, DrillLevel, DrillPopulation,
};
use om_cube::persist::decode_store;
use om_cube::CubeStore;
use om_data::persist::decode_dataset;
use om_data::{Schema, ValueId};
use om_engine::{
    fail, BatchItem, BatchOutcome, Budget, Condition, EngineConfig, EngineError, FaultError,
    GiReport, OpportunityMap, SharedStore, StoreSnapshot,
};
use om_exec::gather_in_order;
use om_gi::{mine_exceptions_budgeted, mine_influence_budgeted, mine_trends_budgeted};
use om_ingest::RowParser;
use om_server::ops::{ingest_envelope, EngineOps, IngestAck, OpsError};

use crate::client::ShardClient;
use crate::metrics::ClusterMetrics;
use crate::router::route_fields;

/// How a coordinator reaches and treats its shards.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard endpoints (`host:port`), in shard-index order. The order
    /// is part of the cluster identity: routing and merging both use
    /// it.
    pub shard_addrs: Vec<String>,
    /// Per-shard request timeout; a shard that exceeds it becomes a
    /// `503` partial-failure envelope naming the shard.
    pub shard_timeout: Duration,
    /// `Retry-After` hint attached to overload envelopes, in seconds.
    pub retry_after_secs: u64,
    /// How many times a store read re-pins when shards republish
    /// mid-fan-out before giving up with an overload envelope.
    pub stale_retries: u32,
    /// Whether `/v1/ingest` is live (requires shards started with
    /// ingest WALs).
    pub ingest: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shard_addrs: Vec::new(),
            shard_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            stale_retries: 3,
            ingest: false,
        }
    }
}

/// A resolved condition path, as a hashable cache key.
type CondKey = Vec<(usize, ValueId)>;

fn cond_key(conditions: &[Condition]) -> CondKey {
    conditions.iter().map(|c| (c.attr, c.value)).collect()
}

fn wire_conditions(conditions: &[Condition]) -> Vec<ConditionWire> {
    conditions
        .iter()
        .map(|c| ConditionWire {
            attr: c.attr as u64,
            value: u64::from(c.value),
        })
        .collect()
}

/// Drill-level stores are cached per (condition path, attribute set);
/// clear-on-cap keeps a pathological request mix from growing without
/// bound while leaving the common session shapes fully cached.
const LEVEL_CACHE_CAP: usize = 512;

type LevelCache = HashMap<(CondKey, Vec<usize>), Arc<CubeStore>>;

/// The coordinator for one shard topology. See the module docs.
pub struct Coordinator {
    shards: Vec<ShardClient>,
    /// Zero-row engine twin built from the shards' schema: resolves
    /// names, validates conditions and carries the shared configs with
    /// the exact single-node code (and error messages).
    om: OpportunityMap,
    parser: RowParser,
    retry_after_secs: u64,
    stale_retries: u32,
    ingest: bool,
    /// Merged full store, keyed by the pinned generation vector.
    merged: Mutex<Option<(Vec<u64>, Arc<StoreSnapshot>)>>,
    /// Merged drill-level stores (generation-free; see module docs).
    levels: Mutex<LevelCache>,
    /// Conditioned base-partition row counts, summed across shards.
    counts: Mutex<HashMap<CondKey, u64>>,
    metrics: ClusterMetrics,
}

impl Coordinator {
    /// Connect to the shards: fetch and cross-check their schemas, and
    /// bootstrap the zero-row engine twin.
    ///
    /// # Errors
    /// Unreachable shards, shards that disagree on the schema, or a
    /// schema the engine cannot host.
    pub fn connect(config: ClusterConfig) -> Result<Self, String> {
        if config.shard_addrs.is_empty() {
            return Err("cluster needs at least one shard".to_owned());
        }
        let shards: Vec<ShardClient> = config
            .shard_addrs
            .iter()
            .map(|a| ShardClient::new(a.clone(), config.shard_timeout))
            .collect();
        let mut schema_b64 = String::new();
        for (i, shard) in shards.iter().enumerate() {
            let body = shard
                .expect_ok("GET", "/internal/schema", None)
                .map_err(|e| format!("shard {i} ({}): schema fetch failed: {e}", shard.addr()))?;
            let resp = InternalSchemaResponse::parse(&body)
                .map_err(|e| format!("shard {i} ({}): bad schema response: {e}", shard.addr()))?;
            if i == 0 {
                schema_b64 = resp.dataset_b64;
            } else if schema_b64 != resp.dataset_b64 {
                return Err(format!(
                    "shard {i} ({}) disagrees with shard 0 on the schema; \
                     every shard must be partitioned from the same dataset",
                    shard.addr()
                ));
            }
        }
        let bytes = b64_decode(&schema_b64).map_err(|e| format!("shard schema is not valid base64: {e}"))?;
        let zero = decode_dataset(Bytes::from(bytes))
            .map_err(|e| format!("shard schema dataset failed to decode: {e}"))?;
        let om = OpportunityMap::build(zero, EngineConfig::default())
            .map_err(|e| format!("coordinator engine bootstrap failed: {e}"))?;
        let parser = RowParser::new(om.dataset().schema().clone(), om.cut_points())
            .map_err(|e| format!("coordinator row parser bootstrap failed: {e}"))?;
        let metrics = ClusterMetrics::default();
        metrics
            .shards
            .store(shards.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(Self {
            shards,
            om,
            parser,
            retry_after_secs: config.retry_after_secs,
            stale_retries: config.stale_retries,
            ingest: config.ingest,
            merged: Mutex::new(None),
            levels: Mutex::new(HashMap::new()),
            counts: Mutex::new(HashMap::new()),
            metrics,
        })
    }

    /// Number of shards in the topology.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The coordinator's counters (rendered into `/metrics`).
    #[must_use]
    pub fn cluster_metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    fn shard_addr(&self, i: usize) -> &str {
        self.shards.get(i).map_or("?", ShardClient::addr)
    }

    fn overloaded(&self, message: String) -> ErrorEnvelope {
        ErrorEnvelope {
            retry_after_ms: Some(self.retry_after_secs.saturating_mul(1000)),
            ..ErrorEnvelope::new(ErrorCode::Overloaded, message)
        }
    }

    /// Run `f(shard_index, shard)` once per shard, concurrently, and
    /// return the per-shard results in shard order.
    fn fan_out<T: Send>(
        &self,
        f: impl Fn(usize, &ShardClient) -> Result<T, String> + Sync,
    ) -> Vec<Result<T, String>> {
        ClusterMetrics::add(&self.metrics.fanouts_total, 1);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, shard)| scope.spawn(move || f(i, shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("shard fan-out worker panicked".to_owned()))
                })
                .collect()
        })
    }

    /// Earliest-shard-error-wins gather: the reported failure is the
    /// lowest-indexed failing shard, independent of wire timing.
    fn gather<T>(&self, op: &str, results: Vec<Result<T, String>>) -> Result<Vec<T>, ErrorEnvelope> {
        let indexed = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.map_err(|msg| (i, msg)));
        gather_in_order(indexed).map_err(|(i, msg)| {
            ClusterMetrics::add(&self.metrics.shard_errors_total, 1);
            self.overloaded(format!(
                "shard {i} ({}) failed during {op}: {msg}",
                self.shard_addr(i)
            ))
        })
    }

    /// Pin one generation per shard and return the merged full store at
    /// exactly that generation vector (cached across requests).
    fn pinned_store(&self, _budget: &Budget) -> Result<Arc<StoreSnapshot>, ErrorEnvelope> {
        enum Fetch {
            Fresh(Box<CubeStore>),
            Stale,
        }
        for _ in 0..=self.stale_retries {
            let gens = self.gather(
                "generation poll",
                self.fan_out(|_, shard| {
                    let body = shard.expect_ok("GET", "/internal/generation", None)?;
                    InternalGenerationResponse::parse(&body).map(|r| r.generation)
                }),
            )?;
            if let Some((pinned, snap)) = self.merged.lock().clone() {
                if pinned == gens {
                    return Ok(snap);
                }
            }
            let fetched = self.gather(
                "store fetch",
                self.fan_out(|i, shard| {
                    let expect = gens.get(i).copied().unwrap_or(0);
                    let (status, body) = shard.get(&format!("/internal/store?expect={expect}"))?;
                    match status {
                        200 => {
                            let resp = InternalStoreResponse::parse(&body)?;
                            let bytes = b64_decode(&resp.store_b64)?;
                            let store = decode_store(Bytes::from(bytes))
                                .map_err(|e| format!("store decode failed: {e}"))?;
                            Ok(Fetch::Fresh(Box::new(store)))
                        }
                        // The shard republished since the poll: not a
                        // failure, a re-pin.
                        409 => Ok(Fetch::Stale),
                        s => Err(format!("HTTP {s}: {}", body.trim())),
                    }
                }),
            )?;
            if fetched.iter().any(|f| matches!(f, Fetch::Stale)) {
                ClusterMetrics::add(&self.metrics.stale_retries_total, 1);
                continue;
            }
            let mut merged: Option<CubeStore> = None;
            for f in fetched {
                let Fetch::Fresh(part) = f else { continue };
                merged = Some(match merged {
                    None => *part,
                    Some(acc) => acc.merge(&part).map_err(|e| {
                        ErrorEnvelope::new(
                            ErrorCode::Internal,
                            format!("shard store merge failed: {e}"),
                        )
                    })?,
                });
            }
            let Some(merged) = merged else {
                return Err(ErrorEnvelope::new(
                    ErrorCode::Internal,
                    "cluster produced no shard stores",
                ));
            };
            let snap = SharedStore::new(merged).snapshot();
            ClusterMetrics::add(&self.metrics.store_refreshes_total, 1);
            *self.merged.lock() = Some((gens, Arc::clone(&snap)));
            return Ok(snap);
        }
        Err(self.overloaded(format!(
            "cluster store generations kept moving across {} pins (live ingestion racing the \
             fan-out); retry",
            u64::from(self.stale_retries) + 1
        )))
    }

    /// Merged drill-level store over the shards' conditioned *base*
    /// partitions (generation-free; see module docs).
    fn cluster_level_store(
        &self,
        conditions: &[Condition],
        attrs: &[usize],
    ) -> Result<Arc<CubeStore>, ErrorEnvelope> {
        let key = (cond_key(conditions), attrs.to_vec());
        if let Some(hit) = self.levels.lock().get(&key) {
            ClusterMetrics::add(&self.metrics.level_cache_hits_total, 1);
            return Ok(Arc::clone(hit));
        }
        ClusterMetrics::add(&self.metrics.level_cache_misses_total, 1);
        let request = InternalLevelRequest {
            conditions: wire_conditions(conditions),
            attrs: attrs.iter().map(|&a| a as u64).collect(),
        }
        .encode();
        let parts = self.gather(
            "drill-level fan-out",
            self.fan_out(|_, shard| {
                let body = shard.expect_ok("POST", "/internal/level", Some(&request))?;
                let resp = InternalLevelResponse::parse(&body)?;
                let bytes = b64_decode(&resp.store_b64)?;
                decode_store(Bytes::from(bytes)).map_err(|e| format!("level store decode failed: {e}"))
            }),
        )?;
        let mut parts = parts.into_iter();
        let Some(mut acc) = parts.next() else {
            return Err(ErrorEnvelope::new(
                ErrorCode::Internal,
                "cluster produced no level stores",
            ));
        };
        for part in parts {
            acc = acc.merge(&part).map_err(|e| {
                ErrorEnvelope::new(ErrorCode::Internal, format!("level store merge failed: {e}"))
            })?;
        }
        let merged = Arc::new(acc);
        let mut cache = self.levels.lock();
        if cache.len() >= LEVEL_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&merged));
        Ok(merged)
    }

    /// Conditioned base-partition row count, summed across shards.
    fn cluster_count(&self, conditions: &[Condition]) -> Result<u64, ErrorEnvelope> {
        let key = cond_key(conditions);
        if let Some(&hit) = self.counts.lock().get(&key) {
            return Ok(hit);
        }
        let request = InternalCountRequest {
            conditions: wire_conditions(conditions),
        }
        .encode();
        let counts = self.gather(
            "count fan-out",
            self.fan_out(|_, shard| {
                let body = shard.expect_ok("POST", "/internal/count", Some(&request))?;
                InternalCountResponse::parse(&body).map(|r| r.count)
            }),
        )?;
        let total: u64 = counts.iter().sum();
        let mut cache = self.counts.lock();
        if cache.len() >= LEVEL_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, total);
        Ok(total)
    }

    /// The conditioned-population mirror of the batch fixed-path walk:
    /// validate each condition against the schema and probe the
    /// cluster-wide sub-population for emptiness, producing the exact
    /// single-node failure messages.
    fn validate_prefix(&self, prefix: &[Condition], schema: &Schema) -> Result<(), PrefixError> {
        for j in 0..prefix.len() {
            let Some(&cond) = prefix.get(j) else { break };
            // The zero-row twin runs the same validity checks as a
            // shard's sub_population (they depend only on the schema).
            if let Err(e) = self.om.dataset().sub_population(cond.attr, cond.value) {
                return Err(PrefixError::Invalid(format!(
                    "condition {} is invalid: {e}",
                    cond.display(schema)
                )));
            }
            // om-lint: allow(panic-path) — j < prefix.len() by the enumerate bound
            match self.cluster_count(&prefix[..=j]) {
                Ok(0) => {
                    return Err(PrefixError::Invalid(format!(
                        "condition {} selects no records",
                        cond.display(schema)
                    )))
                }
                Ok(_) => {}
                Err(env) => return Err(PrefixError::FanOut(env)),
            }
        }
        Ok(())
    }

    /// The coordinator's mirror of om-exec's `run_drill_item`: the same
    /// walk, budgets, memoization and error classification, with level
    /// stores and emptiness probes answered by shard fan-out.
    fn drill_item(
        &self,
        spec: &ComparisonSpec,
        path: &[Condition],
        budget: &Budget,
        drill_config: &DrillConfig,
        compare_config: &CompareConfig,
        memo: &mut HashMap<(Vec<Condition>, ComparisonSpec), ComparisonResult>,
    ) -> BatchOutcome {
        if path.is_empty() {
            // The automated walk; only the unconditioned root result is
            // memoizable from outside (deeper levels depend on the
            // walk's own findings) — it is the runner's first call.
            let mut at_root = true;
            let mut pop = ClusterPopulation::new(self);
            let compare = compare_config.clone();
            let walked = drill_down_via(&mut pop, spec, drill_config, budget, |store, spec, budget| {
                let is_root = std::mem::take(&mut at_root);
                let root_key = (Vec::new(), *spec);
                if is_root {
                    if let Some(hit) = memo.get(&root_key) {
                        return Ok(hit.clone());
                    }
                }
                let result =
                    Comparator::with_config(&store, compare.clone()).compare_budgeted(spec, budget)?;
                if is_root {
                    memo.insert(root_key, result.clone());
                }
                Ok(result)
            });
            return match walked {
                Ok(levels) => BatchOutcome::Drill(levels),
                Err(e) => match pop.failure.take() {
                    Some(env) => BatchOutcome::Overloaded { message: env.message },
                    None => BatchOutcome::from_error(&e),
                },
            };
        }

        let schema = self.om.dataset().schema();
        let mut levels: Vec<DrillLevel> = Vec::new();
        for depth in 0..=path.len() {
            if let Err(e) = budget.check() {
                return BatchOutcome::from_error(&CompareError::Fault(e));
            }
            if let Err(e) = fail::inject("compare.drill-level") {
                return BatchOutcome::from_error(&CompareError::Fault(e));
            }
            let Some(prefix) = path.get(..depth) else {
                break;
            };
            match self.validate_prefix(prefix, schema) {
                Ok(()) => {}
                Err(PrefixError::Invalid(message)) => return BatchOutcome::Failed { message },
                Err(PrefixError::FanOut(env)) => {
                    return BatchOutcome::Overloaded { message: env.message }
                }
            }
            let mut excluded: Vec<usize> = vec![spec.attr];
            excluded.extend(prefix.iter().map(|c| c.attr));
            let attrs = candidate_attrs_in(schema, spec.attr, &excluded);
            if attrs.len() < 2 {
                break; // nothing left to rank under these conditions
            }
            let key = (prefix.to_vec(), *spec);
            let result = if let Some(hit) = memo.get(&key) {
                hit.clone()
            } else {
                let store = match self.cluster_level_store(prefix, &attrs) {
                    Ok(store) => store,
                    Err(env) => return BatchOutcome::Overloaded { message: env.message },
                };
                let computed =
                    Comparator::with_config(&store, compare_config.clone()).compare_budgeted(spec, budget);
                match computed {
                    Ok(r) => {
                        memo.insert(key, r.clone());
                        r
                    }
                    Err(e) if depth == 0 => return BatchOutcome::from_error(&e),
                    Err(e @ CompareError::Fault(_)) => return BatchOutcome::from_error(&e),
                    Err(_) => break, // conditioned data too thin — stop cleanly
                }
            };
            levels.push(DrillLevel {
                conditions: prefix.to_vec(),
                condition_labels: prefix.iter().map(|c| c.display(schema)).collect(),
                result,
            });
        }
        BatchOutcome::Drill(levels)
    }
}

enum PrefixError {
    /// The request is at fault — the single-node `Failed` message.
    Invalid(String),
    /// A shard fan-out failed — availability, retryable.
    FanOut(ErrorEnvelope),
}

/// The distributed [`DrillPopulation`]: levels are merged shard
/// partials, descent is a schema validity probe plus a cluster-wide
/// emptiness count. A shard failure mid-walk is stashed as the `/v1`
/// envelope (the carrier `CompareError` is replaced by the caller).
struct ClusterPopulation<'a> {
    co: &'a Coordinator,
    conditions: Vec<Condition>,
    failure: Option<ErrorEnvelope>,
}

impl<'a> ClusterPopulation<'a> {
    fn new(co: &'a Coordinator) -> Self {
        Self {
            co,
            conditions: Vec::new(),
            failure: None,
        }
    }

    fn fan_out_failed(&mut self, env: ErrorEnvelope) -> CompareError {
        let carrier = CompareError::Fault(FaultError::Injected(format!(
            "cluster fan-out failed: {}",
            env.message
        )));
        self.failure = Some(env);
        carrier
    }
}

impl DrillPopulation for ClusterPopulation<'_> {
    fn schema(&self) -> &Schema {
        self.co.om.dataset().schema()
    }

    fn level_store(&mut self, attrs: Vec<usize>) -> Result<Arc<CubeStore>, CompareError> {
        match self.co.cluster_level_store(&self.conditions, &attrs) {
            Ok(store) => Ok(store),
            Err(env) => Err(self.fan_out_failed(env)),
        }
    }

    fn descend(&mut self, condition: Condition) -> Result<bool, CompareError> {
        // Validity first, on the zero-row twin — the exact checks a
        // single node's sub_population applies (schema-only), with an
        // invalid condition ending the walk cleanly just like there.
        if self
            .co
            .om
            .dataset()
            .sub_population(condition.attr, condition.value)
            .is_err()
        {
            return Ok(false);
        }
        let mut probe = self.conditions.clone();
        probe.push(condition);
        match self.co.cluster_count(&probe) {
            Ok(0) => Ok(false),
            Ok(_) => {
                self.conditions = probe;
                Ok(true)
            }
            Err(env) => Err(self.fan_out_failed(env)),
        }
    }
}

fn item_budget(batch: &Budget, budget_ms: Option<u64>) -> Budget {
    match budget_ms {
        Some(ms) => batch.narrowed(Duration::from_millis(ms)),
        None => batch.clone(),
    }
}

type GroupKey = (usize, ValueId, ValueId);

fn group_key(spec: &ComparisonSpec) -> GroupKey {
    let (lo, hi) = if spec.value_1 <= spec.value_2 {
        (spec.value_1, spec.value_2)
    } else {
        (spec.value_2, spec.value_1)
    };
    (spec.attr, lo, hi)
}

impl EngineOps for Coordinator {
    fn compare_config(&self) -> CompareConfig {
        self.om.config().compare.clone()
    }

    fn spec_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonSpec, OpsError> {
        Ok(self.om.spec_by_name(attr, value_1, value_2, class)?)
    }

    fn condition_by_name(&self, attr: &str, value: &str) -> Result<Condition, OpsError> {
        Ok(self.om.condition_by_name(attr, value)?)
    }

    fn attr_index(&self, name: &str) -> Result<usize, OpsError> {
        Ok(self.om.attr_index(name)?)
    }

    fn run_compare_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<ComparisonResult, OpsError> {
        // Same order as the single node: resolve, then the compare
        // failpoint, then the store.
        let spec = self.om.spec_by_name(attr, value_1, value_2, class)?;
        fail::inject("engine.compare").map_err(EngineError::from)?;
        let store = self.pinned_store(budget)?;
        Comparator::with_config(&store, self.compare_config())
            .compare_budgeted(&spec, budget)
            .map_err(|e| OpsError::Engine(EngineError::from(e)))
    }

    fn run_drill_down_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<DrillLevel>, OpsError> {
        fail::inject("engine.drill").map_err(EngineError::from)?;
        let spec = self.om.spec_by_name(attr, value_1, value_2, class)?;
        let compare = config.compare.clone();
        let mut pop = ClusterPopulation::new(self);
        let walked = drill_down_via(&mut pop, &spec, config, budget, move |store, spec, budget| {
            Comparator::with_config(&store, compare.clone()).compare_budgeted(spec, budget)
        });
        match walked {
            Ok(levels) => Ok(levels),
            Err(e) => match pop.failure.take() {
                Some(env) => Err(OpsError::Envelope(env)),
                None => Err(OpsError::Engine(EngineError::from(e))),
            },
        }
    }

    fn run_general_impressions(&self, budget: &Budget) -> Result<GiReport, OpsError> {
        fail::inject("engine.gi").map_err(EngineError::from)?;
        let snapshot = self.pinned_store(budget)?;
        let config = self.om.config();
        let mine = || -> Result<GiReport, EngineError> {
            Ok(GiReport {
                trends: mine_trends_budgeted(&snapshot, &config.trend, budget)?,
                exceptions: mine_exceptions_budgeted(&snapshot, &config.exception, budget)?,
                influence: mine_influence_budgeted(&snapshot, budget)?,
            })
        };
        mine().map_err(OpsError::Engine)
    }

    fn query_store(&self, budget: &Budget) -> Result<Arc<StoreSnapshot>, OpsError> {
        Ok(self.pinned_store(budget)?)
    }

    fn run_batch(
        &self,
        items: &[BatchItem],
        drill_config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<BatchOutcome>, OpsError> {
        fail::inject("engine.batch").map_err(EngineError::from)?;
        budget.check().map_err(EngineError::from)?;
        // One pinned merged store for the whole batch, like the single
        // node's one snapshot.
        let store = self.pinned_store(budget)?;
        let compare_config = self.compare_config();
        let mut outcomes: Vec<Option<BatchOutcome>> = vec![None; items.len()];

        // Compare items, grouped exactly as om-exec groups them (the
        // shared pass there is an optimization with byte-identical
        // output; here each member runs the serial comparator on the
        // merged store).
        let mut groups: HashMap<GroupKey, Vec<(usize, ComparisonSpec, Budget)>> = HashMap::new();
        let mut group_order: Vec<GroupKey> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if let BatchItem::Compare { spec, budget_ms } = item {
                let key = group_key(spec);
                groups
                    .entry(key)
                    .or_insert_with(|| {
                        group_order.push(key);
                        Vec::new()
                    })
                    .push((i, *spec, item_budget(budget, *budget_ms)));
            }
        }
        for key in group_order {
            let Some(members) = groups.remove(&key) else {
                continue;
            };
            let group_fault = fail::inject("exec.batch-group").err();
            for (i, spec, member_budget) in members {
                let outcome = match &group_fault {
                    Some(f) => BatchOutcome::from_error(&CompareError::Fault(f.clone())),
                    None => match member_budget.check() {
                        Err(e) => BatchOutcome::from_error(&CompareError::Fault(e)),
                        Ok(()) => match Comparator::with_config(&store, compare_config.clone())
                            .compare_budgeted(&spec, &member_budget)
                        {
                            Ok(r) => BatchOutcome::Compare(r),
                            Err(e) => BatchOutcome::from_error(&e),
                        },
                    },
                };
                if let Some(slot) = outcomes.get_mut(i) {
                    *slot = Some(outcome);
                }
            }
        }

        // Drill items: memoized path walk, same sharing as om-exec.
        let mut memo: HashMap<(Vec<Condition>, ComparisonSpec), ComparisonResult> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if let BatchItem::Drill {
                spec,
                path,
                budget_ms,
            } = item
            {
                let member_budget = item_budget(budget, *budget_ms);
                let outcome = self.drill_item(
                    spec,
                    path,
                    &member_budget,
                    drill_config,
                    &compare_config,
                    &mut memo,
                );
                if let Some(slot) = outcomes.get_mut(i) {
                    *slot = Some(outcome);
                }
            }
        }

        Ok(outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| BatchOutcome::Failed {
                    message: "batch item produced no outcome".to_owned(),
                })
            })
            .collect())
    }

    fn ingest_enabled(&self) -> bool {
        self.ingest
    }

    fn ingest_rows(&self, rows: &[Vec<String>]) -> Result<IngestAck, OpsError> {
        if !self.ingest {
            return Err(ErrorEnvelope::new(
                ErrorCode::NotFound,
                "live ingestion is not enabled (start the server with an ingest WAL)",
            )
            .into());
        }
        // Validate the whole batch up front against the shared schema:
        // all-or-nothing with the exact single-node bad_row envelope,
        // and no shard ever sees a batch its siblings would reject.
        for (i, row) in rows.iter().enumerate() {
            self.parser
                .parse_fields(row, i + 1)
                .map_err(|e| OpsError::Envelope(ingest_envelope(&e)))?;
        }
        let n = self.shards.len();
        let mut parts: Vec<Vec<Vec<String>>> = vec![Vec::new(); n];
        for row in rows {
            if let Some(part) = parts.get_mut(route_fields(row, n)) {
                part.push(row.clone());
            }
        }
        ClusterMetrics::add(&self.metrics.ingest_rows_routed_total, rows.len() as u64);
        // Every shard gets a POST — an empty batch for shards the router
        // assigned nothing. The ack's `rows_total` is cumulative, so the
        // cluster-wide total is only right if every shard reports.
        let bodies: Vec<String> = parts
            .into_iter()
            .map(|rows| IngestRequest { rows }.encode())
            .collect();
        let acks = self
            .gather(
                "ingest fan-out",
                self.fan_out(|i, shard| {
                    let body = bodies.get(i).map_or("{\"rows\":[]}", String::as_str);
                    let response = shard.expect_ok("POST", "/v1/ingest", Some(body))?;
                    IngestResponse::parse(&response)
                }),
            )
            .map_err(OpsError::Envelope)?;
        let mut ack = IngestAck {
            accepted: 0,
            rows_total: 0,
            generation: 0,
        };
        for shard_ack in acks {
            ack.accepted += shard_ack.accepted;
            ack.rows_total += shard_ack.rows_total;
            // Shard generations advance independently; report the
            // furthest one (documented divergence from a single node's
            // scalar generation).
            ack.generation = ack.generation.max(shard_ack.generation);
        }
        Ok(ack)
    }

    fn extra_metrics(&self) -> String {
        self.metrics.render()
    }
}
