//! Coordinator counters, rendered into `/metrics`.
//!
//! Same conventions as om-server's own registry: monotonic atomics,
//! text exposition with `# TYPE` lines, relaxed ordering (these are
//! operator telemetry, not synchronization).

use std::sync::atomic::{AtomicU64, Ordering};

/// The `om_cluster_*` series.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Number of shard processes in the topology (a gauge; set once at
    /// connect — `partitions * replicas`).
    pub shards: AtomicU64,
    /// Number of partitions in the topology (a gauge; set at connect).
    pub partitions: AtomicU64,
    /// Replication factor (a gauge; set at connect).
    pub replicas: AtomicU64,
    /// Shard fan-outs performed (one per distributed operation, not per
    /// shard request).
    pub fanouts_total: AtomicU64,
    /// Shard requests that failed (transport error or non-2xx).
    pub shard_errors_total: AtomicU64,
    /// Same-replica retries after a transport failure (each one paid a
    /// capped, jittered backoff first).
    pub retries_total: AtomicU64,
    /// Failovers to the next replica after a replica was exhausted.
    pub failovers_total: AtomicU64,
    /// Hedged store fetches fired because the preferred replica ran
    /// past the hedge latency threshold.
    pub hedges_total: AtomicU64,
    /// Breakers currently not closed (a gauge; refreshed on render).
    pub breaker_open: AtomicU64,
    /// Breaker transitions into the open state.
    pub breaker_opens_total: AtomicU64,
    /// Half-open probes admitted against suspect replicas.
    pub breaker_probes_total: AtomicU64,
    /// Store fetches retried because a shard moved generations between
    /// the pin poll and the fetch.
    pub stale_retries_total: AtomicU64,
    /// Merged-store rebuilds (a cache miss on the pinned generation
    /// vector).
    pub store_refreshes_total: AtomicU64,
    /// Drill-level stores served from the coordinator's merge cache.
    pub level_cache_hits_total: AtomicU64,
    /// Drill-level stores that required a shard fan-out and merge.
    pub level_cache_misses_total: AtomicU64,
    /// Rows routed to shards by live ingestion.
    pub ingest_rows_routed_total: AtomicU64,
    /// Rows replayed to a recovered replica that missed writes.
    pub catchup_rows_total: AtomicU64,
    /// Degraded-mode answers served with a coverage envelope
    /// (`allow_partial` requests that skipped dead partitions).
    pub partial_answers_total: AtomicU64,
}

impl ClusterMetrics {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Text exposition, appended to the coordinator's `/metrics` body.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let series: [(&str, &str, &AtomicU64); 18] = [
            ("om_cluster_shards", "gauge", &self.shards),
            ("om_cluster_partitions", "gauge", &self.partitions),
            ("om_cluster_replicas", "gauge", &self.replicas),
            ("om_cluster_fanouts_total", "counter", &self.fanouts_total),
            ("om_cluster_shard_errors_total", "counter", &self.shard_errors_total),
            ("om_cluster_retries_total", "counter", &self.retries_total),
            ("om_cluster_failovers_total", "counter", &self.failovers_total),
            ("om_cluster_hedges_total", "counter", &self.hedges_total),
            ("om_cluster_breaker_open", "gauge", &self.breaker_open),
            ("om_cluster_breaker_opens_total", "counter", &self.breaker_opens_total),
            ("om_cluster_breaker_probes_total", "counter", &self.breaker_probes_total),
            ("om_cluster_stale_retries_total", "counter", &self.stale_retries_total),
            ("om_cluster_store_refreshes_total", "counter", &self.store_refreshes_total),
            ("om_cluster_level_cache_hits_total", "counter", &self.level_cache_hits_total),
            ("om_cluster_level_cache_misses_total", "counter", &self.level_cache_misses_total),
            ("om_cluster_ingest_rows_routed_total", "counter", &self.ingest_rows_routed_total),
            ("om_cluster_catchup_rows_total", "counter", &self.catchup_rows_total),
            ("om_cluster_partial_answers_total", "counter", &self.partial_answers_total),
        ];
        for (name, kind, counter) in series {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            out.push_str(name);
            out.push(' ');
            out.push_str(&counter.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_series() {
        let m = ClusterMetrics::default();
        m.shards.store(4, Ordering::Relaxed);
        ClusterMetrics::add(&m.fanouts_total, 3);
        ClusterMetrics::add(&m.retries_total, 2);
        ClusterMetrics::add(&m.hedges_total, 1);
        let text = m.render();
        for name in [
            "om_cluster_shards",
            "om_cluster_partitions",
            "om_cluster_replicas",
            "om_cluster_fanouts_total",
            "om_cluster_shard_errors_total",
            "om_cluster_retries_total",
            "om_cluster_failovers_total",
            "om_cluster_hedges_total",
            "om_cluster_breaker_open",
            "om_cluster_breaker_opens_total",
            "om_cluster_breaker_probes_total",
            "om_cluster_stale_retries_total",
            "om_cluster_store_refreshes_total",
            "om_cluster_level_cache_hits_total",
            "om_cluster_level_cache_misses_total",
            "om_cluster_ingest_rows_routed_total",
            "om_cluster_catchup_rows_total",
            "om_cluster_partial_answers_total",
        ] {
            assert!(text.contains(&format!("# TYPE {name} ")), "{name} untyped");
            assert!(text.contains(&format!("\n{name} ")) || text.starts_with(&format!("{name} ")), "{name} missing");
        }
        assert!(text.contains("om_cluster_shards 4"));
        assert!(text.contains("om_cluster_fanouts_total 3"));
        assert!(text.contains("om_cluster_retries_total 2"));
        assert!(text.contains("om_cluster_hedges_total 1"));
    }
}
