//! Coordinator counters, rendered into `/metrics`.
//!
//! Same conventions as om-server's own registry: monotonic atomics,
//! text exposition with `# TYPE` lines, relaxed ordering (these are
//! operator telemetry, not synchronization).

use std::sync::atomic::{AtomicU64, Ordering};

/// The `om_cluster_*` series.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Number of shards in the topology (a gauge; set once at connect).
    pub shards: AtomicU64,
    /// Shard fan-outs performed (one per distributed operation, not per
    /// shard request).
    pub fanouts_total: AtomicU64,
    /// Shard requests that failed (transport error or non-2xx).
    pub shard_errors_total: AtomicU64,
    /// Store fetches retried because a shard moved generations between
    /// the pin poll and the fetch.
    pub stale_retries_total: AtomicU64,
    /// Merged-store rebuilds (a cache miss on the pinned generation
    /// vector).
    pub store_refreshes_total: AtomicU64,
    /// Drill-level stores served from the coordinator's merge cache.
    pub level_cache_hits_total: AtomicU64,
    /// Drill-level stores that required a shard fan-out and merge.
    pub level_cache_misses_total: AtomicU64,
    /// Rows routed to shards by live ingestion.
    pub ingest_rows_routed_total: AtomicU64,
}

impl ClusterMetrics {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Text exposition, appended to the coordinator's `/metrics` body.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let series: [(&str, &str, &AtomicU64); 8] = [
            ("om_cluster_shards", "gauge", &self.shards),
            ("om_cluster_fanouts_total", "counter", &self.fanouts_total),
            ("om_cluster_shard_errors_total", "counter", &self.shard_errors_total),
            ("om_cluster_stale_retries_total", "counter", &self.stale_retries_total),
            ("om_cluster_store_refreshes_total", "counter", &self.store_refreshes_total),
            ("om_cluster_level_cache_hits_total", "counter", &self.level_cache_hits_total),
            ("om_cluster_level_cache_misses_total", "counter", &self.level_cache_misses_total),
            ("om_cluster_ingest_rows_routed_total", "counter", &self.ingest_rows_routed_total),
        ];
        for (name, kind, counter) in series {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            out.push_str(name);
            out.push(' ');
            out.push_str(&counter.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_series() {
        let m = ClusterMetrics::default();
        m.shards.store(4, Ordering::Relaxed);
        ClusterMetrics::add(&m.fanouts_total, 3);
        let text = m.render();
        for name in [
            "om_cluster_shards",
            "om_cluster_fanouts_total",
            "om_cluster_shard_errors_total",
            "om_cluster_stale_retries_total",
            "om_cluster_store_refreshes_total",
            "om_cluster_level_cache_hits_total",
            "om_cluster_level_cache_misses_total",
            "om_cluster_ingest_rows_routed_total",
        ] {
            assert!(text.contains(&format!("# TYPE {name} ")), "{name} untyped");
            assert!(text.contains(&format!("\n{name} ")) || text.starts_with(&format!("{name} ")), "{name} missing");
        }
        assert!(text.contains("om_cluster_shards 4"));
        assert!(text.contains("om_cluster_fanouts_total 3"));
    }
}
