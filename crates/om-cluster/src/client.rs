//! Minimal blocking HTTP/1.1 client for shard fan-out.
//!
//! One request per connection (`Connection: close`), with read *and*
//! write timeouts set on the socket — a lagging or dead shard turns
//! into a typed error within the per-shard timeout instead of stalling
//! the coordinator. That bounded failure is what the coordinator turns
//! into a `503` partial-failure envelope naming the shard.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One shard's HTTP endpoint.
#[derive(Debug, Clone)]
pub struct ShardClient {
    addr: String,
    timeout: Duration,
}

impl ShardClient {
    #[must_use]
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self {
            addr: addr.into(),
            timeout,
        }
    }

    /// The shard's `host:port`, for error messages naming the shard.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET path` → `(status, body)`.
    ///
    /// # Errors
    /// A transport-level failure (unreachable, timeout, malformed
    /// response), as a human-readable message.
    pub fn get(&self, path: &str) -> Result<(u16, String), String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body → `(status, body)`.
    ///
    /// # Errors
    /// A transport-level failure, as a human-readable message.
    pub fn post(&self, path: &str, body: &str) -> Result<(u16, String), String> {
        self.request("POST", path, Some(body))
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<(u16, String), String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot reach {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("cannot configure socket to {}: {e}", self.addr))?;
        let mut stream = stream;
        let request = match body {
            Some(body) => format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                self.addr,
                body.len()
            ),
            None => format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                self.addr
            ),
        };
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("write to {} failed: {e}", self.addr))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| format!("read from {} failed: {e}", self.addr))?;
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("malformed response from {}", self.addr))?;
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        Ok((status, body))
    }

    /// A request that must succeed with `200`: non-200 statuses become
    /// errors carrying the (trimmed) response body.
    ///
    /// # Errors
    /// Transport failures and non-200 responses.
    pub fn expect_ok(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let (status, body) = self.request(method, path, body)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("HTTP {status}: {}", body.trim()))
        }
    }
}
