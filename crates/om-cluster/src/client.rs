//! Minimal blocking HTTP/1.1 client for shard fan-out.
//!
//! One request per connection (`Connection: close`), with the per-shard
//! timeout bounding the **whole request**: connect, write, and every
//! read share one deadline. A socket-level read timeout alone is not
//! enough — a replica trickling one byte at a time keeps every
//! individual `read` under the timeout while holding the caller
//! indefinitely. Here each I/O step is clamped to the time remaining on
//! the request deadline, so a dead *or merely stalled* shard turns into
//! a typed error within the budget. That bounded failure is what the
//! coordinator turns into retries, failover, or a `503` partial-failure
//! envelope naming the shard.

use std::io::Read;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One shard's HTTP endpoint.
#[derive(Debug, Clone)]
pub struct ShardClient {
    addr: String,
    timeout: Duration,
}

impl ShardClient {
    #[must_use]
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self {
            addr: addr.into(),
            timeout,
        }
    }

    /// The shard's `host:port`, for error messages naming the shard.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The whole-request deadline applied to every call.
    #[must_use]
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// `GET path` → `(status, body)`.
    ///
    /// # Errors
    /// A transport-level failure (unreachable, deadline exceeded,
    /// malformed response), as a human-readable message.
    pub fn get(&self, path: &str) -> Result<(u16, String), String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body → `(status, body)`.
    ///
    /// # Errors
    /// A transport-level failure, as a human-readable message.
    pub fn post(&self, path: &str, body: &str) -> Result<(u16, String), String> {
        self.request("POST", path, Some(body))
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<(u16, String), String> {
        let deadline = Instant::now() + self.timeout;
        let remaining = |stage: &str| -> Result<Duration, String> {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                Err(format!(
                    "request to {} exceeded the {:?} deadline during {stage}",
                    self.addr, self.timeout
                ))
            } else {
                Ok(left)
            }
        };
        let target = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {}: {e}", self.addr))?
            .next()
            .ok_or_else(|| format!("cannot resolve {}: no addresses", self.addr))?;
        let mut stream = TcpStream::connect_timeout(&target, remaining("connect")?)
            .map_err(|e| format!("cannot reach {}: {e}", self.addr))?;
        let request = match body {
            Some(body) => format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                self.addr,
                body.len()
            ),
            None => format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                self.addr
            ),
        };
        stream
            .set_write_timeout(Some(remaining("write")?))
            .map_err(|e| format!("cannot configure socket to {}: {e}", self.addr))?;
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("write to {} failed: {e}", self.addr))?;
        // Read in chunks, re-clamping the socket timeout to the time
        // left before each read: steady trickles cannot outlive the
        // deadline.
        let mut response = Vec::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            stream
                .set_read_timeout(Some(remaining("read")?))
                .map_err(|e| format!("cannot configure socket to {}: {e}", self.addr))?;
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => response.extend_from_slice(buf.get(..n).unwrap_or_default()),
                Err(e) => return Err(format!("read from {} failed: {e}", self.addr)),
            }
        }
        let response = String::from_utf8(response)
            .map_err(|_| format!("non-UTF-8 response from {}", self.addr))?;
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("malformed response from {}", self.addr))?;
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        Ok((status, body))
    }

    /// A request that must succeed with `200`: non-200 statuses become
    /// errors carrying the (trimmed) response body.
    ///
    /// # Errors
    /// Transport failures and non-200 responses.
    pub fn expect_ok(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let (status, body) = self.request(method, path, body)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("HTTP {status}: {}", body.trim()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Regression for the deadline audit: a shard that keeps the
    /// connection alive and trickles bytes slower than the per-read
    /// timeout used to hold the caller indefinitely (every individual
    /// `read` made progress). The whole-request deadline must cut it
    /// off near the configured timeout.
    #[test]
    fn trickling_shard_cannot_outlive_the_request_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            // Drain the request head, then trickle a "response" one
            // byte every 30ms — forever, from the client's viewpoint.
            let mut buf = [0u8; 1024];
            let _ = sock.read(&mut buf);
            let head = b"HTTP/1.1 200 OK\r\nContent-Length: 100000\r\n\r\n";
            let _ = sock.write_all(head);
            for _ in 0..100 {
                if sock.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        });

        let timeout = Duration::from_millis(300);
        let client = ShardClient::new(addr, timeout);
        let started = Instant::now();
        let result = client.get("/internal/generation");
        let elapsed = started.elapsed();

        assert!(result.is_err(), "trickled response must not parse as success");
        assert!(
            elapsed < Duration::from_secs(2),
            "request ran {elapsed:?}, far past the {timeout:?} whole-request deadline"
        );
        server.join().expect("server thread");
    }

    /// A shard that connects but never responds at all is also bounded
    /// by the same deadline (the pure read-timeout case).
    #[test]
    fn silent_shard_is_bounded_by_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 1024];
            let _ = sock.read(&mut buf);
            std::thread::sleep(Duration::from_millis(900));
        });
        let client = ShardClient::new(addr, Duration::from_millis(200));
        let started = Instant::now();
        assert!(client.get("/internal/generation").is_err());
        assert!(started.elapsed() < Duration::from_millis(800));
        server.join().expect("server thread");
    }
}
