//! Class association rule (CAR) mining.
//!
//! Section III-A: rules have the form `X → y` where `X` is a set of
//! conditions (attribute–value pairs over *distinct* attributes) and `y` a
//! class. Class association rule mining "generates all rules in data that
//! satisfy the user-specified minimum support and minimum confidence
//! thresholds" — solving the *completeness problem* of classifiers that
//! only keep enough rules to predict.
//!
//! The miner ([`miner`]) is an Eclat-style level-wise algorithm over
//! tid-lists, which makes *restricted mining* (Section III-B: "when longer
//! rules for some attributes or values are needed, a restricted mining can
//! be carried out") a natural special case ([`restricted`]). Post-mining
//! pruning operators live in [`prune`].

pub mod item;
pub mod miner;
pub mod prune;
pub mod restricted;
pub mod rule;
pub mod select;

pub use item::Condition;
pub use miner::{mine, MinerConfig};
pub use restricted::mine_restricted;
pub use rule::CarRule;
pub use select::{select_by_coverage, CoverageSelection};
