//! Class association rules.

use om_data::{Schema, ValueId};

use crate::item::Condition;

/// A mined class association rule `X → y` with its counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarRule {
    /// Antecedent conditions, sorted by attribute index, attributes
    /// distinct.
    pub conditions: Vec<Condition>,
    /// Consequent class id.
    pub class: ValueId,
    /// Records matching all conditions *and* the class (rule support
    /// count).
    pub support_count: u64,
    /// Records matching all conditions regardless of class (the rule
    /// cube's `cell_total`).
    pub cond_count: u64,
    /// Records in the mined dataset.
    pub n_records: u64,
}

impl CarRule {
    /// Rule support `sup(X, y) / |D|`.
    pub fn support(&self) -> f64 {
        if self.n_records == 0 {
            return 0.0;
        }
        self.support_count as f64 / self.n_records as f64
    }

    /// Rule confidence `sup(X, y) / sup(X)` (Eq. (1) of the paper).
    pub fn confidence(&self) -> f64 {
        if self.cond_count == 0 {
            return 0.0;
        }
        self.support_count as f64 / self.cond_count as f64
    }

    /// Number of conditions.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// Whether the rule has no conditions (a pure class-prior rule).
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Whether `other`'s conditions are a subset of this rule's (same
    /// class), i.e. `other` is more general.
    pub fn is_specialization_of(&self, other: &CarRule) -> bool {
        self.class == other.class
            && other.len() < self.len()
            && other.conditions.iter().all(|c| self.conditions.contains(c))
    }

    /// Render as `X=1, Y=2 -> C=c [sup=…, conf=…]`.
    pub fn display(&self, schema: &Schema) -> String {
        let conds = if self.conditions.is_empty() {
            "(true)".to_owned()
        } else {
            self.conditions
                .iter()
                .map(|c| c.display(schema))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let class_label = schema
            .class()
            .domain()
            .label(self.class)
            .unwrap_or("?");
        format!(
            "{conds} -> {}={} [sup={:.4}, conf={:.4}]",
            schema.class().name(),
            class_label,
            self.support(),
            self.confidence()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Attribute, Domain};

    fn rule(conds: Vec<Condition>, class: ValueId, sup: u64, cond: u64) -> CarRule {
        CarRule {
            conditions: conds,
            class,
            support_count: sup,
            cond_count: cond,
            n_records: 1000,
        }
    }

    #[test]
    fn support_and_confidence() {
        let r = rule(vec![Condition::new(0, 1)], 0, 30, 120);
        assert!((r.support() - 0.03).abs() < 1e-12);
        assert!((r.confidence() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let r = CarRule {
            conditions: vec![],
            class: 0,
            support_count: 0,
            cond_count: 0,
            n_records: 0,
        };
        assert_eq!(r.support(), 0.0);
        assert_eq!(r.confidence(), 0.0);
        assert!(r.is_empty());
    }

    #[test]
    fn specialization_relation() {
        let general = rule(vec![Condition::new(0, 1)], 0, 10, 20);
        let specific = rule(vec![Condition::new(0, 1), Condition::new(2, 0)], 0, 5, 8);
        let other_class = rule(vec![Condition::new(0, 1), Condition::new(2, 0)], 1, 5, 8);
        assert!(specific.is_specialization_of(&general));
        assert!(!general.is_specialization_of(&specific));
        assert!(!other_class.is_specialization_of(&general));
        assert!(!specific.is_specialization_of(&specific));
    }

    #[test]
    fn display_format() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("Phone", Domain::from_labels(["ph1", "ph2"])),
                Attribute::categorical("Out", Domain::from_labels(["ok", "drop"])),
            ],
            1,
        )
        .unwrap();
        let r = rule(vec![Condition::new(0, 1)], 1, 40, 200);
        let s = r.display(&schema);
        assert!(s.contains("Phone=ph2"), "{s}");
        assert!(s.contains("Out=drop"), "{s}");
        assert!(s.contains("conf=0.2000"), "{s}");
        let empty = rule(vec![], 0, 1, 1);
        assert!(empty.display(&schema).starts_with("(true)"));
    }
}
