//! Restricted mining: longer rules under fixed conditions.
//!
//! Section III-B: "we only store two-condition rules. When longer rules for
//! some attributes or values are needed, a restricted mining can be carried
//! out" — fixing some conditions avoids the combinatorial explosion of
//! mining all long rules.

use om_data::{DataError, Dataset, Result};

use crate::item::{distinct_attrs, Condition};
use crate::miner::{mine, MinerConfig};
use crate::rule::CarRule;

/// Mine rules of the form `fixed ∧ X → y`.
///
/// The returned rules include the fixed conditions; support is reported
/// relative to the *full* dataset (so thresholds keep their meaning), and
/// confidence is unchanged by the restriction. `config.min_support` and
/// `config.max_conditions` apply to the complete rule (fixed + mined
/// conditions).
///
/// # Errors
/// Fails if `fixed` is empty, repeats attributes, references the class or
/// an unknown value, or exceeds `config.max_conditions`.
pub fn mine_restricted(
    ds: &Dataset,
    fixed: &[Condition],
    config: &MinerConfig,
) -> Result<Vec<CarRule>> {
    if fixed.is_empty() {
        return Err(DataError::Invalid(
            "restricted mining requires at least one fixed condition; use mine() otherwise"
                .into(),
        ));
    }
    let mut sorted = fixed.to_vec();
    sorted.sort();
    if !distinct_attrs(&sorted) {
        return Err(DataError::Invalid(
            "fixed conditions must use distinct attributes".into(),
        ));
    }
    if sorted.len() > config.max_conditions {
        return Err(DataError::Invalid(format!(
            "{} fixed conditions exceed max_conditions {}",
            sorted.len(),
            config.max_conditions
        )));
    }
    let schema = ds.schema();
    for c in &sorted {
        if c.attr >= schema.n_attributes() || c.attr == schema.class_index() {
            return Err(DataError::Invalid(format!(
                "fixed condition references invalid attribute {}",
                c.attr
            )));
        }
    }

    // Filter to the matching sub-population.
    let mut rows: Vec<usize> = (0..ds.n_rows()).collect();
    for c in &sorted {
        let col = ds.categorical(c.attr)?;
        let card = schema.attribute(c.attr).cardinality() as u32;
        if c.value >= card {
            return Err(DataError::UnknownValue {
                attribute: schema.attribute(c.attr).name().to_owned(),
                value: format!("id {}", c.value),
            });
        }
        rows.retain(|&r| col[r] == c.value);
    }
    let sub = ds.take_rows(&rows)?;
    let n_full = ds.n_rows() as u64;

    // Mine extensions over the other attributes, with support re-based to
    // the full dataset: a count threshold of min_support * |D| equals a
    // sub-population threshold of the same absolute count.
    let fixed_attrs: Vec<usize> = sorted.iter().map(|c| c.attr).collect();
    let attrs: Vec<usize> = match &config.attrs {
        Some(list) => list
            .iter()
            .copied()
            .filter(|a| !fixed_attrs.contains(a))
            .collect(),
        None => schema
            .non_class_indices()
            .into_iter()
            .filter(|a| {
                !fixed_attrs.contains(a) && schema.attribute(*a).is_categorical()
            })
            .collect(),
    };
    let sub_support = if sub.n_rows() == 0 {
        1.0 // nothing can match; produce only the base rules below
    } else {
        (config.min_support * n_full as f64) / sub.n_rows() as f64
    };
    let sub_config = MinerConfig {
        min_support: sub_support.min(1.0),
        min_confidence: config.min_confidence,
        max_conditions: config.max_conditions - sorted.len(),
        attrs: Some(attrs),
    };

    let mut out: Vec<CarRule> = Vec::new();

    // The base rules `fixed → y` themselves.
    let min_count = (config.min_support * n_full as f64).ceil().max(0.0) as u64;
    let cond_count = sub.n_rows() as u64;
    if cond_count > 0 {
        for (c, &count) in sub.class_counts().iter().enumerate() {
            if count == 0 || count < min_count {
                continue;
            }
            let conf = count as f64 / cond_count as f64;
            if conf >= config.min_confidence {
                out.push(CarRule {
                    conditions: sorted.clone(),
                    class: c as u32,
                    support_count: count,
                    cond_count,
                    n_records: n_full,
                });
            }
        }
    }

    if sub_config.max_conditions >= 1 && sub.n_rows() > 0 {
        for mut rule in mine(&sub, &sub_config)? {
            rule.conditions.extend_from_slice(&sorted);
            rule.conditions.sort();
            rule.n_records = n_full;
            out.push(rule);
        }
    }
    out.sort_by(|a, b| {
        b.confidence()
            .partial_cmp(&a.confidence())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.conditions.cmp(&b.conditions))
            .then(a.class.cmp(&b.class))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Cell, DatasetBuilder};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .categorical("D")
            .class("C");
        for i in 0..40u32 {
            let a = if i % 2 == 0 { "a0" } else { "a1" };
            let bb = if i % 4 < 2 { "b0" } else { "b1" };
            let d = if i % 5 == 0 { "d0" } else { "d1" };
            let c = if i % 2 == 0 && i % 4 < 2 { "y" } else { "n" };
            b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(d), Cell::Str(c)])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn restricted_rules_include_fixed_conditions() {
        let ds = toy();
        let fixed = [Condition::new(0, 0)];
        let rules = mine_restricted(
            &ds,
            &fixed,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 3,
                attrs: None,
            },
        )
        .unwrap();
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(
                r.conditions.contains(&Condition::new(0, 0)),
                "rule missing fixed condition: {r:?}"
            );
            assert_eq!(r.n_records, 40);
        }
        // Must contain 3-condition rules.
        assert!(rules.iter().any(|r| r.len() == 3), "{rules:?}");
    }

    #[test]
    fn counts_match_unrestricted_mining() {
        // Restricted mining at the same total length must produce the same
        // counts as full mining filtered to rules containing the condition.
        let ds = toy();
        let fixed = [Condition::new(0, 0)];
        let restricted = mine_restricted(
            &ds,
            &fixed,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        let full = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        for r in &restricted {
            let matching = full.iter().find(|f| {
                f.conditions == r.conditions && f.class == r.class
            });
            let f = matching.unwrap_or_else(|| panic!("rule not found in full mining: {r:?}"));
            assert_eq!(f.support_count, r.support_count);
            assert_eq!(f.cond_count, r.cond_count);
        }
    }

    #[test]
    fn base_rule_emitted() {
        let ds = toy();
        let rules = mine_restricted(
            &ds,
            &[Condition::new(1, 0)],
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 1,
                attrs: None,
            },
        )
        .unwrap();
        // max_conditions == #fixed ⇒ only the base rules B=b0 → y / n.
        assert!(rules.iter().all(|r| r.len() == 1));
        let total: u64 = rules.iter().map(|r| r.support_count).sum();
        assert_eq!(total, 20, "b0 covers half the records");
    }

    #[test]
    fn validation() {
        let ds = toy();
        let cfg = MinerConfig::default();
        assert!(mine_restricted(&ds, &[], &cfg).is_err());
        assert!(mine_restricted(
            &ds,
            &[Condition::new(0, 0), Condition::new(0, 1)],
            &cfg
        )
        .is_err());
        assert!(mine_restricted(&ds, &[Condition::new(3, 0)], &cfg).is_err());
        assert!(mine_restricted(&ds, &[Condition::new(0, 99)], &cfg).is_err());
        assert!(mine_restricted(
            &ds,
            &[Condition::new(0, 0), Condition::new(1, 0)],
            &MinerConfig {
                max_conditions: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn empty_sub_population() {
        // Fixing a value that never co-occurs: no rules, no panic.
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        b.push_row(&[Cell::Str("a0"), Cell::Str("y")]).unwrap();
        b.push_row(&[Cell::Str("a1"), Cell::Str("n")]).unwrap();
        let ds = b.finish().unwrap();
        // a0 exists; mine restricted to a0 with high support threshold.
        let rules = mine_restricted(
            &ds,
            &[Condition::new(0, 0)],
            &MinerConfig {
                min_support: 0.9,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        assert!(rules.is_empty());
    }
}
