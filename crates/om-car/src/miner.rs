//! The Eclat-style level-wise CAR miner.
//!
//! Level 1 builds a tid-list (sorted row-id list) per frequent condition;
//! level `k + 1` intersects tid-lists of prefix-sharing condition sets.
//! A condition set survives a level when *some* class reaches the minimum
//! support count (an admissible prune: a rule's support can only shrink
//! under specialization). Rules are emitted for every (condition set,
//! class) passing both thresholds.

use om_data::{DataError, Dataset, Result, ValueId};

use crate::item::{distinct_attrs, Condition};
use crate::rule::CarRule;

/// Mining thresholds and limits.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum rule support (fraction of all records), `[0, 1]`.
    pub min_support: f64,
    /// Minimum rule confidence, `[0, 1]`.
    pub min_confidence: f64,
    /// Maximum number of conditions per rule. The paper stores cubes for
    /// two-condition rules and mines longer ones on request; the default
    /// here is 2 for the same reason ("practical applications seldom need
    /// long rules").
    pub max_conditions: usize,
    /// Attribute subset to mine over; `None` = all categorical non-class.
    pub attrs: Option<Vec<usize>>,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 0.01,
            min_confidence: 0.3,
            max_conditions: 2,
            attrs: None,
        }
    }
}

/// A condition set with its tid-list, during mining.
struct Node {
    conditions: Vec<Condition>,
    tids: Vec<u32>,
}

/// Per-class counts of a tid-list.
fn class_counts(tids: &[u32], classes: &[ValueId], n_classes: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_classes];
    for &t in tids {
        counts[classes[t as usize] as usize] += 1;
    }
    counts
}

/// Sorted-list intersection.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Mine all class association rules of `ds` satisfying `config`.
///
/// ```
/// use om_car::{mine, MinerConfig};
/// use om_data::{Cell, DatasetBuilder};
///
/// let mut b = DatasetBuilder::new().categorical("Time").class("Outcome");
/// for (t, o) in [("am", "drop"), ("am", "drop"), ("am", "ok"), ("pm", "ok")] {
///     b.push_row(&[Cell::Str(t), Cell::Str(o)]).unwrap();
/// }
/// let ds = b.finish().unwrap();
///
/// let rules = mine(&ds, &MinerConfig {
///     min_support: 0.25,
///     min_confidence: 0.6,
///     max_conditions: 1,
///     attrs: None,
/// }).unwrap();
/// // "Time=am -> drop" holds with support 2/4 and confidence 2/3.
/// assert!(rules.iter().any(|r| {
///     r.display(ds.schema()).starts_with("Time=am -> Outcome=drop")
/// }));
/// ```
///
/// # Errors
/// Fails on invalid thresholds, non-categorical attributes in the
/// selection, or the class attribute listed as an analysis attribute.
pub fn mine(ds: &Dataset, config: &MinerConfig) -> Result<Vec<CarRule>> {
    validate(ds, config)?;
    let schema = ds.schema();
    let n_records = ds.n_rows() as u64;
    let n_classes = schema.n_classes();
    let classes = ds.class_values();
    let min_count = (config.min_support * n_records as f64).ceil().max(0.0) as u64;

    let attrs: Vec<usize> = match &config.attrs {
        Some(list) => list.clone(),
        None => schema
            .non_class_indices()
            .into_iter()
            .filter(|&a| schema.attribute(a).is_categorical())
            .collect(),
    };

    // Level 1: tid-lists per (attr, value).
    let mut level: Vec<Node> = Vec::new();
    for &a in &attrs {
        let col = ds.column(a).as_categorical().expect("validated categorical");
        let card = schema.attribute(a).cardinality();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); card];
        for (r, &v) in col.iter().enumerate() {
            lists[v as usize].push(r as u32);
        }
        for (v, tids) in lists.into_iter().enumerate() {
            if tids.is_empty() {
                continue;
            }
            level.push(Node {
                conditions: vec![Condition::new(a, v as ValueId)],
                tids,
            });
        }
    }

    let mut rules: Vec<CarRule> = Vec::new();
    let mut depth = 1;
    loop {
        // Emit rules and keep extendable nodes.
        let mut survivors: Vec<Node> = Vec::new();
        for node in level {
            let counts = class_counts(&node.tids, classes, n_classes);
            let cond_count = node.tids.len() as u64;
            let mut any_frequent = false;
            for (c, &count) in counts.iter().enumerate() {
                if count >= min_count && count > 0 {
                    any_frequent = true;
                    let conf = count as f64 / cond_count as f64;
                    if conf >= config.min_confidence {
                        rules.push(CarRule {
                            conditions: node.conditions.clone(),
                            class: c as ValueId,
                            support_count: count,
                            cond_count,
                            n_records,
                        });
                    }
                }
            }
            if any_frequent && depth < config.max_conditions {
                survivors.push(node);
            }
        }
        if depth >= config.max_conditions || survivors.len() < 2 {
            break;
        }

        // Extend: prefix join — nodes sharing all but the last condition,
        // with strictly increasing attribute indices.
        let mut next: Vec<Node> = Vec::new();
        for i in 0..survivors.len() {
            for j in (i + 1)..survivors.len() {
                let (a, b) = (&survivors[i], &survivors[j]);
                if a.conditions[..depth - 1] != b.conditions[..depth - 1] {
                    continue;
                }
                let (first, second) =
                    if a.conditions[depth - 1] <= b.conditions[depth - 1] {
                        (a, b)
                    } else {
                        (b, a)
                    };
                let mut conditions = first.conditions.clone();
                conditions.push(second.conditions[depth - 1]);
                if !distinct_attrs(&conditions) {
                    continue;
                }
                let tids = intersect(&first.tids, &second.tids);
                if tids.is_empty() {
                    continue;
                }
                next.push(Node { conditions, tids });
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
        depth += 1;
    }

    rules.sort_by(|a, b| {
        b.confidence()
            .partial_cmp(&a.confidence())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.support_count.cmp(&a.support_count))
            .then(a.conditions.cmp(&b.conditions))
            .then(a.class.cmp(&b.class))
    });
    Ok(rules)
}

fn validate(ds: &Dataset, config: &MinerConfig) -> Result<()> {
    if !(0.0..=1.0).contains(&config.min_support) {
        return Err(DataError::Invalid(format!(
            "min_support must be in [0,1], got {}",
            config.min_support
        )));
    }
    if !(0.0..=1.0).contains(&config.min_confidence) {
        return Err(DataError::Invalid(format!(
            "min_confidence must be in [0,1], got {}",
            config.min_confidence
        )));
    }
    if config.max_conditions == 0 {
        return Err(DataError::Invalid("max_conditions must be >= 1".into()));
    }
    if let Some(attrs) = &config.attrs {
        for &a in attrs {
            if a >= ds.schema().n_attributes() {
                return Err(DataError::Invalid(format!("attribute index {a} out of range")));
            }
            if a == ds.schema().class_index() {
                return Err(DataError::Invalid(
                    "class attribute cannot be a rule condition".into(),
                ));
            }
            if !ds.schema().attribute(a).is_categorical() {
                return Err(DataError::Invalid(format!(
                    "attribute {:?} is continuous; discretize before mining",
                    ds.schema().attribute(a).name()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Cell, DatasetBuilder};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .class("C");
        // 8 records, easy to tally by hand.
        for (a, bb, c) in [
            ("a0", "b0", "y"),
            ("a0", "b0", "y"),
            ("a0", "b1", "n"),
            ("a0", "b1", "y"),
            ("a1", "b0", "n"),
            ("a1", "b0", "n"),
            ("a1", "b1", "n"),
            ("a1", "b1", "y"),
        ] {
            b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(c)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn mines_expected_one_condition_rule() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.25,
                min_confidence: 0.7,
                max_conditions: 1,
                attrs: None,
            },
        )
        .unwrap();
        // A=a0 -> y has support 3/8, confidence 3/4. A=a1 -> n same.
        assert!(rules.iter().any(|r| {
            r.conditions == vec![Condition::new(0, 0)]
                && r.class == 0
                && r.support_count == 3
                && r.cond_count == 4
        }), "{rules:?}");
        assert!(rules
            .iter()
            .all(|r| r.confidence() >= 0.7 && r.support() >= 0.25));
    }

    #[test]
    fn two_condition_counts_are_exact() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        // (a0, b0 -> y): 2 of 2.
        let r = rules
            .iter()
            .find(|r| {
                r.conditions == vec![Condition::new(0, 0), Condition::new(1, 0)] && r.class == 0
            })
            .expect("rule exists");
        assert_eq!(r.support_count, 2);
        assert_eq!(r.cond_count, 2);
        assert_eq!(r.confidence(), 1.0);
    }

    #[test]
    fn all_zero_threshold_rules_match_cube() {
        // Every 2-condition rule's counts must agree with the rule cube.
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        let cube = om_cube::build_cube(&ds, &[0, 1]).unwrap();
        for r in rules.iter().filter(|r| r.len() == 2) {
            let coords = [r.conditions[0].value, r.conditions[1].value];
            assert_eq!(
                cube.count(&coords, r.class).unwrap(),
                r.support_count,
                "{r:?}"
            );
            assert_eq!(cube.cell_total(&coords).unwrap(), r.cond_count);
        }
    }

    #[test]
    fn support_threshold_prunes() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.5,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        // Only rules with support_count >= 4 out of 8 survive: none exist
        // (the best class count for any single value is 3).
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn max_conditions_respected() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 1,
                attrs: None,
            },
        )
        .unwrap();
        assert!(rules.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn attr_subset_restricts_conditions() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: Some(vec![1]),
            },
        )
        .unwrap();
        assert!(rules.iter().all(|r| r.conditions.iter().all(|c| c.attr == 1)));
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let ds = toy();
        let rules = mine(&ds, &MinerConfig::default()).unwrap();
        for w in rules.windows(2) {
            assert!(w[0].confidence() >= w[1].confidence() - 1e-12);
        }
    }

    #[test]
    fn validation_errors() {
        let ds = toy();
        assert!(mine(&ds, &MinerConfig { min_support: 1.5, ..Default::default() }).is_err());
        assert!(mine(&ds, &MinerConfig { min_confidence: -0.1, ..Default::default() }).is_err());
        assert!(mine(&ds, &MinerConfig { max_conditions: 0, ..Default::default() }).is_err());
        assert!(mine(&ds, &MinerConfig { attrs: Some(vec![2]), ..Default::default() }).is_err());
        assert!(mine(&ds, &MinerConfig { attrs: Some(vec![99]), ..Default::default() }).is_err());
    }

    #[test]
    fn empty_dataset_yields_no_rules() {
        let ds = DatasetBuilder::new().categorical("A").class("C").finish().unwrap();
        let rules = mine(&ds, &MinerConfig::default()).unwrap();
        assert!(rules.is_empty());
    }
}
