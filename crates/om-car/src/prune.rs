//! Rule post-processing: redundancy and significance pruning.
//!
//! The related-work section surveys rule post-processing operators
//! (\[33\] in the paper) for filtering unwanted rules; these two are the
//! standard ones used before presenting rule lists to users.

use om_stats::chi2_independence;

use crate::rule::CarRule;

/// Remove rules that are *redundant*: a rule is dropped when a strictly
/// more general rule with the same class has confidence at least as high.
///
/// The input order is preserved among survivors.
pub fn prune_redundant(rules: &[CarRule]) -> Vec<CarRule> {
    rules
        .iter()
        .filter(|r| {
            !rules.iter().any(|general| {
                r.is_specialization_of(general)
                    && general.confidence() >= r.confidence() - 1e-12
            })
        })
        .cloned()
        .collect()
}

/// Keep only rules whose antecedent/class association is statistically
/// significant at level `alpha` by a chi-square test on the 2×2 table
/// (matches-conditions × is-class).
///
/// Needs each rule's complement counts, derived from `n_records` and the
/// per-class total `class_total` (records of the rule's class in the whole
/// dataset).
pub fn prune_insignificant(
    rules: &[CarRule],
    class_totals: &[u64],
    alpha: f64,
) -> Vec<CarRule> {
    rules
        .iter()
        .filter(|r| {
            let class_total = class_totals[r.class as usize];
            let a = r.support_count; // cond ∧ class
            let b = r.cond_count - r.support_count; // cond ∧ ¬class
            let c = class_total.saturating_sub(r.support_count); // ¬cond ∧ class
            let d = r
                .n_records
                .saturating_sub(r.cond_count)
                .saturating_sub(c); // ¬cond ∧ ¬class
            let table = vec![vec![a, b], vec![c, d]];
            chi2_independence(&table).p_value < alpha
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Condition;

    fn rule(conds: Vec<Condition>, class: u32, sup: u64, cond: u64, n: u64) -> CarRule {
        CarRule {
            conditions: conds,
            class,
            support_count: sup,
            cond_count: cond,
            n_records: n,
        }
    }

    #[test]
    fn redundant_specialization_dropped() {
        let general = rule(vec![Condition::new(0, 0)], 0, 80, 100, 1000);
        // Same confidence as the general rule: redundant.
        let redundant = rule(
            vec![Condition::new(0, 0), Condition::new(1, 1)],
            0,
            40,
            50,
            1000,
        );
        // Higher confidence than the general rule: kept.
        let informative = rule(
            vec![Condition::new(0, 0), Condition::new(2, 0)],
            0,
            30,
            30,
            1000,
        );
        let pruned = prune_redundant(&[general.clone(), redundant, informative.clone()]);
        assert_eq!(pruned, vec![general, informative]);
    }

    #[test]
    fn different_class_not_redundant() {
        let general = rule(vec![Condition::new(0, 0)], 0, 80, 100, 1000);
        let specific_other = rule(
            vec![Condition::new(0, 0), Condition::new(1, 1)],
            1,
            10,
            50,
            1000,
        );
        let pruned = prune_redundant(&[general, specific_other]);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn significance_filter() {
        // Strong association: 90/100 vs 100/900 base rate.
        let strong = rule(vec![Condition::new(0, 0)], 0, 90, 100, 1000);
        // No association: rule confidence equals the base rate.
        let weak = rule(vec![Condition::new(1, 0)], 0, 19, 100, 1000);
        let class_totals = vec![190u64, 810];
        let kept = prune_insignificant(&[strong.clone(), weak], &class_totals, 0.01);
        assert_eq!(kept, vec![strong]);
    }

    #[test]
    fn empty_input_ok() {
        assert!(prune_redundant(&[]).is_empty());
        assert!(prune_insignificant(&[], &[0, 0], 0.05).is_empty());
    }
}
