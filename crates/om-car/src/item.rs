//! Conditions: the attribute–value pairs forming rule antecedents.

use om_data::{Schema, ValueId};

/// One condition `A_i = v` ("a condition is an attribute value pair",
/// Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Condition {
    /// Schema index of the attribute.
    pub attr: usize,
    /// Value id within the attribute's domain.
    pub value: ValueId,
}

impl Condition {
    pub fn new(attr: usize, value: ValueId) -> Self {
        Self { attr, value }
    }

    /// Render as `Name=label` using the schema.
    pub fn display(&self, schema: &Schema) -> String {
        let attr = schema.attribute(self.attr);
        let label = attr.domain().label(self.value).unwrap_or("?");
        format!("{}={}", attr.name(), label)
    }
}

/// Whether a sorted condition list uses distinct attributes ("every
/// condition uses a distinctive attribute").
pub fn distinct_attrs(conditions: &[Condition]) -> bool {
    conditions.windows(2).all(|w| w[0].attr < w[1].attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Attribute, Domain};

    #[test]
    fn ordering_is_by_attr_then_value() {
        let a = Condition::new(0, 5);
        let b = Condition::new(1, 0);
        let c = Condition::new(1, 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn distinct_attr_check() {
        assert!(distinct_attrs(&[Condition::new(0, 1), Condition::new(2, 0)]));
        assert!(!distinct_attrs(&[Condition::new(1, 0), Condition::new(1, 1)]));
        assert!(distinct_attrs(&[]));
    }

    #[test]
    fn display_uses_labels() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("Phone", Domain::from_labels(["ph1", "ph2"])),
                Attribute::categorical("C", Domain::from_labels(["ok"])),
            ],
            1,
        )
        .unwrap();
        assert_eq!(Condition::new(0, 1).display(&schema), "Phone=ph2");
    }
}
