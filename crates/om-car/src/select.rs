//! Database-coverage rule selection (the CBA selection step).
//!
//! Section III-A contrasts CAR mining with classifiers that keep "only
//! enough rules for classification". That selection step — sort rules by
//! precedence, greedily keep each rule that correctly covers at least one
//! still-uncovered record — is nevertheless useful *after* complete
//! mining, as a compact summary of the rule space. This module implements
//! it over our rules and datasets.

use om_data::{Dataset, Result, ValueId};

use crate::rule::CarRule;

/// Outcome of a coverage selection.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSelection {
    /// The selected rules, in precedence order.
    pub rules: Vec<CarRule>,
    /// Records (by index) left uncovered by every selected rule.
    pub uncovered: Vec<usize>,
    /// The majority class among the uncovered records (the CBA default
    /// class), if any records remain.
    pub default_class: Option<ValueId>,
}

/// CBA precedence: higher confidence, then higher support, then fewer
/// conditions (earlier-generated).
fn precedence(a: &CarRule, b: &CarRule) -> std::cmp::Ordering {
    b.confidence()
        .partial_cmp(&a.confidence())
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(b.support_count.cmp(&a.support_count))
        .then(a.len().cmp(&b.len()))
        .then(a.conditions.cmp(&b.conditions))
        .then(a.class.cmp(&b.class))
}

/// Whether `rule`'s conditions hold for record `row`.
fn covers(rule: &CarRule, ds: &Dataset, row: usize) -> Result<bool> {
    for c in &rule.conditions {
        if ds.categorical(c.attr)?[row] != c.value {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Select rules by database coverage: walk rules in precedence order,
/// keeping each rule that *correctly* classifies at least one uncovered
/// record; covered records are removed.
///
/// # Errors
/// Fails if a rule references a continuous attribute of `ds`.
pub fn select_by_coverage(rules: &[CarRule], ds: &Dataset) -> Result<CoverageSelection> {
    let mut sorted: Vec<&CarRule> = rules.iter().collect();
    sorted.sort_by(|a, b| precedence(a, b));

    let classes = ds.class_values();
    let mut covered = vec![false; ds.n_rows()];
    let mut n_covered = 0usize;
    let mut selected: Vec<CarRule> = Vec::new();

    for rule in sorted {
        if n_covered == ds.n_rows() {
            break;
        }
        let mut hit = false;
        let mut newly: Vec<usize> = Vec::new();
        for row in 0..ds.n_rows() {
            if covered[row] {
                continue;
            }
            if covers(rule, ds, row)? {
                newly.push(row);
                if classes[row] == rule.class {
                    hit = true;
                }
            }
        }
        if hit {
            for row in newly {
                covered[row] = true;
                n_covered += 1;
            }
            selected.push(rule.clone());
        }
    }

    let uncovered: Vec<usize> = (0..ds.n_rows()).filter(|&r| !covered[r]).collect();
    let default_class = if uncovered.is_empty() {
        None
    } else {
        let mut counts = vec![0u64; ds.schema().n_classes()];
        for &r in &uncovered {
            counts[classes[r] as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as ValueId)
    };
    Ok(CoverageSelection {
        rules: selected,
        uncovered,
        default_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{mine, MinerConfig};
    use om_data::{Cell, DatasetBuilder};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .class("C");
        // A=a0 almost determines y; B=b1 almost determines n.
        for i in 0..40u32 {
            let a = if i % 2 == 0 { "a0" } else { "a1" };
            let bb = if i % 4 < 2 { "b0" } else { "b1" };
            let c = if i % 2 == 0 { "y" } else { "n" };
            b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(c)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn selection_is_small_and_covers() {
        let ds = toy();
        let rules = mine(
            &ds,
            &MinerConfig {
                min_support: 0.0,
                min_confidence: 0.0,
                max_conditions: 2,
                attrs: None,
            },
        )
        .unwrap();
        let selection = select_by_coverage(&rules, &ds).unwrap();
        assert!(
            selection.rules.len() <= 4,
            "selection should be compact, got {}",
            selection.rules.len()
        );
        assert!(selection.rules.len() < rules.len());
        assert!(selection.uncovered.is_empty(), "perfect rules cover all");
        assert!(selection.default_class.is_none());
        // Precedence order preserved.
        for w in selection.rules.windows(2) {
            assert!(w[0].confidence() >= w[1].confidence() - 1e-12);
        }
    }

    #[test]
    fn selected_rules_actually_cover_their_records() {
        let ds = toy();
        let rules = mine(&ds, &MinerConfig::default()).unwrap();
        let selection = select_by_coverage(&rules, &ds).unwrap();
        // Re-play coverage: each record is either covered by some selected
        // rule or in the uncovered list.
        for row in 0..ds.n_rows() {
            let covered = selection
                .rules
                .iter()
                .any(|r| covers(r, &ds, row).unwrap());
            let listed = selection.uncovered.contains(&row);
            assert!(covered || listed, "record {row} lost");
        }
    }

    #[test]
    fn default_class_is_majority_of_uncovered() {
        let ds = toy();
        // Only one very specific rule: most records stay uncovered.
        let rules = vec![CarRule {
            conditions: vec![crate::item::Condition::new(0, 0), crate::item::Condition::new(1, 0)],
            class: 0,
            support_count: 10,
            cond_count: 10,
            n_records: 40,
        }];
        let selection = select_by_coverage(&rules, &ds).unwrap();
        assert_eq!(selection.rules.len(), 1);
        assert!(!selection.uncovered.is_empty());
        assert!(selection.default_class.is_some());
    }

    #[test]
    fn empty_rule_list() {
        let ds = toy();
        let selection = select_by_coverage(&[], &ds).unwrap();
        assert!(selection.rules.is_empty());
        assert_eq!(selection.uncovered.len(), ds.n_rows());
    }

    #[test]
    fn useless_rules_skipped() {
        let ds = toy();
        // A rule that never classifies correctly (wrong class for a0).
        let wrong = CarRule {
            conditions: vec![crate::item::Condition::new(0, 0)],
            class: 1,
            support_count: 0,
            cond_count: 20,
            n_records: 40,
        };
        let selection = select_by_coverage(&[wrong], &ds).unwrap();
        assert!(selection.rules.is_empty(), "incorrect rule must not be kept");
    }
}
