//! Property tests: the miner must agree with rule cubes (which agree with
//! direct counting), and thresholds must behave monotonically.

use om_car::{mine, mine_restricted, Condition, MinerConfig};
use om_cube::build_cube;
use om_data::{Cell, Dataset, DatasetBuilder};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u8..3, 0u8..3, 0u8..2), 1..80).prop_map(|rows| {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .class("C");
        let al = ["a0", "a1", "a2"];
        let bl = ["b0", "b1", "b2"];
        let cl = ["c0", "c1"];
        for (a, bb, c) in rows {
            b.push_row(&[
                Cell::Str(al[a as usize]),
                Cell::Str(bl[bb as usize]),
                Cell::Str(cl[c as usize]),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

proptest! {
    #[test]
    fn zero_threshold_two_condition_rules_match_cube(ds in arb_dataset()) {
        let rules = mine(&ds, &MinerConfig {
            min_support: 0.0,
            min_confidence: 0.0,
            max_conditions: 2,
            attrs: None,
        }).unwrap();
        let cube = build_cube(&ds, &[0, 1]).unwrap();
        for r in rules.iter().filter(|r| r.len() == 2) {
            let coords = [r.conditions[0].value, r.conditions[1].value];
            prop_assert_eq!(cube.count(&coords, r.class).unwrap(), r.support_count);
            prop_assert_eq!(cube.cell_total(&coords).unwrap(), r.cond_count);
        }
        // Every non-empty cube cell must appear as a mined rule.
        for (coords, class, count) in cube.iter_cells() {
            if count == 0 { continue; }
            prop_assert!(
                rules.iter().any(|r| r.len() == 2
                    && r.conditions[0].value == coords[0]
                    && r.conditions[1].value == coords[1]
                    && r.class == class
                    && r.support_count == count),
                "cube cell {:?}/{} count {} missing from rules", coords, class, count
            );
        }
    }

    #[test]
    fn thresholds_are_monotone(ds in arb_dataset(), sup in 0.0f64..0.5, conf in 0.0f64..1.0) {
        let loose = mine(&ds, &MinerConfig {
            min_support: 0.0, min_confidence: 0.0, max_conditions: 2, attrs: None,
        }).unwrap();
        let tight = mine(&ds, &MinerConfig {
            min_support: sup, min_confidence: conf, max_conditions: 2, attrs: None,
        }).unwrap();
        prop_assert!(tight.len() <= loose.len());
        // Every tight rule exists among the loose ones with identical counts.
        for r in &tight {
            prop_assert!(loose.iter().any(|l|
                l.conditions == r.conditions && l.class == r.class
                && l.support_count == r.support_count));
            prop_assert!(r.support() >= sup - 1e-12);
            prop_assert!(r.confidence() >= conf - 1e-12);
        }
    }

    #[test]
    fn restricted_is_a_filter_of_full_mining(ds in arb_dataset(), v in 0u32..3) {
        if v as usize >= ds.schema().attribute(0).cardinality() { return Ok(()); }
        let cfg = MinerConfig {
            min_support: 0.0, min_confidence: 0.0, max_conditions: 2, attrs: None,
        };
        let full = mine(&ds, &cfg).unwrap();
        let fixed = [Condition::new(0, v)];
        let restricted = mine_restricted(&ds, &fixed, &cfg).unwrap();
        for r in &restricted {
            let found = full.iter().find(|f| f.conditions == r.conditions && f.class == r.class);
            prop_assert!(found.is_some(), "restricted rule not in full set: {:?}", r);
            let f = found.unwrap();
            prop_assert_eq!(f.support_count, r.support_count);
            prop_assert_eq!(f.cond_count, r.cond_count);
        }
        // Conversely every full rule containing the fixed condition appears.
        let expected = full.iter().filter(|f|
            f.conditions.contains(&fixed[0])).count();
        prop_assert_eq!(restricted.len(), expected);
    }

    #[test]
    fn rule_confidence_in_unit_interval(ds in arb_dataset()) {
        for r in mine(&ds, &MinerConfig {
            min_support: 0.0, min_confidence: 0.0, max_conditions: 2, attrs: None,
        }).unwrap() {
            prop_assert!((0.0..=1.0).contains(&r.confidence()));
            prop_assert!((0.0..=1.0).contains(&r.support()));
            prop_assert!(r.support_count <= r.cond_count);
        }
    }
}
