//! Property-based tests for discretization.

use om_discretize::cuts::CutPoints;
use om_discretize::equal_freq::equal_freq_cuts;
use om_discretize::equal_width::equal_width_cuts;
use om_discretize::mdl::mdl_cuts;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cuts_always_sorted_and_deduped(raw in proptest::collection::vec(-1e6f64..1e6, 0..30)) {
        let c = CutPoints::new(raw);
        let cuts = c.cuts();
        for w in cuts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(c.n_bins(), cuts.len() + 1);
        prop_assert_eq!(c.labels(2).len(), c.n_bins());
    }

    #[test]
    fn bin_of_within_range(
        raw in proptest::collection::vec(-1e3f64..1e3, 1..20),
        xs in proptest::collection::vec(-1e4f64..1e4, 1..50)
    ) {
        let c = CutPoints::new(raw);
        for x in xs {
            prop_assert!(c.bin_of(x) < c.n_bins());
        }
    }

    #[test]
    fn equal_width_bins_bounded_by_k(
        vals in proptest::collection::vec(-1e3f64..1e3, 0..200),
        k in 1usize..10
    ) {
        let c = equal_width_cuts(&vals, k);
        prop_assert!(c.n_bins() <= k.max(1));
    }

    #[test]
    fn equal_freq_bins_bounded_by_k(
        vals in proptest::collection::vec(-1e3f64..1e3, 0..200),
        k in 1usize..10
    ) {
        let c = equal_freq_cuts(&vals, k);
        prop_assert!(c.n_bins() <= k.max(1));
    }

    #[test]
    fn equal_freq_never_empties_interior_bins(
        vals in proptest::collection::vec(-1e3f64..1e3, 10..300)
    ) {
        // Every bin produced by equal-frequency must contain at least one value.
        let c = equal_freq_cuts(&vals, 4);
        let mut counts = vec![0usize; c.n_bins()];
        for &v in &vals {
            counts[c.bin_of(v)] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            prop_assert!(cnt > 0, "bin {i} empty; counts {counts:?} cuts {:?}", c.cuts());
        }
    }

    #[test]
    fn mdl_never_splits_pure_columns(
        vals in proptest::collection::vec(-1e3f64..1e3, 0..100)
    ) {
        let classes = vec![0u32; vals.len()];
        let c = mdl_cuts(&vals, &classes, 2, 8);
        prop_assert_eq!(c.n_bins(), 1);
    }

    #[test]
    fn mdl_cuts_lie_strictly_inside_value_range(
        pairs in proptest::collection::vec((-1e3f64..1e3, 0u32..3), 4..200)
    ) {
        let vals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let classes: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let c = mdl_cuts(&vals, &classes, 3, 8);
        if let (Some(min), Some(max)) = (
            vals.iter().copied().reduce(f64::min),
            vals.iter().copied().reduce(f64::max),
        ) {
            for &cut in c.cuts() {
                prop_assert!(cut > min && cut < max);
            }
        }
    }
}
