//! ChiMerge discretization (Kerber, 1992): bottom-up supervised merging.
//!
//! Start from one interval per distinct value; repeatedly merge the
//! adjacent pair whose class distributions are *least* distinguishable by
//! chi-square, until every adjacent pair exceeds the significance
//! threshold or the interval budget is reached. Complements the top-down
//! Fayyad–Irani method in [`crate::mdl`]; both are classic choices for
//! the paper's discretizer component.

use om_stats::{chi2_p_value, entropy};

use crate::cuts::CutPoints;

/// ChiMerge cut points for `values` with aligned class ids.
///
/// * `alpha` — adjacent intervals whose chi-square p-value is below
///   `alpha` (distributions clearly differ) are never merged;
/// * `max_bins` — hard interval budget (merging continues past `alpha`
///   until the budget holds).
///
/// Non-finite values are ignored; degenerate inputs yield a single bin.
///
/// # Panics
/// Panics on length mismatch or out-of-range class ids.
pub fn chimerge_cuts(
    values: &[f64],
    classes: &[u32],
    n_classes: usize,
    alpha: f64,
    max_bins: usize,
) -> CutPoints {
    assert_eq!(values.len(), classes.len(), "values and classes must align");
    assert!(
        classes.iter().all(|&c| (c as usize) < n_classes),
        "class id out of range"
    );
    assert!(max_bins >= 1, "need at least one bin");

    let mut pairs: Vec<(f64, u32)> = values
        .iter()
        .copied()
        .zip(classes.iter().copied())
        .filter(|(v, _)| v.is_finite())
        .collect();
    if pairs.len() < 2 {
        return CutPoints::none();
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values compare"));

    // Initial intervals: one per distinct value, with class histograms.
    struct Interval {
        lo: f64,
        hi: f64,
        hist: Vec<u64>,
    }
    let mut intervals: Vec<Interval> = Vec::new();
    for &(v, c) in &pairs {
        match intervals.last_mut() {
            Some(last) if last.hi == v => last.hist[c as usize] += 1,
            _ => {
                let mut hist = vec![0u64; n_classes];
                hist[c as usize] += 1;
                intervals.push(Interval { lo: v, hi: v, hist });
            }
        }
    }

    // chi-square statistic of two adjacent histograms.
    let pair_chi2 = |a: &[u64], b: &[u64]| -> f64 {
        om_stats::chi2_independence(&[a.to_vec(), b.to_vec()]).statistic
    };

    while intervals.len() > 1 {
        // Find the least-distinguishable adjacent pair.
        let mut best_idx = 0usize;
        let mut best_stat = f64::INFINITY;
        for i in 0..intervals.len() - 1 {
            let stat = pair_chi2(&intervals[i].hist, &intervals[i + 1].hist);
            if stat < best_stat {
                best_stat = stat;
                best_idx = i;
            }
        }
        let dof = (n_classes.max(2) - 1) as u64;
        let p = chi2_p_value(best_stat, dof);
        let over_budget = intervals.len() > max_bins;
        // Merge while the best pair is not significantly different, or we
        // are still over budget.
        if p < alpha && !over_budget {
            break;
        }
        let right = intervals.remove(best_idx + 1);
        let left = &mut intervals[best_idx];
        left.hi = right.hi;
        for (l, r) in left.hist.iter_mut().zip(&right.hist) {
            *l += r;
        }
    }

    let cuts: Vec<f64> = intervals
        .windows(2)
        .map(|w| (w[0].hi + w[1].lo) / 2.0)
        .collect();
    CutPoints::new(cuts)
}

/// Convenience: whether the produced binning is *pure-preserving* — no
/// merge ever joined intervals of disjoint classes (used by tests).
pub fn binning_entropy(values: &[f64], classes: &[u32], n_classes: usize, cuts: &CutPoints) -> f64 {
    let mut parts = vec![vec![0u64; n_classes]; cuts.n_bins()];
    for (&v, &c) in values.iter().zip(classes) {
        if v.is_finite() {
            parts[cuts.bin_of(v)][c as usize] += 1;
        }
    }
    let total: u64 = parts.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    parts
        .iter()
        .map(|p| {
            let n: u64 = p.iter().sum();
            n as f64 / total as f64 * entropy(p)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_boundary_recovered() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..200).map(|i| u32::from(i >= 100)).collect();
        let c = chimerge_cuts(&values, &classes, 2, 0.01, 10);
        assert_eq!(c.n_bins(), 2, "cuts: {:?}", c.cuts());
        let cut = c.cuts()[0];
        assert!((99.0..=100.0).contains(&cut), "cut at {cut}");
    }

    #[test]
    fn pure_column_single_bin() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let classes = vec![0u32; 100];
        let c = chimerge_cuts(&values, &classes, 2, 0.05, 10);
        assert_eq!(c.n_bins(), 1);
    }

    #[test]
    fn max_bins_enforced() {
        // Alternating stripes want many intervals; the budget caps them.
        let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..400).map(|i| ((i / 20) % 2) as u32).collect();
        let c = chimerge_cuts(&values, &classes, 2, 0.001, 4);
        assert!(c.n_bins() <= 4, "bins {}", c.n_bins());
    }

    #[test]
    fn binning_beats_random_on_structured_data() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..300).map(|i| u32::from((100..200).contains(&i))).collect();
        let cm = chimerge_cuts(&values, &classes, 2, 0.01, 10);
        let cm_entropy = binning_entropy(&values, &classes, 2, &cm);
        // Fixed-width binning cannot match the supervised boundary.
        let ew = crate::equal_width::equal_width_cuts(&values, cm.n_bins());
        let ew_entropy = binning_entropy(&values, &classes, 2, &ew);
        assert!(
            cm_entropy <= ew_entropy + 1e-9,
            "ChiMerge {cm_entropy} vs equal-width {ew_entropy}"
        );
        assert!(cm_entropy < 0.1, "the structure is fully separable");
    }

    #[test]
    fn agrees_with_mdl_on_simple_structure() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..200).map(|i| u32::from(i >= 100)).collect();
        let cm = chimerge_cuts(&values, &classes, 2, 0.01, 10);
        let mdl = crate::mdl::mdl_cuts(&values, &classes, 2, 8);
        assert_eq!(cm.n_bins(), mdl.n_bins());
        assert!((cm.cuts()[0] - mdl.cuts()[0]).abs() < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(chimerge_cuts(&[], &[], 2, 0.05, 5).n_bins(), 1);
        assert_eq!(chimerge_cuts(&[1.0], &[0], 2, 0.05, 5).n_bins(), 1);
        assert_eq!(
            chimerge_cuts(&[3.0; 50], &(0..50).map(|i| (i % 2) as u32).collect::<Vec<_>>(), 2, 0.05, 5)
                .n_bins(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        chimerge_cuts(&[1.0], &[], 2, 0.05, 5);
    }
}
