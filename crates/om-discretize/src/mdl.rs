//! Supervised entropy/MDL discretization (Fayyad & Irani, 1993).
//!
//! Recursively picks the boundary minimizing the class-weighted entropy
//! and accepts the split only if the information gain passes the MDL
//! criterion:
//!
//! ```text
//! gain > ( log2(N - 1) + log2(3^k - 2) - k·E + k1·E1 + k2·E2 ) / N
//! ```
//!
//! where `E`, `E1`, `E2` are the class entropies of the parent and the two
//! children and `k`, `k1`, `k2` their distinct-class counts.

use om_stats::entropy;

use crate::cuts::CutPoints;

/// Supervised MDL cuts for `values` with aligned class ids (`n_classes`
/// distinct classes).
///
/// Non-finite values are ignored. Pure or degenerate columns produce no
/// cuts. `max_depth` caps recursion (the number of bins is at most
/// `2^max_depth`).
///
/// # Panics
/// Panics if `values` and `classes` have different lengths or a class id
/// is out of range.
pub fn mdl_cuts(values: &[f64], classes: &[u32], n_classes: usize, max_depth: usize) -> CutPoints {
    assert_eq!(
        values.len(),
        classes.len(),
        "values and classes must align"
    );
    assert!(
        classes.iter().all(|&c| (c as usize) < n_classes),
        "class id out of range"
    );
    let mut pairs: Vec<(f64, u32)> = values
        .iter()
        .copied()
        .zip(classes.iter().copied())
        .filter(|(v, _)| v.is_finite())
        .collect();
    if pairs.len() < 2 {
        return CutPoints::none();
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values compare"));
    let mut cuts = Vec::new();
    split(&pairs, n_classes, max_depth, &mut cuts);
    CutPoints::new(cuts)
}

/// Class histogram of a slice of `(value, class)` pairs.
fn histogram(pairs: &[(f64, u32)], n_classes: usize) -> Vec<u64> {
    let mut h = vec![0u64; n_classes];
    for &(_, c) in pairs {
        h[c as usize] += 1;
    }
    h
}

fn distinct_classes(h: &[u64]) -> usize {
    h.iter().filter(|&&c| c > 0).count()
}

/// Recursive splitting on the sorted slice.
fn split(pairs: &[(f64, u32)], n_classes: usize, depth: usize, cuts: &mut Vec<f64>) {
    if depth == 0 || pairs.len() < 4 {
        return;
    }
    let parent_hist = histogram(pairs, n_classes);
    let parent_entropy = entropy(&parent_hist);
    if parent_entropy == 0.0 {
        return; // pure — nothing to gain
    }
    let n = pairs.len() as f64;

    // Scan boundaries between distinct adjacent values, maintaining
    // left/right histograms incrementally.
    let mut left = vec![0u64; n_classes];
    let mut right = parent_hist.clone();
    let mut best: Option<(f64, usize, f64)> = None; // (gain, idx, cut)
    for i in 0..pairs.len() - 1 {
        let c = pairs[i].1 as usize;
        left[c] += 1;
        right[c] -= 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // not a boundary
        }
        let nl = (i + 1) as f64;
        let nr = n - nl;
        let e_split = nl / n * entropy(&left) + nr / n * entropy(&right);
        let gain = parent_entropy - e_split;
        let cut = (pairs[i].0 + pairs[i + 1].0) / 2.0;
        if best.is_none_or(|(g, _, _)| gain > g) {
            best = Some((gain, i + 1, cut));
        }
    }
    let Some((gain, idx, cut)) = best else {
        return; // all values identical
    };

    // MDL acceptance criterion.
    let left_pairs = &pairs[..idx];
    let right_pairs = &pairs[idx..];
    let lh = histogram(left_pairs, n_classes);
    let rh = histogram(right_pairs, n_classes);
    let k = distinct_classes(&parent_hist) as f64;
    let k1 = distinct_classes(&lh) as f64;
    let k2 = distinct_classes(&rh) as f64;
    let e = parent_entropy;
    let e1 = entropy(&lh);
    let e2 = entropy(&rh);
    let delta = (3f64.powf(k) - 2.0).log2() - (k * e - k1 * e1 - k2 * e2);
    let threshold = ((n - 1.0).log2() + delta) / n;
    if gain <= threshold {
        return;
    }

    cuts.push(cut);
    split(left_pairs, n_classes, depth - 1, cuts);
    split(right_pairs, n_classes, depth - 1, cuts);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_clean_boundary() {
        // Class 0 below 50, class 1 above — one obvious cut.
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..200).map(|i| u32::from(i >= 100)).collect();
        let c = mdl_cuts(&values, &classes, 2, 8);
        assert_eq!(c.n_bins(), 2, "cuts: {:?}", c.cuts());
        let cut = c.cuts()[0];
        assert!((99.0..=100.0).contains(&cut), "cut at {cut}");
    }

    #[test]
    fn pure_column_never_splits() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let classes = vec![0u32; 100];
        let c = mdl_cuts(&values, &classes, 2, 8);
        assert_eq!(c.n_bins(), 1);
    }

    #[test]
    fn random_labels_rarely_split() {
        // Labels independent of value: MDL should refuse to split.
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..200).map(|i| (i * 7 % 13 % 2) as u32).collect();
        let c = mdl_cuts(&values, &classes, 2, 8);
        assert!(c.n_bins() <= 2, "spurious cuts: {:?}", c.cuts());
    }

    #[test]
    fn three_segments_found() {
        // 0..100 class0, 100..200 class1, 200..300 class0 → two cuts.
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..300)
            .map(|i| u32::from((100..200).contains(&i)))
            .collect();
        let c = mdl_cuts(&values, &classes, 2, 8);
        assert_eq!(c.n_bins(), 3, "cuts: {:?}", c.cuts());
    }

    #[test]
    fn depth_limits_bins() {
        let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let classes: Vec<u32> = (0..400).map(|i| ((i / 50) % 2) as u32).collect();
        let c = mdl_cuts(&values, &classes, 2, 1);
        assert!(c.n_bins() <= 2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mdl_cuts(&[], &[], 2, 8).n_bins(), 1);
        assert_eq!(mdl_cuts(&[1.0], &[0], 2, 8).n_bins(), 1);
        assert_eq!(
            mdl_cuts(&[f64::NAN, f64::NAN], &[0, 1], 2, 8).n_bins(),
            1
        );
        // Constant values cannot split regardless of labels.
        assert_eq!(
            mdl_cuts(&[5.0; 50], &(0..50).map(|i| (i % 2) as u32).collect::<Vec<_>>(), 2, 8)
                .n_bins(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        mdl_cuts(&[1.0], &[], 2, 8);
    }
}
