//! Equal-width binning.

use crate::cuts::CutPoints;

/// Cut points splitting `[min, max]` of the finite values into `k` bins of
/// equal width. Degenerate inputs (no finite values, constant column, or
/// `k <= 1`) yield no cuts (a single bin).
pub fn equal_width_cuts(values: &[f64], k: usize) -> CutPoints {
    if k <= 1 {
        return CutPoints::none();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (Some(min), Some(max)) = (
        finite.iter().copied().reduce(f64::min),
        finite.iter().copied().reduce(f64::max),
    ) else {
        return CutPoints::none();
    };
    if min == max {
        return CutPoints::none();
    }
    let width = (max - min) / k as f64;
    let cuts: Vec<f64> = (1..k).map(|i| min + width * i as f64).collect();
    CutPoints::new(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_range_evenly() {
        let vals: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let c = equal_width_cuts(&vals, 4);
        assert_eq!(c.cuts(), &[25.0, 50.0, 75.0]);
        assert_eq!(c.n_bins(), 4);
    }

    #[test]
    fn constant_column_single_bin() {
        let c = equal_width_cuts(&[3.0; 10], 5);
        assert_eq!(c.n_bins(), 1);
    }

    #[test]
    fn empty_and_nonfinite_inputs() {
        assert_eq!(equal_width_cuts(&[], 3).n_bins(), 1);
        assert_eq!(
            equal_width_cuts(&[f64::NAN, f64::INFINITY], 3).n_bins(),
            1
        );
        // Finite values among garbage still work.
        let c = equal_width_cuts(&[f64::NAN, 0.0, 10.0], 2);
        assert_eq!(c.cuts(), &[5.0]);
    }

    #[test]
    fn k_of_one_is_single_bin() {
        assert_eq!(equal_width_cuts(&[0.0, 1.0], 1).n_bins(), 1);
        assert_eq!(equal_width_cuts(&[0.0, 1.0], 0).n_bins(), 1);
    }

    #[test]
    fn all_values_assigned_in_range_bins() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.37 - 120.0).collect();
        let c = equal_width_cuts(&vals, 7);
        for &v in &vals {
            assert!(c.bin_of(v) < c.n_bins());
        }
    }
}
