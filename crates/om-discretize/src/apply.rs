//! Applying discretization to datasets.

use om_data::dataset::replace_attribute;
use om_data::{Attribute, Column, DataError, Dataset, Domain, Result, ValueId};

use crate::cuts::CutPoints;
use crate::equal_freq::equal_freq_cuts;
use crate::equal_width::equal_width_cuts;
use crate::mdl::mdl_cuts;

/// Discretization method selection.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// `k` equal-width bins.
    EqualWidth(usize),
    /// `k` equal-frequency bins.
    EqualFrequency(usize),
    /// Supervised Fayyad–Irani entropy/MDL (depth-capped at 8).
    EntropyMdl,
    /// Supervised bottom-up ChiMerge at significance `alpha`, capped at
    /// `max_bins` intervals.
    ChiMerge { alpha: f64, max_bins: usize },
    /// User-supplied cut points (the paper's "manual discretization
    /// option").
    Manual(Vec<f64>),
}

/// Label used for the NaN bin when the column contains missing values.
pub const MISSING_LABEL: &str = "missing";

/// Compute cut points for one continuous attribute under `method`.
fn cuts_for(ds: &Dataset, idx: usize, method: &Method) -> Result<CutPoints> {
    let values = ds.column(idx).as_continuous().ok_or_else(|| {
        DataError::Invalid(format!(
            "attribute {:?} is already categorical",
            ds.schema().attribute(idx).name()
        ))
    })?;
    Ok(match method {
        Method::EqualWidth(k) => equal_width_cuts(values, *k),
        Method::EqualFrequency(k) => equal_freq_cuts(values, *k),
        Method::EntropyMdl => {
            mdl_cuts(values, ds.class_values(), ds.schema().n_classes(), 8)
        }
        Method::ChiMerge { alpha, max_bins } => crate::chimerge::chimerge_cuts(
            values,
            ds.class_values(),
            ds.schema().n_classes(),
            *alpha,
            *max_bins,
        ),
        Method::Manual(cuts) => CutPoints::new(cuts.clone()),
    })
}

/// Discretize continuous attribute `idx` in place, replacing it with a
/// categorical attribute whose labels are interval strings (plus a
/// `missing` value if the column contains NaNs).
///
/// Returns the cut points used.
///
/// ```
/// use om_data::{Cell, DatasetBuilder};
/// use om_discretize::{discretize_attribute, Method};
///
/// let mut b = DatasetBuilder::new().continuous("Signal").class("C");
/// for i in 0..100 {
///     let v = -100.0 + i as f64;
///     b.push_row(&[Cell::Num(v), Cell::Str(if v < -50.0 { "drop" } else { "ok" })])
///         .unwrap();
/// }
/// let mut ds = b.finish().unwrap();
/// let cuts = discretize_attribute(&mut ds, 0, &Method::EntropyMdl).unwrap();
/// // The supervised method finds the class boundary near -50.
/// assert_eq!(cuts.n_bins(), 2);
/// assert!(ds.schema().attribute(0).is_categorical());
/// ```
///
/// # Errors
/// Fails if the attribute is already categorical or is the class.
pub fn discretize_attribute(
    ds: &mut Dataset,
    idx: usize,
    method: &Method,
) -> Result<CutPoints> {
    if idx == ds.schema().class_index() {
        return Err(DataError::Invalid(
            "cannot discretize the class attribute".into(),
        ));
    }
    let cuts = cuts_for(ds, idx, method)?;
    let values = ds
        .column(idx)
        .as_continuous()
        .expect("validated continuous above");
    let has_nan = values.iter().any(|v| v.is_nan());
    let mut labels = cuts.labels(3);
    let missing_bin = labels.len();
    if has_nan {
        labels.push(MISSING_LABEL.to_owned());
    }
    let ids: Vec<ValueId> = values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                missing_bin as ValueId
            } else {
                cuts.bin_of(v) as ValueId
            }
        })
        .collect();
    let name = ds.schema().attribute(idx).name().to_owned();
    let attr = Attribute::categorical(name, Domain::from_labels(labels));
    replace_attribute(ds, idx, attr, Column::Categorical(ids))?;
    Ok(cuts)
}

/// Discretize every continuous attribute with the same method; returns the
/// `(attribute index, cut points)` list, in schema order.
///
/// # Errors
/// Propagates any per-attribute failure.
pub fn discretize_all(ds: &mut Dataset, method: &Method) -> Result<Vec<(usize, CutPoints)>> {
    let continuous: Vec<usize> = (0..ds.schema().n_attributes())
        .filter(|&i| {
            i != ds.schema().class_index() && !ds.schema().attribute(i).is_categorical()
        })
        .collect();
    let mut out = Vec::with_capacity(continuous.len());
    for idx in continuous {
        let cuts = discretize_attribute(ds, idx, method)?;
        out.push((idx, cuts));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Cell, DatasetBuilder};

    fn mixed() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("Phone")
            .continuous("Signal")
            .continuous("Battery")
            .class("Outcome");
        for i in 0..100 {
            let signal = -100.0 + i as f64 * 0.5;
            let battery = (i % 10) as f64 * 10.0;
            let outcome = if signal < -80.0 { "drop" } else { "ok" };
            b.push_row(&[
                Cell::Str(if i % 2 == 0 { "ph1" } else { "ph2" }),
                Cell::Num(signal),
                Cell::Num(battery),
                Cell::Str(outcome),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn equal_width_replaces_attribute() {
        let mut ds = mixed();
        let cuts = discretize_attribute(&mut ds, 1, &Method::EqualWidth(4)).unwrap();
        assert_eq!(cuts.n_bins(), 4);
        let attr = ds.schema().attribute(1);
        assert!(attr.is_categorical());
        assert_eq!(attr.name(), "Signal");
        assert_eq!(attr.cardinality(), 4);
        // Counts must cover all rows.
        let total: u64 = ds.value_counts(1).unwrap().iter().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn mdl_uses_class_boundary() {
        let mut ds = mixed();
        let cuts = discretize_attribute(&mut ds, 1, &Method::EntropyMdl).unwrap();
        assert_eq!(cuts.n_bins(), 2, "cuts {:?}", cuts.cuts());
        assert!((cuts.cuts()[0] + 80.0).abs() < 1.0, "cut near -80");
    }

    #[test]
    fn manual_cuts_respected() {
        let mut ds = mixed();
        let cuts =
            discretize_attribute(&mut ds, 2, &Method::Manual(vec![25.0, 75.0])).unwrap();
        assert_eq!(cuts.cuts(), &[25.0, 75.0]);
        assert_eq!(ds.schema().attribute(2).cardinality(), 3);
    }

    #[test]
    fn discretize_all_converts_everything() {
        let mut ds = mixed();
        let done = discretize_all(&mut ds, &Method::EqualFrequency(3)).unwrap();
        assert_eq!(done.len(), 2);
        assert!(ds.all_categorical());
    }

    #[test]
    fn nan_goes_to_missing_bin() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        b.push_row(&[Cell::Num(1.0), Cell::Str("a")]).unwrap();
        b.push_row(&[Cell::Num(f64::NAN), Cell::Str("b")]).unwrap();
        b.push_row(&[Cell::Num(2.0), Cell::Str("a")]).unwrap();
        let mut ds = b.finish().unwrap();
        discretize_attribute(&mut ds, 0, &Method::EqualWidth(2)).unwrap();
        let attr = ds.schema().attribute(0);
        let missing_id = attr.domain().get(MISSING_LABEL).expect("missing bin exists");
        let ids = ds.column(0).as_categorical().unwrap();
        assert_eq!(ids[1], missing_id);
        assert_ne!(ids[0], missing_id);
    }

    #[test]
    fn rejects_categorical_and_class() {
        let mut ds = mixed();
        assert!(discretize_attribute(&mut ds, 0, &Method::EqualWidth(2)).is_err());
        let class_idx = ds.schema().class_index();
        assert!(discretize_attribute(&mut ds, class_idx, &Method::EqualWidth(2)).is_err());
    }

    #[test]
    fn constant_column_single_bin() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        for i in 0..10 {
            b.push_row(&[Cell::Num(5.0), Cell::Str(if i % 2 == 0 { "a" } else { "b" })])
                .unwrap();
        }
        let mut ds = b.finish().unwrap();
        let cuts = discretize_attribute(&mut ds, 0, &Method::EqualWidth(4)).unwrap();
        assert_eq!(cuts.n_bins(), 1);
        assert_eq!(ds.schema().attribute(0).cardinality(), 1);
    }
}

#[cfg(test)]
mod chimerge_apply_tests {
    use super::*;
    use om_data::{Cell, DatasetBuilder};

    #[test]
    fn chimerge_method_applies() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        for i in 0..200 {
            let v = i as f64;
            b.push_row(&[Cell::Num(v), Cell::Str(if v < 100.0 { "a" } else { "b" })])
                .unwrap();
        }
        let mut ds = b.finish().unwrap();
        let cuts = discretize_attribute(
            &mut ds,
            0,
            &Method::ChiMerge { alpha: 0.01, max_bins: 8 },
        )
        .unwrap();
        assert_eq!(cuts.n_bins(), 2, "cuts {:?}", cuts.cuts());
        assert!(ds.schema().attribute(0).is_categorical());
    }
}
