//! Discretization of continuous attributes.
//!
//! Class association rule mining "requires every attribute in the data to
//! be discrete … there are many existing discretization algorithms that can
//! be used to discretize each continuous attribute into intervals"
//! (Section III-A). The Opportunity Map system's first component is "a
//! discretizer … (a manual discretization option is also available)"
//! (Section V-A). This crate provides:
//!
//! * [`equal_width`] — fixed-width bins;
//! * [`equal_freq`] — quantile bins;
//! * [`mdl`] — the supervised entropy/MDL method of Fayyad & Irani, the
//!   standard choice for classification data;
//! * manual cut points ([`Method::Manual`]).
//!
//! [`apply::discretize_attribute`] swaps a continuous attribute for its
//! interval-labeled categorical version in place; NaNs land in a dedicated
//! `missing` bin rather than poisoning interval assignment.

pub mod apply;
pub mod chimerge;
pub mod cuts;
pub mod equal_freq;
pub mod equal_width;
pub mod mdl;

pub use apply::{discretize_all, discretize_attribute, Method};
pub use cuts::CutPoints;
