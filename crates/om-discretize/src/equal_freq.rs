//! Equal-frequency (quantile) binning.

use crate::cuts::CutPoints;

/// Cut points placing roughly `n/k` finite values into each of `k` bins.
///
/// Cuts fall on quantile boundaries; repeated values collapse duplicated
/// cuts, so heavily tied data may yield fewer than `k` bins. Degenerate
/// inputs yield a single bin.
pub fn equal_freq_cuts(values: &[f64], k: usize) -> CutPoints {
    if k <= 1 {
        return CutPoints::none();
    }
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return CutPoints::none();
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let n = finite.len();
    let mut cuts = Vec::with_capacity(k - 1);
    for i in 1..k {
        let mut pos = i * n / k;
        if pos == 0 {
            continue;
        }
        // Ties cannot be split: advance to the next distinct boundary (or
        // skip the cut entirely) so no bin ends up empty.
        while pos < n && finite[pos] == finite[pos - 1] {
            pos += 1;
        }
        if pos >= n {
            continue;
        }
        cuts.push((finite[pos - 1] + finite[pos]) / 2.0);
    }
    CutPoints::new(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_uniform_sequence() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = equal_freq_cuts(&vals, 4);
        assert_eq!(c.n_bins(), 4);
        // Each bin should get ~25 values.
        let mut counts = vec![0usize; 4];
        for &v in &vals {
            counts[c.bin_of(v)] += 1;
        }
        for &cnt in &counts {
            assert!((23..=27).contains(&cnt), "bin counts {counts:?}");
        }
    }

    #[test]
    fn ties_collapse_bins() {
        // 90% of mass on one value: cannot make 4 distinct bins.
        let mut vals = vec![5.0; 90];
        vals.extend((0..10).map(|i| i as f64));
        let c = equal_freq_cuts(&vals, 4);
        assert!(c.n_bins() <= 4);
        assert!(c.n_bins() >= 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(equal_freq_cuts(&[], 3).n_bins(), 1);
        assert_eq!(equal_freq_cuts(&[1.0], 3).n_bins(), 1);
        assert_eq!(equal_freq_cuts(&[2.0; 50], 3).n_bins(), 1);
        assert_eq!(equal_freq_cuts(&[1.0, 2.0], 1).n_bins(), 1);
    }

    #[test]
    fn skewed_distribution_balances_better_than_equal_width() {
        // Exponential-ish skew: equal-frequency should spread mass.
        let vals: Vec<f64> = (1..500).map(|i| (i as f64).powi(3)).collect();
        let c = equal_freq_cuts(&vals, 5);
        let mut counts = vec![0usize; c.n_bins()];
        for &v in &vals {
            counts[c.bin_of(v)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "counts too unbalanced: {counts:?}");
    }
}
