//! Cut points: the output of every discretization method.

/// A sorted set of finite cut points defining `cuts.len() + 1` intervals:
/// `(-inf, c_0)`, `[c_0, c_1)`, …, `[c_last, +inf)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CutPoints {
    cuts: Vec<f64>,
}

impl CutPoints {
    /// Build from arbitrary candidate cuts: non-finite values are dropped,
    /// the rest sorted and deduplicated.
    pub fn new(mut cuts: Vec<f64>) -> Self {
        cuts.retain(|c| c.is_finite());
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts compare"));
        cuts.dedup();
        Self { cuts }
    }

    /// No cuts: a single bin covering everything.
    pub fn none() -> Self {
        Self { cuts: Vec::new() }
    }

    /// The cut values, sorted ascending.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Number of bins (`cuts + 1`).
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Bin index of `x` (NaN is the caller's problem — see
    /// [`crate::apply`], which routes NaNs to a dedicated missing bin).
    /// Interval convention: bin `i` is `[c_{i-1}, c_i)`.
    pub fn bin_of(&self, x: f64) -> usize {
        debug_assert!(!x.is_nan(), "bin_of called with NaN");
        // partition_point: first index where cut > x  ⇒ number of cuts <= x.
        self.cuts.partition_point(|&c| c <= x)
    }

    /// Human-readable interval labels, e.g. `"[-75.0, -60.0)"`.
    pub fn labels(&self, precision: usize) -> Vec<String> {
        if self.cuts.is_empty() {
            return vec!["(-inf, +inf)".to_owned()];
        }
        let mut out = Vec::with_capacity(self.n_bins());
        out.push(format!("(-inf, {:.precision$})", self.cuts[0]));
        for w in self.cuts.windows(2) {
            out.push(format!("[{:.precision$}, {:.precision$})", w[0], w[1]));
        }
        out.push(format!(
            "[{:.precision$}, +inf)",
            self.cuts[self.cuts.len() - 1]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_dedupes() {
        let c = CutPoints::new(vec![5.0, 1.0, 5.0, f64::NAN, f64::INFINITY, 3.0]);
        assert_eq!(c.cuts(), &[1.0, 3.0, 5.0]);
        assert_eq!(c.n_bins(), 4);
    }

    #[test]
    fn bin_assignment_half_open() {
        let c = CutPoints::new(vec![0.0, 10.0]);
        assert_eq!(c.bin_of(-1.0), 0);
        assert_eq!(c.bin_of(0.0), 1, "cut value belongs to the right bin");
        assert_eq!(c.bin_of(5.0), 1);
        assert_eq!(c.bin_of(10.0), 2);
        assert_eq!(c.bin_of(1e9), 2);
    }

    #[test]
    fn no_cuts_single_bin() {
        let c = CutPoints::none();
        assert_eq!(c.n_bins(), 1);
        assert_eq!(c.bin_of(-1e300), 0);
        assert_eq!(c.bin_of(1e300), 0);
        assert_eq!(c.labels(1), vec!["(-inf, +inf)"]);
    }

    #[test]
    fn labels_cover_all_bins() {
        let c = CutPoints::new(vec![-1.5, 2.25]);
        let labels = c.labels(2);
        assert_eq!(
            labels,
            vec!["(-inf, -1.50)", "[-1.50, 2.25)", "[2.25, +inf)"]
        );
        assert_eq!(labels.len(), c.n_bins());
    }

    #[test]
    fn bins_are_monotone_in_x() {
        let c = CutPoints::new(vec![1.0, 2.0, 3.0]);
        let mut prev = 0;
        for i in 0..50 {
            let x = i as f64 / 10.0;
            let b = c.bin_of(x);
            assert!(b >= prev);
            prev = b;
        }
    }
}
