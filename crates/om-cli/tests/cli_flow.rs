//! End-to-end CLI flows: generate → overview → detail → compare → gi →
//! rules, all through the public `run` entry point.

use om_cli::{run, CliError};

fn opmap(args: &[&str]) -> Result<String, CliError> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&argv, &mut out)?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

fn temp_csv(name: &str) -> String {
    let dir = std::env::temp_dir().join("om-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_analysis_flow() {
    let csv = temp_csv("calls.csv");
    let text = opmap(&[
        "generate", "--domain", "call-log", "--records", "30000", "--seed", "7", "--out", &csv,
    ])
    .unwrap();
    assert!(text.contains("30000 records"), "{text}");
    assert!(text.contains("planted cause: TimeOfCall"), "{text}");

    let text = opmap(&["overview", "--data", &csv, "--class", "CallDisposition"]).unwrap();
    assert!(text.contains("dropped"), "{text}");
    assert!(text.contains("pair cubes materialized"), "{text}");

    let text = opmap(&[
        "detail", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
    ])
    .unwrap();
    assert!(text.contains("ph1"), "{text}");
    assert!(text.contains("conf="), "{text}");

    let text = opmap(&[
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped",
    ])
    .unwrap();
    assert!(text.contains("Rule 1: PhoneModel=ph1"), "{text}");
    // The planted cause must appear at rank 1.
    let rank1_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("1 "))
        .expect("rank-1 line");
    assert!(rank1_line.contains("TimeOfCall"), "{rank1_line}");
    assert!(text.contains("Property attribute"), "{text}");

    let text = opmap(&["gi", "--data", &csv, "--class", "CallDisposition"]).unwrap();
    assert!(text.contains("influential attributes"), "{text}");

    let text = opmap(&[
        "rules", "--data", &csv, "--class", "CallDisposition",
        "--min-support", "0.001", "--min-confidence", "0.02", "--top", "5",
    ])
    .unwrap();
    assert!(text.contains("rules (showing up to 5)"), "{text}");
    assert!(text.contains("->"), "{text}");

    // Restricted mining through the CLI.
    let text = opmap(&[
        "rules", "--data", &csv, "--class", "CallDisposition",
        "--min-support", "0.0005", "--min-confidence", "0.0",
        "--max-conditions", "3", "--fix", "PhoneModel=ph2", "--top", "3",
    ])
    .unwrap();
    assert!(text.contains("PhoneModel=ph2"), "{text}");
}

#[test]
fn compare_no_ci_flag_changes_scores() {
    let csv = temp_csv("calls_noci.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "20000", "--seed", "11", "--out", &csv,
    ])
    .unwrap();
    let base = [
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped", "--top", "3",
    ];
    let with_ci = opmap(&base).unwrap();
    let mut no_ci_args: Vec<&str> = base.to_vec();
    no_ci_args.push("--no-ci");
    let without_ci = opmap(&no_ci_args).unwrap();
    assert_ne!(with_ci, without_ci, "CI flag must change the report");
}

#[test]
fn command_help_screens() {
    for cmd in ["generate", "overview", "detail", "compare", "gi", "rules", "explore", "shell"] {
        let text = opmap(&[cmd, "--help"]).unwrap();
        assert!(text.contains("OPTIONS"), "{cmd}: {text}");
    }
}

#[test]
fn missing_file_reports_cleanly() {
    let r = opmap(&[
        "overview", "--data", "/nonexistent/nope.csv", "--class", "C",
    ]);
    match r {
        Err(CliError::Failed(msg)) => assert!(msg.contains("cannot open"), "{msg}"),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn unknown_option_rejected() {
    let csv = temp_csv("calls_opt.csv");
    opmap(&[
        "generate", "--domain", "scaleup", "--records", "500", "--attrs", "4", "--out", &csv,
    ])
    .unwrap();
    let r = opmap(&[
        "overview", "--data", &csv, "--class", "Class", "--tpyo", "1",
    ]);
    assert!(matches!(r, Err(CliError::Usage(_))), "{r:?}");
}

#[test]
fn bad_value_labels_reported() {
    let csv = temp_csv("calls_badval.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "5000", "--seed", "3", "--out", &csv,
    ])
    .unwrap();
    let r = opmap(&[
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph99", "--target", "dropped",
    ]);
    match r {
        Err(CliError::Failed(msg)) => assert!(msg.contains("ph99"), "{msg}"),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn exhausted_budget_reports_cleanly_and_generous_budget_matches_unlimited() {
    let csv = temp_csv("calls_budget.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "10000", "--seed", "9", "--out", &csv,
    ])
    .unwrap();
    let base = [
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped",
    ];

    // An impossible budget fails with actionable guidance, not a panic
    // or a bare engine error. (Engine build happens before the budget
    // starts, so even slow machines can't sneak the comparison in — the
    // deadline is checked before the first attribute.)
    let mut tiny: Vec<&str> = base.to_vec();
    tiny.extend(["--budget-ms", "1"]);
    // The comparison itself is fast; only assert the message shape when
    // the deadline actually trips.
    if let Err(e) = opmap(&tiny) {
        let msg = e.to_string();
        assert!(msg.contains("--budget-ms"), "{msg}");
        assert!(msg.contains("deadline exceeded"), "{msg}");
    }

    // A generous budget must not change the answer.
    let unlimited = opmap(&base).unwrap();
    let mut generous: Vec<&str> = base.to_vec();
    generous.extend(["--budget-ms", "60000"]);
    assert_eq!(opmap(&generous).unwrap(), unlimited);

    // gi and drill accept the flag too.
    let text = opmap(&[
        "gi", "--data", &csv, "--class", "CallDisposition", "--budget-ms", "60000",
    ])
    .unwrap();
    assert!(text.contains("influential attributes"), "{text}");
    let text = opmap(&[
        "drill", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped", "--depth", "1",
        "--budget-ms", "60000",
    ])
    .unwrap();
    assert!(text.contains("drill-down finished"), "{text}");
}

#[test]
fn generate_rejects_unknown_domain() {
    let r = opmap(&["generate", "--domain", "weather", "--out", "/tmp/x.csv"]);
    assert!(matches!(r, Err(CliError::Usage(_))));
}

#[test]
fn drill_command_runs() {
    let csv = temp_csv("calls_drill.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "40000", "--seed", "21", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "drill", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped", "--depth", "1",
    ])
    .unwrap();
    assert!(text.contains("level 0: unconditioned"), "{text}");
    assert!(text.contains("drill-down finished"), "{text}");
}

#[test]
fn explore_command_picks_topk_summaries() {
    let csv = temp_csv("calls_explore.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "20000", "--seed", "31", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "explore", "--data", &csv, "--class", "CallDisposition", "--k", "4",
    ])
    .unwrap();
    assert!(text.contains("record(s) in scope"), "{text}");
    assert!(text.contains("  1. "), "{text}");
    assert!(text.contains("support="), "{text}");

    // Compare mode labels each summary with its side of the split.
    let text = opmap(&[
        "explore", "--data", &csv, "--class", "CallDisposition", "--k", "4",
        "--attr", "PhoneModel", "--v1", "ph1", "--v2", "ph2", "--target", "dropped",
    ])
    .unwrap();
    assert!(text.contains("exploring both sides of PhoneModel"), "{text}");
    assert!(text.contains("side="), "{text}");
    assert!(text.contains("mass="), "{text}");

    // A slice pins its attribute, so no summary may mention it again.
    let slice = opmap(&[
        "explore", "--data", &csv, "--class", "CallDisposition", "--k", "3",
        "--slice", "TimeOfCall=morning",
    ])
    .unwrap();
    assert!(!slice.contains("TimeOfCall="), "sliced attr must not reappear: {slice}");
}

#[test]
fn scan_command_finds_the_phone_pair() {
    let csv = temp_csv("calls_scan.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "40000", "--seed", "23", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "scan", "--data", &csv, "--class", "CallDisposition", "--target", "dropped",
    ])
    .unwrap();
    assert!(text.contains("significant pair"), "{text}");
    assert!(text.contains("PhoneModel"), "{text}");
    assert!(text.contains("best explained by"), "{text}");
}

#[test]
fn describe_command_summarizes() {
    let csv = temp_csv("calls_desc.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "5000", "--seed", "2", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&["describe", "--data", &csv, "--class", "CallDisposition"]).unwrap();
    assert!(text.contains("5000 records"), "{text}");
    assert!(text.contains("class distribution"), "{text}");
    assert!(text.contains("PhoneModel"), "{text}");
    assert!(text.contains("continuous, range"), "{text}");
}

#[test]
fn heatmap_command_renders() {
    let csv = temp_csv("calls_heat.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "20000", "--seed", "4", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "heatmap", "--data", &csv, "--class", "CallDisposition",
        "--attr-a", "PhoneModel", "--attr-b", "TimeOfCall", "--target", "dropped",
    ])
    .unwrap();
    assert!(text.contains("PhoneModel × TimeOfCall"), "{text}");
    assert!(text.contains("shading"), "{text}");
}

#[test]
fn compare_json_format() {
    let csv = temp_csv("calls_json.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "10000", "--seed", "6", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped", "--format", "json",
    ])
    .unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{text}");
    assert!(trimmed.contains("\"ranked\":["), "{text}");
    // Bad format rejected.
    let r = opmap(&[
        "compare", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--v1", "ph1", "--v2", "ph2", "--target", "dropped", "--format", "yaml",
    ]);
    assert!(matches!(r, Err(CliError::Usage(_))));
}

#[test]
fn groups_command_runs() {
    let csv = temp_csv("calls_groups.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "30000", "--seed", "8", "--out", &csv,
    ])
    .unwrap();
    let text = opmap(&[
        "groups", "--data", &csv, "--class", "CallDisposition", "--attr", "PhoneModel",
        "--g1", "ph1,ph3", "--g2", "ph2,ph4", "--target", "dropped",
    ])
    .unwrap();
    assert!(text.contains("{ph1, ph3}") || text.contains("{ph2, ph4}"), "{text}");
    assert!(text.contains("Rule 1"), "{text}");
}

#[test]
fn report_command_writes_markdown() {
    let csv = temp_csv("calls_report.csv");
    opmap(&[
        "generate", "--domain", "call-log", "--records", "30000", "--seed", "14", "--out", &csv,
    ])
    .unwrap();
    let md_path = temp_csv("analysis.md");
    let text = opmap(&[
        "report", "--data", &csv, "--class", "CallDisposition", "--target", "dropped",
        "--out", &md_path,
    ])
    .unwrap();
    assert!(text.contains("report written"), "{text}");
    let doc = std::fs::read_to_string(&md_path).unwrap();
    assert!(doc.contains("# Opportunity Map analysis report"), "{doc}");
    assert!(doc.contains("## 3. Significant differences"), "{doc}");
}
