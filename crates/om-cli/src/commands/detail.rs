//! `opmap detail` — one attribute's detailed view (Fig. 6).

use std::io::Write;

use om_viz::detailed::DetailedOptions;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap detail — exact counts and confidences of one attribute (Fig. 6)

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --attr <name>      attribute to inspect (required)
  --bins <k>         equal-frequency bins for continuous attributes";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let attr = parsed.required("attr")?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let view = om.detailed_view(&attr, &DetailedOptions::default())?;
    writeln!(out, "{view}").ok();
    Ok(())
}
