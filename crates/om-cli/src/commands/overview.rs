//! `opmap overview` — the overall visualization mode (Fig. 5).

use std::io::Write;

use om_viz::overall::OverallOptions;
use om_viz::ColorMode;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap overview — render all 2-D rule cubes (the Fig. 5 screen)

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --bins <k>         equal-frequency bins for continuous attributes
  --grid <w>         sparkline width per attribute grid (default 8)
  --ansi             color output";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let grid = parsed.parse_or("grid", 8usize)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let options = OverallOptions {
        color: if parsed.switch("ansi") {
            ColorMode::Ansi
        } else {
            ColorMode::Plain
        },
        max_grid_width: grid,
        ..Default::default()
    };
    writeln!(out, "{}", om.overall_view(&options)).ok();
    writeln!(
        out,
        "{} attributes, {} records, {} pair cubes materialized",
        om.store().attrs().len(),
        om.dataset().n_rows(),
        om.store().n_pair_cubes()
    )
    .ok();
    Ok(())
}
