//! `opmap heatmap` — 3-D rule-cube heatmap of two attributes × one class.

use std::io::Write;

use om_viz::pair_view::{render_pair_heatmap, PairViewOptions};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap heatmap — shade a pair cube by class confidence

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --attr-a <name>    row attribute (required)
  --attr-b <name>    column attribute (required)
  --target <label>   class of interest (required)
  --min-cells <n>    mark cells with fewer records as unreliable (default 10)
  --bins <k>         equal-frequency bins for continuous attributes";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let attr_a = parsed.required("attr-a")?;
    let attr_b = parsed.required("attr-b")?;
    let target = parsed.required("target")?;
    let min_cells = parsed.parse_or("min-cells", 10u64)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let a = om.attr_index(&attr_a)?;
    let b = om.attr_index(&attr_b)?;
    let class = om.class_id(&target)?;
    let cube = om
        .store()
        .pair(a, b)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let text = render_pair_heatmap(
        &cube,
        class,
        &PairViewOptions {
            min_cell_count: min_cells,
            ..Default::default()
        },
    )
    .map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "{text}").ok();
    Ok(())
}
