//! `opmap scan` — find the comparisons worth running, automatically.

use std::io::Write;

use om_engine::ScanConfig;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap scan — find significant value pairs and compare each automatically

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --target <label>   class of interest, e.g. dropped (required)
  --top <n>          pairs to analyze (default 5)
  --min-z <z>        minimum |z| of the pair difference (default 4.0)
  --min-support <n>  minimum records per value (default 100)
  --bins <k>         equal-frequency bins for continuous attributes";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let target = parsed.required("target")?;
    let top = parsed.parse_or("top", 5usize)?;
    let min_z = parsed.parse_or("min-z", 4.0f64)?;
    let min_support = parsed.parse_or("min-support", 100u64)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let findings = om.scan_opportunities(
        &target,
        &ScanConfig {
            max_results: top,
            min_z,
            min_sub_population: min_support,
        },
    )?;
    if findings.is_empty() {
        writeln!(
            out,
            "no value pair clears |z| >= {min_z} on class {target:?} — nothing stands out"
        )
        .ok();
        return Ok(());
    }
    writeln!(out, "{} significant pair(s) on class {target:?}:\n", findings.len()).ok();
    for (i, f) in findings.iter().enumerate() {
        writeln!(
            out,
            "#{} {}: {} ({:.3}%) vs {} ({:.3}%), z = {:.1}",
            i + 1,
            f.attr_name,
            f.value_1_label,
            f.cf1 * 100.0,
            f.value_2_label,
            f.cf2 * 100.0,
            f.z
        )
        .ok();
        match f.result.top() {
            Some(top_attr) => {
                let top_value = top_attr
                    .top_values()
                    .first()
                    .map(|c| c.label.clone())
                    .unwrap_or_default();
                writeln!(
                    out,
                    "   best explained by {} (top value {}, M = {:.1}, {:.1}% of max)",
                    top_attr.attr_name,
                    top_value,
                    top_attr.score,
                    top_attr.normalized * 100.0
                )
                .ok();
            }
            None => {
                writeln!(out, "   no non-property attribute explains the difference").ok();
            }
        }
    }
    Ok(())
}
