//! `opmap shell` — the interactive exploration shell.

use std::io::Write;

use crate::args::Parsed;
use crate::repl::run_repl;
use crate::CliResult;

const HELP: &str = "\
opmap shell — interactive rule-cube exploration (select/slice/rollup/…)

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --bins <k>         equal-frequency bins for continuous attributes

Reads commands from stdin; type 'help' inside the shell.";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;
    let stdin = std::io::stdin().lock();
    run_repl(&om, stdin, out);
    Ok(())
}
