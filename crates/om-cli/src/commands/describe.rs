//! `opmap describe` — dataset summary before any mining.

use std::io::Write;

use om_data::summary::summarize;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap describe — summarize a dataset (shape, class skew, attribute stats)

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let ds = super::load_dataset(parsed)?;
    parsed.reject_unknown()?;
    writeln!(out, "{}", summarize(&ds)).ok();
    Ok(())
}
