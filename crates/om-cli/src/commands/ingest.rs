//! `opmap ingest` — append CSV rows to a running server's live store.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap ingest — append CSV rows to a running server's live store

Reads data rows from <file> and POSTs them in batches to the /ingest
endpoint of an `opmap serve --ingest-wal <dir>` server. Rows must use
the serving dataset's discretized value labels, in schema order, with
the class column last; labels containing commas must be quoted.

USAGE:
  opmap ingest <file> [OPTIONS]

OPTIONS:
  --addr <host:port>   Server address [127.0.0.1:7878]
  --batch <n>          Rows per POST request [500]
  --skip-header        Skip the first line of <file> (a CSV header)";

/// How long to wait for each connection / reply before giving up.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Entry point for `opmap ingest`.
///
/// # Errors
/// Usage errors for bad flags; failures for an unreadable file, an
/// unreachable server, or a rejected batch.
pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let path = parsed.next_positional().ok_or_else(|| {
        CliError::Usage("ingest needs a file: opmap ingest <file> --addr <host:port>".into())
    })?;
    let addr = parsed
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let batch = parsed.parse_or("batch", 500usize)?;
    if batch == 0 {
        return Err(CliError::Usage("--batch must be at least 1".into()));
    }
    let skip_header = parsed.switch("skip-header");
    parsed.reject_unknown()?;

    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Failed(format!("cannot read {path:?}: {e}")))?;
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if skip_header && !lines.is_empty() {
        lines.remove(0);
    }
    if lines.is_empty() {
        return Err(CliError::Failed(format!("{path:?} contains no data rows")));
    }

    let mut accepted = 0u64;
    let mut batches = 0usize;
    let mut last_reply = String::new();
    for chunk in lines.chunks(batch) {
        let mut body = chunk.join("\n");
        body.push('\n');
        let (status, reply) = post_ingest(&addr, &body)?;
        if status != 200 {
            return Err(CliError::Failed(format!(
                "server rejected batch {} ({} row(s) in, {accepted} accepted so far) \
                 with status {status}: {}",
                batches + 1,
                chunk.len(),
                reply.trim()
            )));
        }
        accepted += json_u64(&reply, "accepted").unwrap_or(0);
        batches += 1;
        last_reply = reply;
    }

    writeln!(
        out,
        "appended {accepted} row(s) in {batches} batch(es) to http://{addr}/ingest"
    )
    .ok();
    if let (Some(total), Some(generation)) = (
        json_u64(&last_reply, "rows_total"),
        json_u64(&last_reply, "generation"),
    ) {
        writeln!(
            out,
            "server has ingested {total} row(s) this run; store generation {generation}"
        )
        .ok();
    }
    Ok(())
}

/// POST `body` to `/ingest` and return (status, reply body).
fn post_ingest(addr: &str, body: &str) -> Result<(u16, String), CliError> {
    let connect_err = |e: std::io::Error| {
        CliError::Failed(format!("cannot reach server at {addr}: {e}"))
    };
    let mut stream = TcpStream::connect(addr).map_err(connect_err)?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();
    let request = format!(
        "POST /ingest HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).map_err(connect_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(connect_err)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            CliError::Failed(format!("malformed reply from {addr}: {response:?}"))
        })?;
    let reply = response
        .split_once("\r\n\r\n")
        .map_or("", |(_, b)| b)
        .to_owned();
    Ok((status, reply))
}

/// Pull `"key":<digits>` out of a flat JSON object without a parser.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
    use om_server::{Server, ServerConfig};

    use super::*;

    fn run_args(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut parsed = Parsed::parse(&argv).unwrap();
        let _ = parsed.command();
        let mut out = Vec::new();
        let r = run(&mut parsed, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_options() {
        let (r, text) = run_args(&["ingest", "--help"]);
        assert!(r.is_ok());
        assert!(text.contains("--addr"));
        assert!(text.contains("--batch"));
    }

    #[test]
    fn missing_file_operand_is_usage_error() {
        let (r, _) = run_args(&["ingest"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn unreadable_file_is_failure() {
        let (r, _) = run_args(&["ingest", "/nonexistent-rows.csv"]);
        assert!(matches!(r, Err(CliError::Failed(_))));
    }

    #[test]
    fn json_scraping() {
        let body = "{\"accepted\":12,\"rows_total\":340,\"generation\":7}";
        assert_eq!(json_u64(body, "accepted"), Some(12));
        assert_eq!(json_u64(body, "rows_total"), Some(340));
        assert_eq!(json_u64(body, "generation"), Some(7));
        assert_eq!(json_u64(body, "missing"), None);
    }

    #[test]
    fn posts_a_file_to_a_live_server_in_batches() {
        let (ds, _) = om_synth::paper_scenario(2_000, 5);
        let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
        let wal_dir = std::env::temp_dir().join(format!("om-cli-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let handle = om
            .start_ingest(&IngestConfig {
                seal_rows: 64,
                sync_writes: false,
                ..IngestConfig::new(&wal_dir)
            })
            .unwrap();
        let server = Server::start_with_ingest(
            Arc::clone(&om),
            ServerConfig::default(),
            Some(handle.clone()),
        )
        .unwrap();

        // A CSV file with a header plus five copies of the dataset's row
        // 0 expressed as discretized labels (quoted where needed).
        let dataset = om.dataset();
        let schema = dataset.schema();
        let header = (0..schema.n_attributes())
            .map(|i| schema.attribute(i).name().to_owned())
            .collect::<Vec<_>>()
            .join(",");
        let row = (0..schema.n_attributes())
            .map(|i| {
                let id = dataset.column(i).as_categorical().unwrap()[0];
                let label = schema.attribute(i).domain().label(id).unwrap();
                if label.contains(',') {
                    format!("\"{label}\"")
                } else {
                    label.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        let file =
            std::env::temp_dir().join(format!("om-cli-ingest-rows-{}.csv", std::process::id()));
        std::fs::write(&file, format!("{header}\n{row}\n{row}\n{row}\n{row}\n{row}\n")).unwrap();

        let addr = server.local_addr().to_string();
        let (r, text) = run_args(&[
            "ingest",
            file.to_str().unwrap(),
            "--addr",
            &addr,
            "--batch",
            "2",
            "--skip-header",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(
            text.contains("appended 5 row(s) in 3 batch(es)"),
            "{text}"
        );
        handle.flush().unwrap();
        assert_eq!(handle.stats().rows_total, 5);

        server.shutdown();
        handle.shutdown();
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}
