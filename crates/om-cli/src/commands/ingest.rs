//! `opmap ingest` — append CSV rows to a running server's live store.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use om_api::{ErrorEnvelope, IngestRequest, IngestResponse};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap ingest — append CSV rows to a running server's live store

Reads data rows from <file> and POSTs them in typed batches to the
/v1/ingest endpoint of an `opmap serve --ingest-wal <dir>` server. Rows
must use the serving dataset's discretized value labels, in schema order,
with the class column last; labels containing commas must be quoted.

USAGE:
  opmap ingest <file> [OPTIONS]

OPTIONS:
  --addr <host:port>   Server address [127.0.0.1:7878]
  --batch <n>          Rows per POST request [500]
  --skip-header        Skip the first line of <file> (a CSV header)";

/// How long to wait for each connection / reply before giving up.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Entry point for `opmap ingest`.
///
/// # Errors
/// Usage errors for bad flags; failures for an unreadable file, an
/// unreachable server, or a rejected batch.
pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let path = parsed.next_positional().ok_or_else(|| {
        CliError::Usage("ingest needs a file: opmap ingest <file> --addr <host:port>".into())
    })?;
    let addr = parsed
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let batch = parsed.parse_or("batch", 500usize)?;
    if batch == 0 {
        return Err(CliError::Usage("--batch must be at least 1".into()));
    }
    let skip_header = parsed.switch("skip-header");
    parsed.reject_unknown()?;

    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Failed(format!("cannot read {path:?}: {e}")))?;
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if skip_header && !lines.is_empty() {
        lines.remove(0);
    }
    if lines.is_empty() {
        return Err(CliError::Failed(format!("{path:?} contains no data rows")));
    }
    // Field splitting happens client-side so the server sees structured
    // rows and can point at the offending row index on rejection.
    let rows: Vec<Vec<String>> = lines
        .iter()
        .map(|line| om_data::csv::split_record(line, ','))
        .collect();

    let mut accepted = 0u64;
    let mut batches = 0usize;
    let mut last: Option<IngestResponse> = None;
    for (chunk_no, chunk) in rows.chunks(batch).enumerate() {
        let body = IngestRequest { rows: chunk.to_vec() }.encode();
        let (status, reply) = post_ingest(&addr, &body)?;
        if status != 200 {
            return Err(CliError::Failed(reject_message(
                status,
                &reply,
                chunk_no,
                chunk.len(),
                accepted,
                batch,
            )));
        }
        let parsed_reply = IngestResponse::parse(&reply).map_err(|e| {
            CliError::Failed(format!("malformed ingest reply from {addr}: {e}"))
        })?;
        accepted += parsed_reply.accepted;
        last = Some(parsed_reply);
        batches += 1;
    }

    writeln!(
        out,
        "appended {accepted} row(s) in {batches} batch(es) to http://{addr}/v1/ingest"
    )
    .ok();
    if let Some(reply) = last {
        writeln!(
            out,
            "server has ingested {} row(s) this run; store generation {}",
            reply.rows_total, reply.generation
        )
        .ok();
    }
    Ok(())
}

/// Render a rejected batch as an actionable message, naming the file row
/// when the server's error envelope carries one.
fn reject_message(
    status: u16,
    reply: &str,
    chunk_no: usize,
    chunk_len: usize,
    accepted: u64,
    batch: usize,
) -> String {
    let prefix = format!(
        "server rejected batch {} ({chunk_len} row(s) in, {accepted} accepted so far) \
         with status {status}",
        chunk_no + 1
    );
    match ErrorEnvelope::parse(reply) {
        Ok(env) => {
            let mut msg = format!("{prefix}: {} ({})", env.message, env.code.as_str());
            if let Some(row) = env.row {
                // Row index within the batch -> row within the file.
                let file_row = chunk_no * batch + usize::try_from(row).unwrap_or(0);
                msg.push_str(&format!("; this is data row {file_row} of the file"));
            }
            if let Some(ms) = env.retry_after_ms {
                msg.push_str(&format!("; retry in {ms}ms"));
            }
            msg
        }
        Err(_) => format!("{prefix}: {}", reply.trim()),
    }
}

/// POST `body` to `/v1/ingest` and return (status, reply body).
fn post_ingest(addr: &str, body: &str) -> Result<(u16, String), CliError> {
    let connect_err = |e: std::io::Error| {
        CliError::Failed(format!("cannot reach server at {addr}: {e}"))
    };
    let mut stream = TcpStream::connect(addr).map_err(connect_err)?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();
    let request = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).map_err(connect_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(connect_err)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            CliError::Failed(format!("malformed reply from {addr}: {response:?}"))
        })?;
    let reply = response
        .split_once("\r\n\r\n")
        .map_or("", |(_, b)| b)
        .to_owned();
    Ok((status, reply))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
    use om_server::{Server, ServerConfig};

    use super::*;

    fn run_args(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut parsed = Parsed::parse(&argv).unwrap();
        let _ = parsed.command();
        let mut out = Vec::new();
        let r = run(&mut parsed, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_options() {
        let (r, text) = run_args(&["ingest", "--help"]);
        assert!(r.is_ok());
        assert!(text.contains("--addr"));
        assert!(text.contains("--batch"));
    }

    #[test]
    fn missing_file_operand_is_usage_error() {
        let (r, _) = run_args(&["ingest"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn unreadable_file_is_failure() {
        let (r, _) = run_args(&["ingest", "/nonexistent-rows.csv"]);
        assert!(matches!(r, Err(CliError::Failed(_))));
    }

    #[test]
    fn reject_message_names_file_row_from_envelope() {
        let reply = r#"{"error":{"code":"bad_row","message":"bad row 2: expected 13 fields, got 3","row":2}}"#;
        let msg = reject_message(400, reply, 3, 10, 30, 10);
        assert!(msg.contains("status 400"), "{msg}");
        assert!(msg.contains("bad_row"), "{msg}");
        assert!(msg.contains("data row 32 of the file"), "{msg}");

        let overload = r#"{"error":{"code":"overloaded","message":"deadline exceeded","retry_after_ms":2000}}"#;
        let msg = reject_message(503, overload, 0, 5, 0, 5);
        assert!(msg.contains("retry in 2000ms"), "{msg}");

        // Legacy/plain replies still surface verbatim.
        let msg = reject_message(500, "boom\n", 0, 1, 0, 1);
        assert!(msg.ends_with(": boom"), "{msg}");
    }

    #[test]
    fn posts_a_file_to_a_live_server_in_batches() {
        let (ds, _) = om_synth::paper_scenario(2_000, 5);
        let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
        let wal_dir = std::env::temp_dir().join(format!("om-cli-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let handle = om
            .start_ingest(&IngestConfig {
                seal_rows: 64,
                sync_writes: false,
                ..IngestConfig::new(&wal_dir)
            })
            .unwrap();
        let server = Server::start_with_ingest(
            Arc::clone(&om),
            ServerConfig::default(),
            Some(handle.clone()),
        )
        .unwrap();

        // A CSV file with a header plus five copies of the dataset's row
        // 0 expressed as discretized labels (quoted where needed).
        let dataset = om.dataset();
        let schema = dataset.schema();
        let header = (0..schema.n_attributes())
            .map(|i| schema.attribute(i).name().to_owned())
            .collect::<Vec<_>>()
            .join(",");
        let row = (0..schema.n_attributes())
            .map(|i| {
                let id = dataset.column(i).as_categorical().unwrap()[0];
                let label = schema.attribute(i).domain().label(id).unwrap();
                if label.contains(',') {
                    format!("\"{label}\"")
                } else {
                    label.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        let file =
            std::env::temp_dir().join(format!("om-cli-ingest-rows-{}.csv", std::process::id()));
        std::fs::write(&file, format!("{header}\n{row}\n{row}\n{row}\n{row}\n{row}\n")).unwrap();

        let addr = server.local_addr().to_string();
        let (r, text) = run_args(&[
            "ingest",
            file.to_str().unwrap(),
            "--addr",
            &addr,
            "--batch",
            "2",
            "--skip-header",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(
            text.contains("appended 5 row(s) in 3 batch(es)"),
            "{text}"
        );
        handle.flush().unwrap();
        assert_eq!(handle.stats().rows_total, 5);

        server.shutdown();
        handle.shutdown();
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}
