//! `opmap rules` — class association rule mining, including restricted
//! mining with fixed conditions.

use std::io::Write;

use om_car::{Condition, MinerConfig};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap rules — mine class association rules

OPTIONS:
  --data <csv>           input CSV (required)
  --class <column>       class column name (required)
  --min-support <s>      minimum rule support (default 0.01)
  --min-confidence <c>   minimum rule confidence (default 0.3)
  --max-conditions <k>   maximum conditions per rule (default 2)
  --fix <Attr=value>     restricted mining: fix this condition
                         (repeatable via comma: A=x,B=y)
  --top <n>              rules to print (default 20)
  --bins <k>             equal-frequency bins for continuous attributes";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let min_support = parsed.parse_or("min-support", 0.01f64)?;
    let min_confidence = parsed.parse_or("min-confidence", 0.3f64)?;
    let max_conditions = parsed.parse_or("max-conditions", 2usize)?;
    let fix = parsed.optional("fix");
    let top = parsed.parse_or("top", 20usize)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let config = MinerConfig {
        min_support,
        min_confidence,
        max_conditions,
        attrs: None,
    };
    let rules = match fix {
        None => om.mine_rules(&config)?,
        Some(spec) => {
            let mut fixed = Vec::new();
            for part in spec.split(',') {
                let (attr_name, value_label) = part.split_once('=').ok_or_else(|| {
                    CliError::Usage(format!("--fix expects Attr=value, got {part:?}"))
                })?;
                let attr = om.attr_index(attr_name.trim())?;
                let value = om.value_id(attr, value_label.trim())?;
                fixed.push(Condition::new(attr, value));
            }
            om.mine_restricted(&fixed, &config)?
        }
    };

    writeln!(
        out,
        "{} rules (showing up to {top}), sorted by confidence:",
        rules.len()
    )
    .ok();
    for r in rules.iter().take(top) {
        writeln!(out, "  {}", r.display(om.dataset().schema())).ok();
    }
    Ok(())
}
