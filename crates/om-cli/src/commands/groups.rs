//! `opmap groups` — compare two value *groups* of one attribute.

use std::io::Write;

use om_compare::report;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap groups — compare two merged groups of values (e.g. phone families)

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --attr <name>      attribute holding the values (required)
  --g1 <a,b,...>     first value group, comma separated (required)
  --g2 <c,d,...>     second value group, comma separated (required)
  --target <label>   class of interest (required)
  --top <n>          attributes to print (default 10)
  --bins <k>         equal-frequency bins for continuous attributes";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let attr = parsed.required("attr")?;
    let g1_raw = parsed.required("g1")?;
    let g2_raw = parsed.required("g2")?;
    let target = parsed.required("target")?;
    let top = parsed.parse_or("top", 10usize)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let split = |raw: &str| -> Vec<String> {
        raw.split(',').map(|s| s.trim().to_owned()).collect()
    };
    let g1 = split(&g1_raw);
    let g2 = split(&g2_raw);
    let g1_refs: Vec<&str> = g1.iter().map(String::as_str).collect();
    let g2_refs: Vec<&str> = g2.iter().map(String::as_str).collect();
    let result = om.compare_groups_by_name(&attr, &g1_refs, &g2_refs, &target)?;
    writeln!(out, "{}", report::render(&result, top)).ok();
    writeln!(out, "{}", om.comparison_view(&result)).ok();
    Ok(())
}
