//! `opmap compare` — the automated comparison (Figs. 7/8), the paper's
//! headline feature.

use std::io::Write;

use om_compare::{report, CompareConfig, IntervalMethod};
use om_viz::compare_view::{render_property_view, CompareViewOptions};

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap compare — rank attributes distinguishing two values on a class

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --attr <name>      attribute holding the two values (required)
  --v1 <label>       first value, e.g. ph1 (required)
  --v2 <label>       second value, e.g. ph2 (required)
  --target <label>   class of interest, e.g. dropped (required)
  --top <n>          attributes to print (default 10)
  --level <p>        CI level for the adjustment (default 0.95)
  --tau <t>          property-attribute threshold (default 0.9)
  --min-support <n>  minimum records per sub-population (default 30)
  --format <f>       text (default) or json
  --bins <k>         equal-frequency bins for continuous attributes
  --budget-ms <ms>   abort if the comparison runs longer (default: no limit)
  --no-ci            disable the confidence-interval adjustment";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let attr = parsed.required("attr")?;
    let v1 = parsed.required("v1")?;
    let v2 = parsed.required("v2")?;
    let target = parsed.required("target")?;
    let top = parsed.parse_or("top", 10usize)?;
    let level = parsed.parse_or("level", 0.95f64)?;
    let tau = parsed.parse_or("tau", 0.9f64)?;
    let min_support = parsed.parse_or("min-support", 30u64)?;
    let budget = super::budget_from(parsed)?;
    let format = parsed.optional("format").unwrap_or_else(|| "text".into());
    let ds = super::load_dataset(parsed)?;
    let mut om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    // Rebuild the engine's compare config from the CLI knobs.
    let interval = if parsed.switch("no-ci") {
        IntervalMethod::None
    } else {
        IntervalMethod::Wald(level)
    };
    let compare = CompareConfig {
        interval,
        property_tau: tau,
        min_sub_population: min_support,
    };
    om = om.with_compare_config(compare);

    let result = om.run_compare_by_name(&attr, &v1, &v2, &target, om.exec_ctx(Some(&budget)))?;
    if format == "json" {
        writeln!(out, "{}", om_compare::json::to_json(&result)).ok();
        return Ok(());
    }
    if format != "text" {
        return Err(crate::CliError::Usage(format!(
            "unknown format {format:?}; expected text or json"
        )));
    }
    writeln!(out, "{}", report::render(&result, top)).ok();
    writeln!(out, "{}", om.comparison_view(&result)).ok();
    for p in &result.property_attrs {
        writeln!(
            out,
            "{}",
            render_property_view(&result, p, &CompareViewOptions::default())
        )
        .ok();
    }
    Ok(())
}
