//! One module per `opmap` subcommand.

pub mod cluster;
pub mod compare;
pub mod describe;
pub mod detail;
pub mod drill;
pub mod explore;
pub mod shell;
pub mod generate;
pub mod gi;
pub mod groups;
pub mod heatmap;
pub mod ingest;
pub mod overview;
pub mod report;
pub mod rules;
pub mod scan;
pub mod serve;

use std::io::BufReader;

use om_data::csv::{read_csv, CsvOptions};
use om_data::Dataset;
use om_engine::{EngineConfig, OpportunityMap};

use crate::args::Parsed;
use crate::CliError;

/// Shared `--data <csv> --class <column>` loading used by every analysis
/// command.
pub(crate) fn load_dataset(parsed: &mut Parsed) -> Result<Dataset, CliError> {
    let path = parsed.required("data")?;
    let class = parsed.required("class")?;
    let file = std::fs::File::open(&path)
        .map_err(|e| CliError::Failed(format!("cannot open {path:?}: {e}")))?;
    let ds = read_csv(BufReader::new(file), &CsvOptions::new(class))?;
    if ds.is_empty() {
        return Err(CliError::Failed(format!("{path:?} contains no records")));
    }
    Ok(ds)
}

/// Shared engine construction with the `--bins <k>` discretization knob.
pub(crate) fn build_engine(parsed: &mut Parsed, ds: Dataset) -> Result<OpportunityMap, CliError> {
    let bins = parsed.parse_or("bins", 0usize)?;
    // `--exec-workers 1` is the serial path; 0 means one shard per core.
    let exec_workers = parsed.parse_or("exec-workers", 1usize)?;
    let mut config = EngineConfig::default();
    if bins > 0 {
        config.discretization = om_discretize::Method::EqualFrequency(bins);
    }
    config.exec = om_engine::ExecConfig { workers: exec_workers };
    Ok(OpportunityMap::build(ds, config)?)
}

/// Shared `--budget-ms <ms>` knob: a cooperative deadline for engine
/// work; 0 or absent means no limit.
pub(crate) fn budget_from(parsed: &mut Parsed) -> Result<om_engine::Budget, CliError> {
    let ms = parsed.parse_or("budget-ms", 0u64)?;
    Ok(if ms == 0 {
        om_engine::Budget::unlimited()
    } else {
        om_engine::Budget::with_timeout(std::time::Duration::from_millis(ms))
    })
}
