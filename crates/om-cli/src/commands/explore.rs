//! `opmap explore` — smart drill-down: top-k summaries by weighted
//! coverage, optionally split across a comparison's two populations.

use std::io::Write;

use om_engine::{CompareNames, ExploreQuery, ExploreReport};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap explore — automated top-k exploration of the rule cube

Picks the k condition summaries that together cover the most records,
weighting each summary by its specificity (greedy weighted coverage).
With --attr/--v1/--v2/--target it instead drills both sub-populations
of that comparison and interleaves summaries by distinguishing mass.

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --k <n>            summaries to pick (default 5)
  --max-conds <n>    conditions per summary, 1 or 2 (default 2)
  --slice <a=v>      restrict exploration to records with a=v
  --attr <name>      comparison attribute (enables compare mode)
  --v1 <label>       first compared value
  --v2 <label>       second compared value
  --target <label>   class of interest for the comparison
  --bins <k>         equal-frequency bins for continuous attributes
  --budget-ms <ms>   degrade to a partial answer past this deadline";

fn parse_slice(spec: &str) -> Result<(String, String), CliError> {
    spec.split_once('=')
        .map(|(a, v)| (a.to_owned(), v.to_owned()))
        .ok_or_else(|| CliError::Usage(format!("--slice wants attr=value, got {spec:?}")))
}

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let k = parsed.parse_or("k", 5usize)?;
    let max_conds = parsed.optional("max-conds");
    let slice = parsed.optional("slice");
    let attr = parsed.optional("attr");
    let budget = super::budget_from(parsed)?;
    let compare = if let Some(attr) = attr {
        Some(CompareNames {
            attr,
            value_1: parsed.required("v1")?,
            value_2: parsed.required("v2")?,
            class: parsed.required("target")?,
        })
    } else {
        None
    };
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let query = ExploreQuery {
        slice: slice.as_deref().map(parse_slice).transpose()?.into_iter().collect(),
        k,
        max_conditions: max_conds
            .as_deref()
            .map(str::parse)
            .transpose()
            .map_err(|e| CliError::Usage(format!("--max-conds: {e}")))?,
        compare,
    };
    let report = om.run_explore(&query, om.exec_ctx(Some(&budget)))?;
    render(&report, k, out);
    Ok(())
}

fn render(report: &ExploreReport, k: usize, out: &mut dyn Write) {
    if let Some(meta) = &report.compare {
        writeln!(
            out,
            "exploring both sides of {}: {} vs {} (class {})",
            meta.attr, meta.value_1, meta.value_2, meta.class
        )
        .ok();
    }
    writeln!(
        out,
        "{} record(s) in scope; {} summaries cover weighted mass {} in {} step(s)",
        report.universe,
        report.summaries.len(),
        report.covered,
        report.steps
    )
    .ok();
    for (rank, s) in report.summaries.iter().enumerate() {
        let conds: Vec<String> = s
            .conds
            .iter()
            .map(|c| format!("{}={}", c.attr, c.value))
            .collect();
        let mut line = format!(
            "{:>3}. {}  support={}  coverage={}",
            rank + 1,
            conds.join(" AND "),
            s.support,
            s.coverage
        );
        if let Some(side) = s.side {
            let meta = report.compare.as_ref();
            let label = meta.map_or_else(
                || side.to_string(),
                |m| {
                    if side == 0 {
                        m.value_1.clone()
                    } else {
                        m.value_2.clone()
                    }
                },
            );
            line.push_str(&format!("  side={label}"));
        }
        if let Some(mass) = s.mass {
            line.push_str(&format!("  mass={mass:.4}"));
        }
        writeln!(out, "{line}").ok();
        let confs: Vec<String> = report
            .classes
            .iter()
            .zip(&s.confidences)
            .map(|(c, p)| format!("{c}={:.3}", p))
            .collect();
        writeln!(out, "     {}", confs.join("  ")).ok();
    }
    if report.truncated {
        writeln!(
            out,
            "note: budget exhausted — partial answer ({} of {k} requested)",
            report.summaries.len()
        )
        .ok();
    }
}
