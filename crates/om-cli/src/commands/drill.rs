//! `opmap drill` — automated drill-down comparison.

use std::io::Write;

use om_compare::{report, DrillConfig};

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap drill — compare, then recurse into each level's top finding

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --attr <name>      attribute holding the two values (required)
  --v1 <label>       first value (required)
  --v2 <label>       second value (required)
  --target <label>   class of interest (required)
  --depth <n>        maximum drill depth (default 2)
  --floor <f>        stop when top normalized score < f (default 0.05)
  --bins <k>         equal-frequency bins for continuous attributes
  --budget-ms <ms>   abort if the drill-down runs longer (default: no limit)";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let attr = parsed.required("attr")?;
    let v1 = parsed.required("v1")?;
    let v2 = parsed.required("v2")?;
    let target = parsed.required("target")?;
    let depth = parsed.parse_or("depth", 2usize)?;
    let floor = parsed.parse_or("floor", 0.05f64)?;
    let budget = super::budget_from(parsed)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let config = DrillConfig {
        max_depth: depth,
        min_normalized_score: floor,
        ..DrillConfig::default()
    };
    let levels =
        om.run_drill_down_by_name(&attr, &v1, &v2, &target, &config, om.exec_ctx(Some(&budget)))?;
    for (i, level) in levels.iter().enumerate() {
        if level.conditions.is_empty() {
            writeln!(out, "== level {i}: unconditioned ==").ok();
        } else {
            writeln!(
                out,
                "== level {i}: conditioned on {} ==",
                level.condition_labels.join(" AND ")
            )
            .ok();
        }
        writeln!(out, "{}", report::render(&level.result, 5)).ok();
    }
    writeln!(out, "drill-down finished after {} level(s)", levels.len()).ok();
    Ok(())
}
