//! `opmap generate` — write a synthetic dataset to CSV.

use std::io::Write;

use om_data::csv::write_csv;
use om_synth::domains::{manufacturing_quality, network_diagnostics};
use om_synth::{generate_scaleup, paper_scenario, ScaleUpConfig};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap generate — generate a synthetic dataset to CSV

OPTIONS:
  --domain <d>     call-log | network | manufacturing | scaleup (default call-log)
  --records <n>    number of records (default 50000)
  --seed <s>       RNG seed (default 42)
  --attrs <n>      attributes, scaleup domain only (default 40)
  --out <path>     output CSV path (required)

The call-log domain plants the paper's running example: phone 2 drops
dramatically more often in the morning, NetworkLoad=high hurts every phone
equally, and PhoneHardwareVersion is a property attribute.";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let domain = parsed.optional("domain").unwrap_or_else(|| "call-log".into());
    let records = parsed.parse_or("records", 50_000usize)?;
    let seed = parsed.parse_or("seed", 42u64)?;
    let n_attrs = parsed.parse_or("attrs", 40usize)?;
    let path = parsed.required("out")?;
    parsed.reject_unknown()?;

    let (ds, note) = match domain.as_str() {
        "call-log" => {
            let (ds, truth) = paper_scenario(records, seed);
            (
                ds,
                format!(
                    "planted cause: {} = {} (compare {} {} vs {} on class {})",
                    truth.expected_top_attr,
                    truth.expected_top_value,
                    truth.compare_attr,
                    truth.baseline_value,
                    truth.target_value,
                    truth.target_class
                ),
            )
        }
        "network" => {
            let (ds, truth) = network_diagnostics(records, seed);
            (
                ds,
                format!(
                    "planted cause: {} = {}",
                    truth.expected_top_attr, truth.expected_top_value
                ),
            )
        }
        "manufacturing" => {
            let (ds, truth) = manufacturing_quality(records, seed);
            (
                ds,
                format!(
                    "planted cause: {} = {}",
                    truth.expected_top_attr, truth.expected_top_value
                ),
            )
        }
        "scaleup" => {
            let ds = generate_scaleup(&ScaleUpConfig {
                n_attrs,
                n_records: records,
                seed,
                ..ScaleUpConfig::default()
            });
            (ds, format!("{n_attrs} generic attributes"))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown domain {other:?}; expected call-log | network | manufacturing | scaleup"
            )))
        }
    };

    let file = std::fs::File::create(&path)
        .map_err(|e| CliError::Failed(format!("cannot create {path:?}: {e}")))?;
    let mut writer = std::io::BufWriter::new(file);
    write_csv(&ds, &mut writer, ',')?;
    writer
        .flush()
        .map_err(|e| CliError::Failed(format!("write failed: {e}")))?;

    writeln!(
        out,
        "wrote {} records x {} attributes to {path} ({note}); class column {:?}",
        ds.n_rows(),
        ds.schema().n_attributes(),
        ds.schema().class().name()
    )
    .ok();
    Ok(())
}
