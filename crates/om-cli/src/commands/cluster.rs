//! `opmap cluster` — spawn a loopback sharded cluster and drive load.
//!
//! The harness provisions a cluster end to end, the same way a real
//! deployment would:
//!
//! 1. build the prepared (discretized) dataset once,
//! 2. split it into hash-routed partitions ([`om_cluster::partition_dataset`]),
//! 3. spawn one `opmap serve --data-bin <part>` **process** per shard on
//!    an ephemeral port (scraping the announced address),
//! 4. run the coordinator in-process over those shards,
//! 5. drive a deterministic mix of compare / drill / gi / slice / batch
//!    (and, with `--ingest`, live row) requests at the coordinator.
//!
//! `--verify` additionally runs a single-node server over the *union*
//! of the partitions and asserts every coordinator response is
//! byte-identical to the single node's — the cluster's core contract.
//! `--chaos` kills one shard mid-load, asserts the typed 503 partial
//! failure names it, then restarts the shard (same partition, same WAL)
//! and re-joins it through a fresh coordinator epoch.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_cluster::{partition_dataset, ClusterConfig, Coordinator, ShardClient};
use om_data::persist::encode_dataset;
use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
use om_server::{Server, ServerConfig};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap cluster — loopback sharded cluster: N shard processes + coordinator

Partitions a synthetic dataset across N `opmap serve` shard processes by
the stable row hash, runs the merging coordinator in-process, and drives
a deterministic mixed workload (compare, drill, gi, slice, batch, and —
with --ingest — live rows) at the coordinator's /v1/* API.

OPTIONS:
  --shards <n>       Shard processes to spawn [4]
  --records <n>      Synthetic dataset size [20000]
  --seed <n>         Synthetic dataset seed [7]
  --requests <n>     Mixed requests to drive (100000+ for a load run) [5000]
  --verify           Also run a single-node server over the union and
                     assert every response is byte-identical
  --chaos            Kill one shard mid-load (assert the typed 503 names
                     it), restart it from its WAL, re-join and continue
  --ingest           Give every shard a WAL and route live rows by hash
  --bench-out <file> Write machine-readable results JSON (throughput,
                     latency p50/p95/p99, bytes)

EXIT STATUS: non-zero if any verification or chaos assertion fails.";

/// One spawned `opmap serve` shard process.
struct Shard {
    child: Child,
    addr: String,
    bin: PathBuf,
    wal: Option<PathBuf>,
}

impl Shard {
    /// Spawn `opmap serve --data-bin <bin> --addr 127.0.0.1:0` and
    /// scrape the announced ephemeral address from its stdout.
    fn spawn(bin: &Path, wal: Option<&Path>) -> Result<Shard, CliError> {
        let exe = std::env::current_exe()
            .map_err(|e| CliError::Failed(format!("cannot locate own executable: {e}")))?;
        let mut cmd = Command::new(exe);
        cmd.arg("serve")
            .arg("--data-bin")
            .arg(bin)
            .args(["--addr", "127.0.0.1:0", "--budget-ms", "0", "--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(dir) = wal {
            cmd.arg("--ingest-wal").arg(dir);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| CliError::Failed(format!("cannot spawn shard process: {e}")))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| CliError::Failed("shard stdout not captured".into()))?;
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| CliError::Failed(format!("cannot read shard stdout: {e}")))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CliError::Failed(
                    "shard process exited before announcing its port".into(),
                ));
            }
            if let Some(rest) = line.trim().strip_prefix("om-server listening on http://") {
                break rest.to_owned();
            }
        };
        // Keep draining so the child never blocks on a full stdout pipe.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Ok(Shard {
            child,
            addr,
            bin: bin.to_path_buf(),
            wal: wal.map(Path::to_path_buf),
        })
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The deterministic request mix: `(path, body, is_ingest)` for slot `i`.
fn request_for(i: usize, ingest_rows: &[Vec<String>]) -> (String, String, bool) {
    let compare = |v1: &str, v2: &str| {
        om_api::CompareRequest {
            attr: "PhoneModel".into(),
            v1: v1.into(),
            v2: v2.into(),
            class: "dropped".into(),
        }
    };
    let drill = |path: Vec<om_api::PathStep>| om_api::DrillRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
        depth: Some(2),
        min_score: None,
        path,
    };
    match i % 10 {
        0 => ("/v1/compare".into(), compare("ph1", "ph2").encode(), false),
        1 => ("/v1/compare".into(), compare("ph1", "ph3").encode(), false),
        2 => ("/v1/compare".into(), compare("ph3", "ph4").encode(), false),
        3 => ("/v1/compare".into(), compare("ph2", "ph4").encode(), false),
        4 => ("/v1/drill".into(), drill(Vec::new()).encode(), false),
        5 => (
            "/v1/drill".into(),
            drill(vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }])
            .encode(),
            false,
        ),
        6 => (
            "/v1/gi".into(),
            om_api::GiRequest { top: Some(5) }.encode(),
            false,
        ),
        7 => (
            "/v1/cube/slice".into(),
            om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
            false,
        ),
        8 => (
            "/v1/compare/batch".into(),
            om_api::BatchRequest {
                items: vec![
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph1", "ph2"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph2", "ph1"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Drill {
                        req: drill(vec![om_api::PathStep {
                            attr: "TimeOfCall".into(),
                            value: "evening".into(),
                        }]),
                        budget_ms: None,
                    },
                ],
            }
            .encode(),
            false,
        ),
        _ if !ingest_rows.is_empty() => {
            // Rotate through distinct 4-row windows of the sample rows.
            let start = (i / 10 * 4) % ingest_rows.len();
            let rows: Vec<Vec<String>> = (0..4)
                .map(|k| ingest_rows[(start + k) % ingest_rows.len()].clone())
                .collect();
            (
                "/v1/ingest".into(),
                om_api::IngestRequest { rows }.encode(),
                true,
            )
        }
        _ => ("/v1/compare".into(), compare("ph1", "ph4").encode(), false),
    }
}

/// Extract verbatim field labels of the first `n` rows of a prepared
/// dataset, for replay through live ingestion.
fn sample_rows(ds: &om_data::Dataset, n: usize) -> Result<Vec<Vec<String>>, CliError> {
    let schema = ds.schema();
    let mut rows = Vec::with_capacity(n.min(ds.n_rows()));
    for r in 0..n.min(ds.n_rows()) {
        let mut row = Vec::with_capacity(schema.n_attributes());
        for a in 0..schema.n_attributes() {
            let ids = ds.categorical(a)?;
            let label = ids
                .get(r)
                .and_then(|&id| schema.attribute(a).domain().label(id))
                .ok_or_else(|| CliError::Failed(format!("row {r} attr {a} has no label")))?;
            row.push(label.to_owned());
        }
        rows.push(row);
    }
    Ok(rows)
}

fn percentile(sorted_us: &[u128], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

/// Entry point for `opmap cluster`.
///
/// # Errors
/// Usage errors for bad flags; failures if a shard cannot start, a
/// verification diverges, or a chaos assertion fails.
pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let n_shards = parsed.parse_or("shards", 4usize)?;
    if n_shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let records = parsed.parse_or("records", 20_000usize)?;
    let seed = parsed.parse_or("seed", 7u64)?;
    let requests = parsed.parse_or("requests", 5_000usize)?;
    let bench_out = parsed.optional("bench-out");
    let verify = parsed.switch("verify");
    let chaos = parsed.switch("chaos");
    let ingest = parsed.switch("ingest");
    parsed.reject_unknown()?;

    let work = std::env::temp_dir().join(format!(
        "om-cluster-run-{}-{seed}-{n_shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work)
        .map_err(|e| CliError::Failed(format!("cannot create {work:?}: {e}")))?;

    let result = run_inner(
        out, n_shards, records, seed, requests, verify, chaos, ingest, &work, bench_out,
    );
    let _ = std::fs::remove_dir_all(&work);
    result
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_inner(
    out: &mut dyn Write,
    n_shards: usize,
    records: usize,
    seed: u64,
    requests: usize,
    verify: bool,
    chaos: bool,
    ingest: bool,
    work: &Path,
    bench_out: Option<String>,
) -> CliResult {
    // 1. One centrally-prepared dataset; the union engine doubles as
    //    the single-node verification twin.
    writeln!(out, "building {records}-record dataset (seed {seed})…").ok();
    let ds = om_synth::paper_scenario(records, seed).0;
    let twin = Arc::new(OpportunityMap::build(ds, EngineConfig::default())?);
    let ingest_rows = sample_rows(twin.dataset(), 256)?;

    // 2. Hash-partition and provision one binary partition per shard.
    let parts = partition_dataset(twin.dataset(), n_shards)?;
    let mut bins = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let path = work.join(format!("part-{i}.bin"));
        std::fs::write(&path, encode_dataset(part))
            .map_err(|e| CliError::Failed(format!("cannot write {path:?}: {e}")))?;
        bins.push(path);
    }

    // 3. Spawn the shard processes on ephemeral ports.
    let mut shards = Vec::new();
    for (i, bin) in bins.iter().enumerate() {
        let wal = ingest.then(|| work.join(format!("wal-{i}")));
        let shard = Shard::spawn(bin, wal.as_deref())?;
        writeln!(
            out,
            "shard {i}: pid {} on http://{} ({} rows)",
            shard.child.id(),
            shard.addr,
            parts[i].n_rows()
        )
        .ok();
        shards.push(shard);
    }

    // 4. Coordinator in-process, serving the same typed /v1 API.
    let server_config = || ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        engine_budget: None,
        ..ServerConfig::default()
    };
    let connect = |shards: &[Shard]| -> Result<Server, CliError> {
        let coordinator = Coordinator::connect(ClusterConfig {
            shard_addrs: shards.iter().map(|s| s.addr.clone()).collect(),
            ingest,
            ..ClusterConfig::default()
        })
        .map_err(|e| CliError::Failed(format!("coordinator cannot join cluster: {e}")))?;
        Server::start_custom(Arc::new(coordinator), server_config())
            .map_err(|e| CliError::Failed(format!("cannot start coordinator: {e}")))
    };
    let mut coord_server = connect(&shards)?;
    writeln!(
        out,
        "coordinator on http://{} over {n_shards} shard(s)",
        coord_server.local_addr()
    )
    .ok();

    // 5. Optional single-node twin over the union, for byte-identity.
    let twin_ingest = (verify && ingest)
        .then(|| {
            twin.start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(work.join("wal-single"))
            })
        })
        .transpose()
        .map_err(|e| CliError::Failed(format!("cannot start twin ingestion: {e}")))?;
    let twin_server = verify
        .then(|| {
            Server::start_with_ingest(Arc::clone(&twin), server_config(), twin_ingest.clone())
        })
        .transpose()
        .map_err(|e| CliError::Failed(format!("cannot start single-node twin: {e}")))?;

    let timeout = Duration::from_secs(60);
    let mut coord_client = ShardClient::new(coord_server.local_addr().to_string(), timeout);
    let twin_client = twin_server
        .as_ref()
        .map(|s| ShardClient::new(s.local_addr().to_string(), timeout));

    // 6. Drive the mixed load.
    let chaos_at = requests / 2;
    let mut latencies_us: Vec<u128> = Vec::with_capacity(requests);
    let mut bytes_total: u64 = 0;
    let mut verified: u64 = 0;
    let started = Instant::now();
    for i in 0..requests {
        if chaos && i == chaos_at {
            chaos_round(out, &mut shards, &mut coord_server, &mut coord_client, &connect)?;
        }
        let (path, body, is_ingest) = request_for(i, if ingest { &ingest_rows } else { &[] });
        let t = Instant::now();
        let (status, response) = coord_client
            .post(&path, &body)
            .map_err(|e| CliError::Failed(format!("request {i} ({path}) failed: {e}")))?;
        latencies_us.push(t.elapsed().as_micros());
        bytes_total += response.len() as u64;
        if status != 200 {
            return Err(CliError::Failed(format!(
                "request {i} ({path}) answered HTTP {status}: {response}"
            )));
        }
        if let Some(tc) = &twin_client {
            let (ts, tr) = tc
                .post(&path, &body)
                .map_err(|e| CliError::Failed(format!("twin request {i} ({path}) failed: {e}")))?;
            if is_ingest {
                // Acks agree on counts; the generation counter is
                // per-shard and intentionally not byte-compared.
                let ca = om_api::IngestResponse::parse(&response)
                    .map_err(|e| CliError::Failed(format!("bad cluster ack: {e}")))?;
                let ta = om_api::IngestResponse::parse(&tr)
                    .map_err(|e| CliError::Failed(format!("bad twin ack: {e}")))?;
                if (ca.accepted, ca.rows_total) != (ta.accepted, ta.rows_total) {
                    return Err(CliError::Failed(format!(
                        "ingest divergence at request {i}: cluster accepted {}/{}, twin {}/{}",
                        ca.accepted, ca.rows_total, ta.accepted, ta.rows_total
                    )));
                }
            } else if (status, response.as_str()) != (ts, tr.as_str()) {
                return Err(CliError::Failed(format!(
                    "byte-identity violated at request {i} ({path}):\n cluster: HTTP {status}: {response}\n single:  HTTP {ts}: {tr}"
                )));
            }
            verified += 1;
        }
    }
    let elapsed = started.elapsed();

    // 7. With live ingestion: seal and absorb everywhere, then prove the
    //    merged store still matches the single node (epoch re-pin).
    if ingest && verify {
        for shard in &shards {
            ShardClient::new(shard.addr.clone(), timeout)
                .expect_ok("POST", "/internal/flush", Some("{}"))
                .map_err(|e| CliError::Failed(format!("shard flush failed: {e}")))?;
        }
        if let Some(handle) = &twin_ingest {
            handle
                .flush()
                .map_err(|e| CliError::Failed(format!("twin flush failed: {e}")))?;
        }
        let (path, body, _) = request_for(0, &[]);
        let cluster = coord_client
            .post(&path, &body)
            .map_err(|e| CliError::Failed(format!("post-flush request failed: {e}")))?;
        let single = twin_client
            .as_ref()
            .map(|tc| tc.post(&path, &body))
            .transpose()
            .map_err(|e| CliError::Failed(format!("post-flush twin request failed: {e}")))?;
        if let Some(single) = single {
            if cluster != single {
                return Err(CliError::Failed(format!(
                    "post-ingest divergence: cluster {cluster:?} vs single {single:?}"
                )));
            }
            verified += 1;
        }
        writeln!(out, "post-ingest flush: merged store still byte-identical").ok();
    }

    // 8. Report.
    latencies_us.sort_unstable();
    let throughput = requests as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.95),
        percentile(&latencies_us, 0.99),
    );
    writeln!(
        out,
        "drove {requests} request(s) in {:.2}s: {throughput:.0} req/s, \
         latency p50 {p50:.2}ms p95 {p95:.2}ms p99 {p99:.2}ms, {bytes_total} byte(s)",
        elapsed.as_secs_f64()
    )
    .ok();
    if verify {
        writeln!(
            out,
            "verify: {verified} response(s) byte-identical to the single-node twin"
        )
        .ok();
    }

    if let Some(path) = bench_out {
        let json = format!(
            "{{\"bench\":\"cluster_loopback\",\"shards\":{n_shards},\"records\":{records},\
             \"requests\":{requests},\"ingest\":{ingest},\"chaos\":{chaos},\
             \"verified_responses\":{verified},\"throughput_rps\":{throughput:.2},\
             \"latency_ms\":{{\"p50\":{p50:.3},\"p95\":{p95:.3},\"p99\":{p99:.3}}},\
             \"bytes_total\":{bytes_total}}}\n"
        );
        std::fs::write(&path, json)
            .map_err(|e| CliError::Failed(format!("cannot write {path:?}: {e}")))?;
        writeln!(out, "bench results written to {path}").ok();
    }

    if let Some(server) = twin_server {
        server.shutdown();
    }
    if let Some(handle) = twin_ingest {
        handle.shutdown();
    }
    coord_server.shutdown();
    Ok(())
}

/// Kill one shard, assert the typed partial failure names it, restart
/// the shard from its partition + WAL, and re-join it via a fresh
/// coordinator epoch.
fn chaos_round(
    out: &mut dyn Write,
    shards: &mut [Shard],
    coord_server: &mut Server,
    coord_client: &mut ShardClient,
    connect: &dyn Fn(&[Shard]) -> Result<Server, CliError>,
) -> CliResult {
    let victim = shards.len() - 1;
    writeln!(out, "chaos: killing shard {victim} (pid {})", shards[victim].child.id()).ok();
    shards[victim].kill();

    let probe = om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
    }
    .encode();
    let (status, body) = coord_client
        .post("/v1/compare", &probe)
        .map_err(|e| CliError::Failed(format!("chaos probe failed to send: {e}")))?;
    if status != 503 {
        return Err(CliError::Failed(format!(
            "chaos: degraded cluster answered HTTP {status} (want 503): {body}"
        )));
    }
    let env = om_api::ErrorEnvelope::parse(&body)
        .map_err(|e| CliError::Failed(format!("chaos: 503 body is not an error envelope: {e}")))?;
    if !env.message.contains(&format!("shard {victim}")) {
        return Err(CliError::Failed(format!(
            "chaos: envelope does not name shard {victim}: {}",
            env.message
        )));
    }
    writeln!(out, "chaos: typed 503 names the lost shard: {}", env.message).ok();

    let (bin, wal) = (shards[victim].bin.clone(), shards[victim].wal.clone());
    shards[victim] = Shard::spawn(&bin, wal.as_deref())?;
    writeln!(
        out,
        "chaos: shard {victim} restarted on http://{} (WAL replayed)",
        shards[victim].addr
    )
    .ok();

    // Re-join: a fresh coordinator pins a fresh epoch over the new
    // topology; the old one is torn down.
    let new_server = connect(shards)?;
    let old = std::mem::replace(coord_server, new_server);
    old.shutdown();
    *coord_client = ShardClient::new(coord_server.local_addr().to_string(), Duration::from_secs(60));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut parsed = Parsed::parse(&argv).unwrap();
        let _ = parsed.command();
        let mut out = Vec::new();
        let r = run(&mut parsed, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_options() {
        let (r, text) = run_args(&["cluster", "--help"]);
        assert!(r.is_ok());
        assert!(text.contains("--shards"));
        assert!(text.contains("--verify"));
    }

    #[test]
    fn zero_shards_is_usage_error() {
        let (r, _) = run_args(&["cluster", "--shards", "0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_option_is_usage_error() {
        let (r, _) = run_args(&["cluster", "--typo", "x"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn percentiles_interpolate_sanely() {
        let us: Vec<u128> = (1..=100).map(|v| v * 1000).collect();
        assert!((percentile(&us, 0.50) - 50.0).abs() < 2.0);
        assert!((percentile(&us, 0.99) - 99.0).abs() < 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn request_mix_is_deterministic_and_valid_json() {
        let rows = vec![vec!["a".to_owned(); 3]];
        for i in 0..20 {
            let (path, body, _) = request_for(i, &rows);
            assert!(path.starts_with("/v1/"), "{path}");
            assert_eq!(request_for(i, &rows).1, body);
        }
        // Without ingest rows, slot 9 degrades to a compare.
        let (path, _, is_ingest) = request_for(9, &[]);
        assert_eq!(path, "/v1/compare");
        assert!(!is_ingest);
        let (path, _, is_ingest) = request_for(9, &rows);
        assert_eq!(path, "/v1/ingest");
        assert!(is_ingest);
    }
}
