//! `opmap cluster` — spawn a loopback sharded cluster and drive load.
//!
//! The harness provisions a cluster end to end, the same way a real
//! deployment would:
//!
//! 1. build the prepared (discretized) dataset once,
//! 2. split it into hash-routed partitions ([`om_cluster::partition_dataset`]),
//! 3. spawn `--replicas` `opmap serve --data-bin <part>` **processes**
//!    per partition on ephemeral ports (scraping the announced address;
//!    replicas of a partition share the partition bytes but own their
//!    WAL),
//! 4. run the coordinator in-process over those shards,
//! 5. drive a deterministic mix of compare / drill / gi / slice / batch
//!    (and, with `--ingest`, live row) requests at the coordinator.
//!
//! `--verify` additionally runs a single-node server over the *union*
//! of the partitions and asserts every coordinator response is
//! byte-identical to the single node's — the cluster's core contract.
//!
//! `--chaos` exercises the fault-tolerance machinery end to end. With
//! replication it kills one replica of **every** partition mid-load and
//! the load must keep answering 200 (retry, breaker, failover); the
//! victims are later respawned **on their original ports** (std's
//! listener sets `SO_REUSEADDR` on Unix, so the fixed topology rebinds
//! cleanly) and re-join through breaker probes and catch-up replay.
//! After the load, it kills *all* replicas of the last partition and
//! asserts both failure shapes: the default all-or-nothing typed `503`
//! naming the lost partition, and — when more than one partition
//! exists — the `allow_partial` degraded `200` carrying a coverage
//! envelope.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_cluster::{partition_dataset, replica_set, ClusterConfig, Coordinator, ShardClient};
use om_data::persist::encode_dataset;
use om_engine::{EngineConfig, IngestConfig, IngestHandle, OpportunityMap};
use om_server::{Server, ServerConfig};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap cluster — loopback sharded cluster: shard processes + coordinator

Partitions a synthetic dataset across `--shards` partitions by the
stable row hash, spawns `--replicas` `opmap serve` processes per
partition, runs the merging coordinator in-process, and drives a
deterministic mixed workload (compare, drill, gi, slice, batch, and —
with --ingest — live rows) at the coordinator's /v1/* API.

OPTIONS:
  --shards <n>       Partitions to spawn [4]
  --replicas <r>     Shard processes (replicas) per partition [1]
  --records <n>      Synthetic dataset size [20000]
  --seed <n>         Synthetic dataset seed [7]
  --requests <n>     Mixed requests to drive (100000+ for a load run) [5000]
  --seal-rows <n>    Ingested rows between synchronized seal rounds: the
                     harness seals every shard and the verification twin
                     together once this many rows have landed (a shard
                     never seals on its own — independent seal points
                     would make mid-load visibility diverge from the
                     single-node twin) [4096]
  --verify           Also run a single-node server over the union and
                     assert every response is byte-identical
  --chaos            Kill one replica per partition mid-load (the load
                     must keep answering 200 at --replicas 2+), respawn
                     them on their original ports and re-join; then kill
                     a whole partition and assert the typed 503 and the
                     allow_partial coverage envelope
  --ingest           Give every shard a WAL and route live rows by hash
  --bench-out <file> Write machine-readable results JSON (throughput,
                     latency p50/p95/p99, bytes)

EXIT STATUS: non-zero if any verification or chaos assertion fails.";

/// One spawned `opmap serve` shard process.
struct Shard {
    child: Child,
    addr: String,
    bin: PathBuf,
    wal: Option<PathBuf>,
    seal_rows: usize,
}

impl Shard {
    /// Spawn `opmap serve --data-bin <bin>` and scrape the announced
    /// address. With `pin: None` the shard binds an ephemeral port;
    /// with `pin: Some(addr)` it must rebind exactly that address (a
    /// chaos respawn keeping the coordinator's topology fixed).
    fn spawn(
        bin: &Path,
        wal: Option<&Path>,
        pin: Option<&str>,
        seal_rows: usize,
    ) -> Result<Shard, CliError> {
        let exe = std::env::current_exe()
            .map_err(|e| CliError::Failed(format!("cannot locate own executable: {e}")))?;
        let mut cmd = Command::new(exe);
        cmd.arg("serve")
            .arg("--data-bin")
            .arg(bin)
            .args(["--addr", pin.unwrap_or("127.0.0.1:0")])
            .args(["--budget-ms", "0", "--workers", "2"])
            .args(["--seal-rows", &seal_rows.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(dir) = wal {
            cmd.arg("--ingest-wal").arg(dir);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| CliError::Failed(format!("cannot spawn shard process: {e}")))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| CliError::Failed("shard stdout not captured".into()))?;
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| CliError::Failed(format!("cannot read shard stdout: {e}")))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CliError::Failed(
                    "shard process exited before announcing its port".into(),
                ));
            }
            if let Some(rest) = line.trim().strip_prefix("om-server listening on http://") {
                break rest.to_owned();
            }
        };
        // Keep draining so the child never blocks on a full stdout pipe.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Ok(Shard {
            child,
            addr,
            bin: bin.to_path_buf(),
            wal: wal.map(Path::to_path_buf),
            seal_rows,
        })
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Respawn this shard on its original address (same partition
    /// bytes, same WAL). The rebind can race the dying listener, so a
    /// few attempts are allowed.
    fn respawn(&mut self) -> Result<(), CliError> {
        let mut last = None;
        for _ in 0..10 {
            match Shard::spawn(
                &self.bin,
                self.wal.as_deref(),
                Some(&self.addr),
                self.seal_rows,
            ) {
                Ok(fresh) => {
                    *self = fresh;
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
        }
        Err(last.unwrap_or_else(|| CliError::Failed("shard respawn failed".into())))
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.kill();
    }
}

fn compare_request(v1: &str, v2: &str) -> om_api::CompareRequest {
    om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: v1.into(),
        v2: v2.into(),
        class: "dropped".into(),
        allow_partial: None,
    }
}

/// The deterministic request mix: `(path, body, is_ingest)` for slot `i`.
/// Rows per ingest batch in the mixed workload (one batch per 12
/// requests); the seal-round cadence is counted in these.
const INGEST_BATCH_ROWS: usize = 4;

fn request_for(i: usize, ingest_rows: &[Vec<String>]) -> (String, String, bool) {
    let drill = |path: Vec<om_api::PathStep>| om_api::DrillRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
        depth: Some(2),
        min_score: None,
        path,
    };
    match i % 12 {
        0 => ("/v1/compare".into(), compare_request("ph1", "ph2").encode(), false),
        1 => ("/v1/compare".into(), compare_request("ph1", "ph3").encode(), false),
        2 => ("/v1/compare".into(), compare_request("ph3", "ph4").encode(), false),
        3 => ("/v1/compare".into(), compare_request("ph2", "ph4").encode(), false),
        4 => ("/v1/drill".into(), drill(Vec::new()).encode(), false),
        5 => (
            "/v1/drill".into(),
            drill(vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }])
            .encode(),
            false,
        ),
        6 => (
            "/v1/gi".into(),
            om_api::GiRequest {
                top: Some(5),
                allow_partial: None,
            }
            .encode(),
            false,
        ),
        7 => (
            "/v1/cube/slice".into(),
            om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
            false,
        ),
        8 => (
            "/v1/compare/batch".into(),
            om_api::BatchRequest {
                items: vec![
                    om_api::BatchItemRequest::Compare {
                        req: compare_request("ph1", "ph2"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Compare {
                        req: compare_request("ph2", "ph1"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Drill {
                        req: drill(vec![om_api::PathStep {
                            attr: "TimeOfCall".into(),
                            value: "evening".into(),
                        }]),
                        budget_ms: None,
                    },
                ],
            }
            .encode(),
            false,
        ),
        9 => (
            "/v1/explore".into(),
            om_api::ExploreRequest {
                slice: Vec::new(),
                k: 6,
                max_conditions: None,
                budget_ms: None,
                compare: None,
            }
            .encode(),
            false,
        ),
        10 => (
            "/v1/explore".into(),
            om_api::ExploreRequest {
                slice: Vec::new(),
                k: 4,
                max_conditions: None,
                budget_ms: None,
                compare: Some(om_api::ExploreCompareBlock {
                    attr: "PhoneModel".into(),
                    v1: "ph1".into(),
                    v2: "ph2".into(),
                    class: "dropped".into(),
                }),
            }
            .encode(),
            false,
        ),
        _ if !ingest_rows.is_empty() => {
            // Rotate through distinct 4-row windows of the sample rows.
            let start = (i / 12 * INGEST_BATCH_ROWS) % ingest_rows.len();
            let rows: Vec<Vec<String>> = (0..INGEST_BATCH_ROWS)
                .map(|k| ingest_rows[(start + k) % ingest_rows.len()].clone())
                .collect();
            (
                "/v1/ingest".into(),
                om_api::IngestRequest { rows }.encode(),
                true,
            )
        }
        _ => ("/v1/compare".into(), compare_request("ph1", "ph4").encode(), false),
    }
}

/// Extract verbatim field labels of the first `n` rows of a prepared
/// dataset, for replay through live ingestion.
fn sample_rows(ds: &om_data::Dataset, n: usize) -> Result<Vec<Vec<String>>, CliError> {
    let schema = ds.schema();
    let mut rows = Vec::with_capacity(n.min(ds.n_rows()));
    for r in 0..n.min(ds.n_rows()) {
        let mut row = Vec::with_capacity(schema.n_attributes());
        for a in 0..schema.n_attributes() {
            let ids = ds.categorical(a)?;
            let label = ids
                .get(r)
                .and_then(|&id| schema.attribute(a).domain().label(id))
                .ok_or_else(|| CliError::Failed(format!("row {r} attr {a} has no label")))?;
            row.push(label.to_owned());
        }
        rows.push(row);
    }
    Ok(rows)
}

fn percentile(sorted_us: &[u128], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

/// Entry point for `opmap cluster`.
///
/// # Errors
/// Usage errors for bad flags; failures if a shard cannot start, a
/// verification diverges, or a chaos assertion fails.
pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let n_partitions = parsed.parse_or("shards", 4usize)?;
    if n_partitions == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let replicas = parsed.parse_or("replicas", 1usize)?;
    if replicas == 0 {
        return Err(CliError::Usage("--replicas must be at least 1".into()));
    }
    let records = parsed.parse_or("records", 20_000usize)?;
    let seed = parsed.parse_or("seed", 7u64)?;
    let requests = parsed.parse_or("requests", 5_000usize)?;
    let seal_rows = parsed.parse_or("seal-rows", 4096usize)?;
    if seal_rows == 0 {
        return Err(CliError::Usage("--seal-rows must be at least 1".into()));
    }
    let bench_out = parsed.optional("bench-out");
    let verify = parsed.switch("verify");
    let chaos = parsed.switch("chaos");
    let ingest = parsed.switch("ingest");
    parsed.reject_unknown()?;

    // Arm OM_FAILPOINTS on the coordinator side too (shard child
    // processes arm their own registry in `serve`); a no-op unless this
    // binary was built with the `failpoints` feature.
    om_engine::fail::init_from_env();

    let work = std::env::temp_dir().join(format!(
        "om-cluster-run-{}-{seed}-{n_partitions}x{replicas}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work)
        .map_err(|e| CliError::Failed(format!("cannot create {work:?}: {e}")))?;

    let opts = RunOptions {
        n_partitions,
        replicas,
        records,
        seed,
        requests,
        seal_rows,
        verify,
        chaos,
        ingest,
        bench_out,
    };
    let result = run_inner(out, &opts, &work);
    let _ = std::fs::remove_dir_all(&work);
    result
}

struct RunOptions {
    n_partitions: usize,
    replicas: usize,
    records: usize,
    seed: u64,
    requests: usize,
    seal_rows: usize,
    verify: bool,
    chaos: bool,
    ingest: bool,
    bench_out: Option<String>,
}

#[allow(clippy::too_many_lines)]
fn run_inner(out: &mut dyn Write, opts: &RunOptions, work: &Path) -> CliResult {
    let RunOptions {
        n_partitions,
        replicas,
        records,
        seed,
        requests,
        seal_rows,
        verify,
        chaos,
        ingest,
        ref bench_out,
    } = *opts;
    // 1. One centrally-prepared dataset; the union engine doubles as
    //    the single-node verification twin.
    writeln!(out, "building {records}-record dataset (seed {seed})…").ok();
    let ds = om_synth::paper_scenario(records, seed).0;
    let twin = Arc::new(OpportunityMap::build(ds, EngineConfig::default())?);
    let ingest_rows = sample_rows(twin.dataset(), 256)?;

    // 2. Hash-partition and provision one binary partition per
    //    partition; replicas share the bytes.
    let parts = partition_dataset(twin.dataset(), n_partitions)?;
    let mut bins = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let path = work.join(format!("part-{i}.bin"));
        std::fs::write(&path, encode_dataset(part))
            .map_err(|e| CliError::Failed(format!("cannot write {path:?}: {e}")))?;
        bins.push(path);
    }

    // 3. Spawn the shard processes on ephemeral ports, partition block
    //    by partition block (replica r of partition p is global index
    //    p * replicas + r — the layout the coordinator's router
    //    expects).
    let mut shards = Vec::new();
    for p in 0..n_partitions {
        for r in 0..replicas {
            let bin = bins
                .get(p)
                .ok_or_else(|| CliError::Failed(format!("no partition bin for {p}")))?;
            let wal = ingest.then(|| work.join(format!("wal-{p}-{r}")));
            // Natural seals are disabled (threshold no batch reaches):
            // generations advance only at the harness's synchronized
            // seal rounds, keeping every replica's — and the twin's —
            // visible store in lockstep between rounds.
            let shard = Shard::spawn(bin, wal.as_deref(), None, usize::MAX)?;
            writeln!(
                out,
                "partition {p} replica {r}: pid {} on http://{} ({} rows)",
                shard.child.id(),
                shard.addr,
                parts.get(p).map_or(0, om_data::Dataset::n_rows)
            )
            .ok();
            shards.push(shard);
        }
    }

    // 4. Coordinator in-process, serving the same typed /v1 API. A
    //    typed handle is kept alongside the server's trait object so
    //    chaos can poll `degraded_addrs` while the server answers load.
    let server_config = || ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        engine_budget: None,
        ..ServerConfig::default()
    };
    let coordinator = Arc::new(
        Coordinator::connect(ClusterConfig {
            shard_addrs: shards.iter().map(|s| s.addr.clone()).collect(),
            replicas,
            ingest,
            // Chaos kills replicas outright (connection refused, not
            // slowness): tight backoff keeps the degraded window fast
            // while the breaker is still warming up.
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            breaker_open: Duration::from_millis(500),
            ..ClusterConfig::default()
        })
        .map_err(|e| CliError::Failed(format!("coordinator cannot join cluster: {e}")))?,
    );
    let coord_server = Server::start_custom(Arc::clone(&coordinator) as _, server_config())
        .map_err(|e| CliError::Failed(format!("cannot start coordinator: {e}")))?;
    writeln!(
        out,
        "coordinator on http://{} over {n_partitions} partition(s) x {replicas} replica(s)",
        coord_server.local_addr()
    )
    .ok();

    // 5. Optional single-node twin over the union, for byte-identity.
    let twin_ingest = (verify && ingest)
        .then(|| {
            twin.start_ingest(&IngestConfig {
                sync_writes: false,
                seal_rows: usize::MAX,
                ..IngestConfig::new(work.join("wal-single"))
            })
        })
        .transpose()
        .map_err(|e| CliError::Failed(format!("cannot start twin ingestion: {e}")))?;
    let twin_server = verify
        .then(|| {
            Server::start_with_ingest(Arc::clone(&twin), server_config(), twin_ingest.clone())
        })
        .transpose()
        .map_err(|e| CliError::Failed(format!("cannot start single-node twin: {e}")))?;

    let timeout = Duration::from_secs(60);
    let coord_client = ShardClient::new(coord_server.local_addr().to_string(), timeout);
    let twin_client = twin_server
        .as_ref()
        .map(|s| ShardClient::new(s.local_addr().to_string(), timeout));

    // 6. Drive the mixed load. With chaos and replication, one replica
    //    of every partition dies at the half-way mark and rejoins at
    //    the three-quarter mark — the load in between must never see a
    //    5xx.
    let replicated_chaos = chaos && replicas >= 2;
    let chaos_kill_at = requests / 2;
    let chaos_rejoin_at = requests - requests / 4;
    let mut victims: Vec<usize> = Vec::new();
    let mut rows_unsealed = 0usize;
    let mut latencies_us: Vec<u128> = Vec::with_capacity(requests);
    let mut bytes_total: u64 = 0;
    let mut verified: u64 = 0;
    let started = Instant::now();
    for i in 0..requests {
        if replicated_chaos && i == chaos_kill_at {
            victims = (0..n_partitions)
                .filter_map(|p| replica_set(p, n_partitions, replicas).first().copied())
                .collect();
            for &g in &victims {
                if let Some(shard) = shards.get_mut(g) {
                    writeln!(out, "chaos: killing shard {g} (pid {}) on {}", shard.child.id(), shard.addr).ok();
                    shard.kill();
                }
            }
        }
        if replicated_chaos && i == chaos_rejoin_at {
            for &g in &victims {
                if let Some(shard) = shards.get_mut(g) {
                    shard.respawn()?;
                    writeln!(out, "chaos: shard {g} respawned on http://{}", shard.addr).ok();
                }
            }
            settle(out, &coordinator, &coord_client, &shards, ingest)?;
            if ingest {
                // The victims just caught up on the rows they missed;
                // seal everywhere so the byte-compared load resumes
                // from an aligned visible store.
                flush_round(&shards, twin_ingest.as_ref(), timeout)?;
                rows_unsealed = 0;
            }
        }
        let (path, body, is_ingest) = request_for(i, if ingest { &ingest_rows } else { &[] });
        let t = Instant::now();
        let (status, response) = coord_client
            .post(&path, &body)
            .map_err(|e| CliError::Failed(format!("request {i} ({path}) failed: {e}")))?;
        latencies_us.push(t.elapsed().as_micros());
        bytes_total += response.len() as u64;
        if status != 200 {
            return Err(CliError::Failed(format!(
                "request {i} ({path}) answered HTTP {status}: {response}"
            )));
        }
        if let Some(tc) = &twin_client {
            let (ts, tr) = tc
                .post(&path, &body)
                .map_err(|e| CliError::Failed(format!("twin request {i} ({path}) failed: {e}")))?;
            if is_ingest {
                // Acks agree on counts; the generation counter is
                // per-shard and intentionally not byte-compared.
                let ca = om_api::IngestResponse::parse(&response)
                    .map_err(|e| CliError::Failed(format!("bad cluster ack: {e}")))?;
                let ta = om_api::IngestResponse::parse(&tr)
                    .map_err(|e| CliError::Failed(format!("bad twin ack: {e}")))?;
                if (ca.accepted, ca.rows_total) != (ta.accepted, ta.rows_total) {
                    return Err(CliError::Failed(format!(
                        "ingest divergence at request {i}: cluster accepted {}/{}, twin {}/{}",
                        ca.accepted, ca.rows_total, ta.accepted, ta.rows_total
                    )));
                }
            } else if (status, response.as_str()) != (ts, tr.as_str()) {
                return Err(CliError::Failed(format!(
                    "byte-identity violated at request {i} ({path}):\n cluster: HTTP {status}: {response}\n single:  HTTP {ts}: {tr}"
                )));
            }
            verified += 1;
        }
        if is_ingest {
            rows_unsealed += INGEST_BATCH_ROWS;
            // Seal rounds are suspended while chaos victims are down:
            // a dead replica cannot take part, and sealing around it
            // would desynchronize visibility until it rejoins.
            let kill_window =
                replicated_chaos && i >= chaos_kill_at && i < chaos_rejoin_at;
            if rows_unsealed >= seal_rows && !kill_window {
                flush_round(&shards, twin_ingest.as_ref(), timeout)?;
                rows_unsealed = 0;
            }
        }
    }
    let elapsed = started.elapsed();
    if replicated_chaos {
        let (_, metrics) = coord_client
            .get("/metrics")
            .map_err(|e| CliError::Failed(format!("cannot scrape coordinator metrics: {e}")))?;
        for needed in ["om_cluster_failovers_total", "om_cluster_breaker_opens_total"] {
            let active = metrics
                .lines()
                .any(|l| l.starts_with(needed) && !l.ends_with(" 0"));
            if !active {
                return Err(CliError::Failed(format!(
                    "chaos ran a full kill/rejoin cycle but {needed} never moved"
                )));
            }
        }
        writeln!(
            out,
            "chaos: replicated survival held — zero 5xx with one replica of every partition down"
        )
        .ok();
    }

    // 7. Chaos, part two: lose *every* replica of the last partition
    //    and assert both contractual failure shapes.
    if chaos {
        whole_partition_loss(out, opts, &mut shards, &coordinator, &coord_client)?;
    }

    // 8. With live ingestion: seal and absorb everywhere, then prove the
    //    merged store still matches the single node (epoch re-pin).
    if ingest && verify {
        for shard in &shards {
            ShardClient::new(shard.addr.clone(), timeout)
                .expect_ok("POST", "/internal/flush", Some("{}"))
                .map_err(|e| CliError::Failed(format!("shard flush failed: {e}")))?;
        }
        if let Some(handle) = &twin_ingest {
            handle
                .flush()
                .map_err(|e| CliError::Failed(format!("twin flush failed: {e}")))?;
        }
        let (path, body, _) = request_for(0, &[]);
        let cluster = coord_client
            .post(&path, &body)
            .map_err(|e| CliError::Failed(format!("post-flush request failed: {e}")))?;
        let single = twin_client
            .as_ref()
            .map(|tc| tc.post(&path, &body))
            .transpose()
            .map_err(|e| CliError::Failed(format!("post-flush twin request failed: {e}")))?;
        if let Some(single) = single {
            if cluster != single {
                return Err(CliError::Failed(format!(
                    "post-ingest divergence: cluster {cluster:?} vs single {single:?}"
                )));
            }
            verified += 1;
        }
        writeln!(out, "post-ingest flush: merged store still byte-identical").ok();
    }

    // 9. Report.
    latencies_us.sort_unstable();
    let throughput = requests as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.95),
        percentile(&latencies_us, 0.99),
    );
    writeln!(
        out,
        "drove {requests} request(s) in {:.2}s: {throughput:.0} req/s, \
         latency p50 {p50:.2}ms p95 {p95:.2}ms p99 {p99:.2}ms, {bytes_total} byte(s)",
        elapsed.as_secs_f64()
    )
    .ok();
    if verify {
        writeln!(
            out,
            "verify: {verified} response(s) byte-identical to the single-node twin"
        )
        .ok();
    }

    if let Some(path) = bench_out {
        let json = format!(
            "{{\"bench\":\"cluster_loopback\",\"shards\":{n_partitions},\"replicas\":{replicas},\
             \"records\":{records},\
             \"requests\":{requests},\"ingest\":{ingest},\"chaos\":{chaos},\
             \"verified_responses\":{verified},\"throughput_rps\":{throughput:.2},\
             \"latency_ms\":{{\"p50\":{p50:.3},\"p95\":{p95:.3},\"p99\":{p99:.3}}},\
             \"bytes_total\":{bytes_total}}}\n"
        );
        std::fs::write(path, &json)
            .map_err(|e| CliError::Failed(format!("cannot write {path:?}: {e}")))?;
        writeln!(out, "bench results written to {path}").ok();
    }

    if let Some(server) = twin_server {
        server.shutdown();
    }
    if let Some(handle) = twin_ingest {
        handle.shutdown();
    }
    coord_server.shutdown();
    Ok(())
}

/// One synchronized seal round: every shard (direct `/internal/flush`)
/// and the verification twin seal their staged rows together, so the
/// next generation pin sees the same row set everywhere. Shards never
/// seal on their own in this harness — independent seal points would
/// make the cluster's mid-load visibility diverge from the twin's.
fn flush_round(shards: &[Shard], twin: Option<&IngestHandle>, timeout: Duration) -> CliResult {
    for shard in shards {
        ShardClient::new(shard.addr.clone(), timeout)
            .expect_ok("POST", "/internal/flush", Some("{}"))
            .map_err(|e| CliError::Failed(format!("seal round: shard flush failed: {e}")))?;
    }
    if let Some(handle) = twin {
        handle
            .flush()
            .map_err(|e| CliError::Failed(format!("seal round: twin flush failed: {e}")))?;
    }
    Ok(())
}

/// Wait until the coordinator has healed: breaker probes readmit the
/// respawned replicas and queued catch-up rows replay. Reads only touch
/// a partition's preferred replica, so with ingest enabled an empty
/// ingest batch (a pure stats write that every replica receives) drives
/// the non-preferred breakers closed too; without ingest, a degraded
/// address that answers a direct probe is merely awaiting its next
/// on-demand breaker probe and counts as settled.
fn settle(
    out: &mut dyn Write,
    coordinator: &Arc<Coordinator>,
    coord_client: &ShardClient,
    shards: &[Shard],
    ingest: bool,
) -> CliResult {
    let probe = compare_request("ph1", "ph2").encode();
    let empty_batch = om_api::IngestRequest { rows: Vec::new() }.encode();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (mut status, _) = coord_client
            .post("/v1/compare", &probe)
            .map_err(|e| CliError::Failed(format!("settle probe failed: {e}")))?;
        if ingest {
            // A 503 here is expected while breakers are still open
            // after a whole-partition loss; keep probing until the
            // half-open window readmits the respawned replicas.
            let (ingest_status, _) = coord_client
                .post("/v1/ingest", &empty_batch)
                .map_err(|e| CliError::Failed(format!("settle ingest probe failed: {e}")))?;
            status = status.max(ingest_status);
        }
        let degraded = coordinator.degraded_addrs();
        if status == 200 && degraded.is_empty() {
            writeln!(out, "chaos: cluster settled (all replicas healthy and caught up)").ok();
            return Ok(());
        }
        if status == 200 && !ingest {
            let all_reachable = degraded.iter().all(|addr| {
                shards.iter().any(|s| s.addr == *addr)
                    && ShardClient::new(addr.clone(), Duration::from_secs(2))
                        .get("/internal/generation")
                        .is_ok_and(|(s, _)| s == 200)
            });
            if all_reachable {
                writeln!(
                    out,
                    "chaos: cluster settled ({} replica(s) await their next breaker probe)",
                    degraded.len()
                )
                .ok();
                return Ok(());
            }
        }
        if Instant::now() > deadline {
            return Err(CliError::Failed(format!(
                "cluster did not settle after rejoin; still degraded: {degraded:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Kill every replica of the last partition and assert both failure
/// contracts: the default all-or-nothing `503` (naming the shard at
/// replication factor 1, the partition above it) and — when other
/// partitions remain — the `allow_partial` degraded `200` with a
/// coverage envelope. The victims are then respawned and re-joined.
fn whole_partition_loss(
    out: &mut dyn Write,
    opts: &RunOptions,
    shards: &mut [Shard],
    coordinator: &Arc<Coordinator>,
    coord_client: &ShardClient,
) -> CliResult {
    let RunOptions {
        n_partitions,
        replicas,
        ingest,
        ..
    } = *opts;
    let victim_partition = n_partitions - 1;
    let members = replica_set(victim_partition, n_partitions, replicas);
    let mut victim_addrs = Vec::new();
    for &g in &members {
        if let Some(shard) = shards.get_mut(g) {
            writeln!(out, "chaos: killing shard {g} on {} (whole partition {victim_partition})", shard.addr).ok();
            victim_addrs.push(shard.addr.clone());
            shard.kill();
        }
    }

    let probe = compare_request("ph1", "ph2").encode();
    let (status, body) = coord_client
        .post("/v1/compare", &probe)
        .map_err(|e| CliError::Failed(format!("chaos probe failed to send: {e}")))?;
    if status != 503 {
        return Err(CliError::Failed(format!(
            "chaos: cluster with partition {victim_partition} lost answered HTTP {status} (want 503): {body}"
        )));
    }
    let env = om_api::ErrorEnvelope::parse(&body)
        .map_err(|e| CliError::Failed(format!("chaos: 503 body is not an error envelope: {e}")))?;
    let expected_name = if replicas == 1 {
        format!("shard {}", members.first().copied().unwrap_or(victim_partition))
    } else {
        format!("partition {victim_partition}")
    };
    if !env.message.contains(&expected_name) {
        return Err(CliError::Failed(format!(
            "chaos: envelope does not name the lost {expected_name}: {}",
            env.message
        )));
    }
    if env.retry_after_ms.is_none() {
        return Err(CliError::Failed(
            "chaos: 503 envelope carries no retry_after_ms hint".into(),
        ));
    }
    writeln!(out, "chaos: typed 503 names the lost {expected_name}: {}", env.message).ok();

    if n_partitions > 1 {
        let partial = om_api::CompareRequest {
            allow_partial: Some(true),
            ..compare_request("ph1", "ph2")
        }
        .encode();
        let (status, body) = coord_client
            .post("/v1/compare", &partial)
            .map_err(|e| CliError::Failed(format!("chaos partial probe failed to send: {e}")))?;
        if status != 200 {
            return Err(CliError::Failed(format!(
                "chaos: allow_partial answered HTTP {status} (want degraded 200): {body}"
            )));
        }
        let resp = om_api::CompareResponse::parse(&body)
            .map_err(|e| CliError::Failed(format!("chaos: degraded 200 is not a compare response: {e}")))?;
        let Some(coverage) = resp.coverage else {
            return Err(CliError::Failed(
                "chaos: degraded answer carries no coverage envelope".into(),
            ));
        };
        let want_answered = (n_partitions - 1) as u64;
        if coverage.partitions_answered != want_answered
            || coverage.partitions_total != n_partitions as u64
            || !coverage.missing_partitions.contains(&(victim_partition as u64))
        {
            return Err(CliError::Failed(format!(
                "chaos: coverage envelope is wrong: {coverage:?} (want {want_answered}/{n_partitions} with partition {victim_partition} missing)"
            )));
        }
        for addr in &victim_addrs {
            if !coverage.missing_shards.contains(addr) {
                return Err(CliError::Failed(format!(
                    "chaos: coverage envelope does not name lost shard {addr}: {coverage:?}"
                )));
            }
        }
        if !(coverage.rows_covered_pct > 0.0 && coverage.rows_covered_pct < 100.0) {
            return Err(CliError::Failed(format!(
                "chaos: rows_covered_pct {:.3} is not a strict partial",
                coverage.rows_covered_pct
            )));
        }
        writeln!(
            out,
            "chaos: allow_partial answered from {want_answered}/{n_partitions} partition(s) \
             ({:.1}% of rows), naming {:?}",
            coverage.rows_covered_pct, coverage.missing_shards
        )
        .ok();
    }

    for &g in &members {
        if let Some(shard) = shards.get_mut(g) {
            shard.respawn()?;
            writeln!(out, "chaos: shard {g} respawned on http://{}", shard.addr).ok();
        }
    }
    settle(out, coordinator, coord_client, shards, ingest)?;

    // Back at full strength, allow_partial must change nothing: the
    // answer carries no coverage envelope at all.
    let partial = om_api::CompareRequest {
        allow_partial: Some(true),
        ..compare_request("ph1", "ph2")
    }
    .encode();
    let (status, body) = coord_client
        .post("/v1/compare", &partial)
        .map_err(|e| CliError::Failed(format!("post-rejoin partial probe failed: {e}")))?;
    if status != 200 || body.contains("\"coverage\"") {
        return Err(CliError::Failed(format!(
            "chaos: full-coverage allow_partial answer changed shape (HTTP {status}): {body}"
        )));
    }
    writeln!(out, "chaos: full-coverage allow_partial answer carries no coverage envelope").ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut parsed = Parsed::parse(&argv).unwrap();
        let _ = parsed.command();
        let mut out = Vec::new();
        let r = run(&mut parsed, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_options() {
        let (r, text) = run_args(&["cluster", "--help"]);
        assert!(r.is_ok());
        assert!(text.contains("--shards"));
        assert!(text.contains("--replicas"));
        assert!(text.contains("--verify"));
    }

    #[test]
    fn zero_shards_is_usage_error() {
        let (r, _) = run_args(&["cluster", "--shards", "0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn zero_replicas_is_usage_error() {
        let (r, _) = run_args(&["cluster", "--replicas", "0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_option_is_usage_error() {
        let (r, _) = run_args(&["cluster", "--typo", "x"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn percentiles_interpolate_sanely() {
        let us: Vec<u128> = (1..=100).map(|v| v * 1000).collect();
        assert!((percentile(&us, 0.50) - 50.0).abs() < 2.0);
        assert!((percentile(&us, 0.99) - 99.0).abs() < 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn request_mix_is_deterministic_and_valid_json() {
        let rows = vec![vec!["a".to_owned(); 3]];
        for i in 0..24 {
            let (path, body, _) = request_for(i, &rows);
            assert!(path.starts_with("/v1/"), "{path}");
            assert_eq!(request_for(i, &rows).1, body);
        }
        // Slots 9 and 10 exercise smart exploration, plain and compare.
        let (path, body, _) = request_for(9, &[]);
        assert_eq!(path, "/v1/explore");
        assert!(!body.contains("\"compare\""), "{body}");
        let (path, body, _) = request_for(10, &[]);
        assert_eq!(path, "/v1/explore");
        assert!(body.contains("\"compare\""), "{body}");
        // Without ingest rows, slot 11 degrades to a compare.
        let (path, _, is_ingest) = request_for(11, &[]);
        assert_eq!(path, "/v1/compare");
        assert!(!is_ingest);
        let (path, _, is_ingest) = request_for(11, &rows);
        assert_eq!(path, "/v1/ingest");
        assert!(is_ingest);
    }
}
