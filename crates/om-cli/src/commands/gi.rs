//! `opmap gi` — general impressions: trends, exceptions, influence.

use std::io::Write;

use om_gi::Trend;

use crate::args::Parsed;
use crate::CliResult;

const HELP: &str = "\
opmap gi — mine general impressions over all rule cubes

OPTIONS:
  --data <csv>       input CSV (required)
  --class <column>   class column name (required)
  --top <n>          entries per section (default 10)
  --bins <k>         equal-frequency bins for continuous attributes
  --budget-ms <ms>   abort if mining runs longer (default: no limit)";

pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let top = parsed.parse_or("top", 10usize)?;
    let budget = super::budget_from(parsed)?;
    let ds = super::load_dataset(parsed)?;
    let om = super::build_engine(parsed, ds)?;
    parsed.reject_unknown()?;

    let gi = om.run_general_impressions(om.exec_ctx(Some(&budget)))?;

    writeln!(out, "== strong unit trends ==").ok();
    let mut strong: Vec<_> = gi
        .trends
        .iter()
        .filter(|t| matches!(t.trend, Trend::Increasing | Trend::Decreasing))
        .collect();
    strong.sort_by(|a, b| {
        b.r_squared
            .partial_cmp(&a.r_squared)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for t in strong.iter().take(top) {
        writeln!(
            out,
            "  {:<24} {:<16} {:?} (slope {:+.5}, r2 {:.2})",
            t.attr_name, t.class_label, t.trend, t.slope, t.r_squared
        )
        .ok();
    }
    if strong.is_empty() {
        writeln!(out, "  (none)").ok();
    }

    writeln!(out, "\n== exceptions ==").ok();
    for e in gi.exceptions.iter().take(top) {
        writeln!(
            out,
            "  {}={} on {}: {:.3}% vs rest {:.3}% (z {:+.1}, {:?})",
            e.attr_name,
            e.value_label,
            e.class_label,
            e.confidence * 100.0,
            e.rest_confidence * 100.0,
            e.z,
            e.kind
        )
        .ok();
    }
    if gi.exceptions.is_empty() {
        writeln!(out, "  (none)").ok();
    }

    writeln!(out, "\n== influential attributes (chi-square) ==").ok();
    for i in gi.influence.iter().take(top) {
        writeln!(
            out,
            "  {:<24} chi2 {:>12.1}  p {:.2e}  info-gain {:.4}",
            i.attr_name, i.chi2, i.p_value, i.info_gain
        )
        .ok();
    }
    Ok(())
}
