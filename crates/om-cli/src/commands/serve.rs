//! `opmap serve` — run the HTTP query daemon over a dataset.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use om_server::{Server, ServerConfig};

use crate::args::Parsed;
use crate::{CliError, CliResult};

const HELP: &str = "\
opmap serve — run the HTTP query daemon

Builds the engine once (discretization + full cube store), then serves
read-only queries: /compare, /drill, /gi, /cube/slice, /healthz, /metrics,
plus the typed POST /v1/* API (see docs/api.md) including the batched
/v1/compare/batch endpoint.

OPTIONS:
  --data <csv>         Dataset to serve (with --class); omitted → synthetic
  --class <column>     Class column of --data
  --data-bin <file>    Pre-discretized binary dataset partition (the om-data
                       persist format `opmap cluster` provisions shards with);
                       overrides --data
  --records <n>        Synthetic dataset size when --data is omitted [50000]
  --seed <n>           Synthetic dataset seed [7]
  --bins <k>           Equal-frequency bins instead of MDL discretization
  --addr <host:port>   Bind address (port 0 → ephemeral) [127.0.0.1:7878]
  --workers <n>        HTTP worker threads [4]
  --exec-workers <n>   Engine comparison shards per request; 1 = serial,
                       0 = one per core [1]
  --cache <n>          Response-cache capacity, 0 disables [256]
  --timeout-ms <ms>    Per-request read timeout [5000]
  --queue <n>          Admission queue depth; overflow is shed with 503 [64]
  --budget-ms <ms>     Per-request engine budget, 0 disables; exhausted
                       budgets answer 503 with Retry-After [2000]
  --retry-after <s>    Retry-After seconds on 503 responses [1]
  --duration-ms <ms>   Serve for this long then exit; 0 = forever [0]
  --ingest-wal <dir>   Enable live ingestion: POST /ingest appends rows,
                       durably logged to a WAL under <dir>
  --seal-rows <n>      Rows per WAL segment before it is sealed into a
                       delta cube (with --ingest-wal) [4096]
  --verbose            Log one line per request to stderr

Failpoints (chaos builds only): when compiled with the `failpoints`
feature, OM_FAILPOINTS arms fault injection, e.g.
OM_FAILPOINTS=\"engine.compare=delay:50;server.respond=error:boom\".";

/// Entry point for `opmap serve`.
///
/// # Errors
/// Usage errors for bad flags; failures for unreadable data or an
/// unbindable address.
pub fn run(parsed: &mut Parsed, out: &mut dyn Write) -> CliResult {
    if parsed.switch("help") {
        writeln!(out, "{HELP}").ok();
        return Ok(());
    }
    let addr = parsed
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let n_workers = parsed.parse_or("workers", 4usize)?;
    let cache_capacity = parsed.parse_or("cache", 256usize)?;
    let timeout_ms = parsed.parse_or("timeout-ms", 5000u64)?;
    let queue_capacity = parsed.parse_or("queue", 64usize)?;
    let budget_ms = parsed.parse_or("budget-ms", 2000u64)?;
    let retry_after_secs = parsed.parse_or("retry-after", 1u64)?;
    let duration_ms = parsed.parse_or("duration-ms", 0u64)?;
    let ingest_wal = parsed.optional("ingest-wal");
    let seal_rows = parsed.parse_or("seal-rows", 4096usize)?;
    if seal_rows == 0 {
        return Err(CliError::Usage("--seal-rows must be at least 1".into()));
    }

    let dataset = if let Some(bin) = parsed.optional("data-bin") {
        let bytes = std::fs::read(&bin)
            .map_err(|e| CliError::Failed(format!("cannot read {bin:?}: {e}")))?;
        om_data::persist::decode_dataset(bytes.into())
            .map_err(|e| CliError::Failed(format!("cannot decode {bin:?}: {e}")))?
    } else if parsed.optional("data").is_some() {
        super::load_dataset(parsed)?
    } else {
        let records = parsed.parse_or("records", 50_000usize)?;
        let seed = parsed.parse_or("seed", 7u64)?;
        om_synth::paper_scenario(records, seed).0
    };
    let engine = super::build_engine(parsed, dataset)?;
    parsed.reject_unknown()?;

    // Arm OM_FAILPOINTS fault injection; a no-op unless this binary was
    // built with the `failpoints` feature (chaos runs only).
    om_engine::fail::init_from_env();

    let engine = Arc::new(engine);
    let ingest = match &ingest_wal {
        Some(dir) => Some(
            engine
                .start_ingest(&om_engine::IngestConfig {
                    seal_rows,
                    ..om_engine::IngestConfig::new(dir)
                })
                .map_err(|e| CliError::Failed(format!("cannot start live ingestion: {e}")))?,
        ),
        None => None,
    };
    let server = Server::start_with_ingest(
        Arc::clone(&engine),
        ServerConfig {
            addr,
            n_workers,
            cache_capacity,
            request_timeout: Duration::from_millis(timeout_ms),
            queue_capacity,
            engine_budget: (budget_ms > 0).then(|| Duration::from_millis(budget_ms)),
            retry_after_secs,
            max_body_bytes: om_server::http::DEFAULT_MAX_BODY_BYTES,
            verbose: parsed.switch("verbose"),
        },
        ingest.clone(),
    )
    .map_err(|e| CliError::Failed(format!("cannot start server: {e}")))?;
    writeln!(out, "om-server listening on http://{}", server.local_addr()).ok();
    if let Some(dir) = &ingest_wal {
        writeln!(
            out,
            "live ingestion enabled: POST /ingest, WAL at {dir}, sealing every {seal_rows} row(s)"
        )
        .ok();
    }
    out.flush().ok();

    if duration_ms == 0 {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    let metrics = server.metrics();
    server.shutdown();
    if let Some(handle) = &ingest {
        handle.shutdown();
    }
    writeln!(
        out,
        "served {} request(s), {} error(s), cache {} hit(s) / {} miss(es)",
        om_server::metrics::Endpoint::ALL
            .iter()
            .map(|&e| metrics.requests(e))
            .sum::<u64>(),
        metrics.errors(),
        metrics.cache_hits(),
        metrics.cache_misses()
    )
    .ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut parsed = Parsed::parse(&argv).unwrap();
        let _ = parsed.command();
        let mut out = Vec::new();
        let r = run(&mut parsed, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_options() {
        let (r, text) = run_args(&["serve", "--help"]);
        assert!(r.is_ok());
        assert!(text.contains("--addr"));
        assert!(text.contains("/metrics"));
    }

    #[test]
    fn bad_option_is_usage_error() {
        let (r, _) = run_args(&[
            "serve",
            "--records",
            "500",
            "--duration-ms",
            "1",
            "--typo",
            "x",
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn serves_synthetic_data_for_a_moment() {
        let (r, text) = run_args(&[
            "serve",
            "--records",
            "2000",
            "--addr",
            "127.0.0.1:0",
            "--duration-ms",
            "50",
            "--workers",
            "2",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(text.contains("om-server listening on http://127.0.0.1:"));
        assert!(text.contains("served 0 request(s)"));
    }

    #[test]
    fn serves_with_live_ingestion_enabled() {
        let wal_dir =
            std::env::temp_dir().join(format!("om-cli-serve-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let (r, text) = run_args(&[
            "serve",
            "--records",
            "1000",
            "--addr",
            "127.0.0.1:0",
            "--duration-ms",
            "50",
            "--workers",
            "2",
            "--ingest-wal",
            wal_dir.to_str().unwrap(),
            "--seal-rows",
            "32",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(text.contains("live ingestion enabled"), "{text}");
        assert!(wal_dir.join("seg-00000000.wal").exists());
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    #[test]
    fn zero_seal_rows_is_usage_error() {
        let (r, _) = run_args(&["serve", "--seal-rows", "0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_class_with_data_is_usage_error() {
        let (r, _) = run_args(&["serve", "--data", "/nonexistent.csv", "--duration-ms", "1"]);
        assert!(r.is_err());
    }
}
