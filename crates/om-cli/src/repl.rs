//! The interactive exploration shell (`opmap shell`).
//!
//! The deployed Opportunity Map is an interactive GUI: the analyst selects
//! cubes, slices, dices, rolls up, inspects, compares, undoes. This REPL
//! reproduces that loop over a terminal. The core is fully scripted-input
//! testable: `run_repl` reads commands from any `BufRead` and writes to
//! any `Write`.

use std::io::{BufRead, Write};

use om_cube::CubeView;
use om_engine::{Explorer, OpportunityMap};
use om_viz::detailed::{render_detailed, DetailedOptions};
use om_viz::pair_view::{render_pair_heatmap, PairViewOptions};

/// REPL help text.
const REPL_HELP: &str = "\
commands:
  attrs                       list analysis attributes
  select <attr>               load the 2-D cube of one attribute
  select <attr> <attr>        load the 3-D cube of an attribute pair
  show [class-label]          render the current cube (heatmap needs a class)
  slice <attr> <value>        fix an attribute to a value
  rollup <attr>               marginalize an attribute out
  undo                        undo the last operation
  history                     show the operation history
  compare <attr> <v1> <v2> <class>   run the automated comparison
  gi                          general impressions report
  help                        this message
  quit                        leave";

/// Run the exploration shell until `quit`/EOF. Every prompt and response
/// goes to `out`.
///
/// Errors from individual commands are reported and the loop continues;
/// only I/O failure on `out` terminates early.
pub fn run_repl<R: BufRead, W: Write + ?Sized>(om: &OpportunityMap, input: R, out: &mut W) {
    // Pin one store generation for the whole shell session; live
    // ingestion publishing mid-exploration never shifts the ground.
    let snapshot = om.store();
    let mut explorer = Explorer::new(&snapshot);
    let _ = writeln!(
        out,
        "opportunity map explorer — {} attributes, {} records; 'help' for commands",
        om.store().attrs().len(),
        om.dataset().n_rows()
    );
    for line in input.lines() {
        let Ok(line) = line else { break };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let _ = writeln!(out, "> {line}");
        match tokens.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => break,
            ["help"] => {
                let _ = writeln!(out, "{REPL_HELP}");
            }
            ["attrs"] => {
                for &a in om.store().attrs() {
                    let attr = om.dataset().schema().attribute(a);
                    let _ = writeln!(
                        out,
                        "  {:<24} ({} values)",
                        attr.name(),
                        attr.cardinality()
                    );
                }
            }
            ["select", name] => match om.attr_index(name) {
                Ok(attr) => match explorer.select_one(attr) {
                    Ok(_) => {
                        let _ = writeln!(out, "selected 2-D cube of {name}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "error: {e}");
                    }
                },
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            },
            ["select", a_name, b_name] => {
                match (om.attr_index(a_name), om.attr_index(b_name)) {
                    (Ok(a), Ok(b)) => match explorer.select_pair(a, b) {
                        Ok(_) => {
                            let _ = writeln!(out, "selected 3-D cube of {a_name} × {b_name}");
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    },
                    (Err(e), _) | (_, Err(e)) => {
                        let _ = writeln!(out, "error: {e}");
                    }
                }
            }
            ["show", rest @ ..] => {
                let Some(cube) = explorer.current() else {
                    let _ = writeln!(out, "error: nothing selected; use 'select' first");
                    continue;
                };
                match cube.n_attr_dims() {
                    1 => match CubeView::from_cube(cube) {
                        Ok(view) => {
                            let _ = writeln!(
                                out,
                                "{}",
                                render_detailed(&view, &DetailedOptions::default())
                            );
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    },
                    2 => {
                        let class_label = rest.first().copied().unwrap_or("");
                        let class = if class_label.is_empty() {
                            Ok(0)
                        } else {
                            om.class_id(class_label).map_err(|e| e.to_string())
                        };
                        match class {
                            Ok(c) => match render_pair_heatmap(
                                cube,
                                c,
                                &PairViewOptions::default(),
                            ) {
                                Ok(text) => {
                                    let _ = writeln!(out, "{text}");
                                }
                                Err(e) => {
                                    let _ = writeln!(out, "error: {e}");
                                }
                            },
                            Err(e) => {
                                let _ = writeln!(out, "error: {e}");
                            }
                        }
                    }
                    0 => {
                        let margin = cube.class_margin();
                        for (label, count) in cube.class_labels().iter().zip(margin) {
                            let _ = writeln!(out, "  {label:<24} {count}");
                        }
                    }
                    n => {
                        let _ = writeln!(out, "({n}-attribute cube; no renderer)");
                    }
                }
            }
            ["slice", attr_name, value_label] => {
                let r = explorer_dim(&explorer, om, attr_name).and_then(|dim| {
                    let cube = explorer
                        .current()
                        .ok_or_else(|| "no cube selected; `open` one first".to_owned())?;
                    let d = cube
                        .dims()
                        .get(dim)
                        .ok_or_else(|| format!("dimension {dim} is out of range"))?;
                    d.labels
                        .iter()
                        .position(|l| l == value_label)
                        .map(|v| (dim, v as u32))
                        .ok_or_else(|| {
                            format!("unknown value {value_label:?} of {attr_name}")
                        })
                });
                match r {
                    Ok((dim, v)) => match explorer.slice(dim, v) {
                        Ok(cube) => {
                            let _ = writeln!(
                                out,
                                "sliced: {} records remain",
                                cube.total()
                            );
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    },
                    Err(e) => {
                        let _ = writeln!(out, "error: {e}");
                    }
                }
            }
            ["rollup", attr_name] => match explorer_dim(&explorer, om, attr_name) {
                Ok(dim) => match explorer.rollup(dim) {
                    Ok(cube) => {
                        let _ = writeln!(
                            out,
                            "rolled up: {} attribute dims remain",
                            cube.n_attr_dims()
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "error: {e}");
                    }
                },
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            },
            ["undo"] => {
                match explorer.undo() {
                    Some(cube) => {
                        let _ = writeln!(
                            out,
                            "undone; current cube has {} attribute dims",
                            cube.n_attr_dims()
                        );
                    }
                    None => {
                        let _ = writeln!(out, "nothing selected");
                    }
                };
            }
            ["history"] => {
                if explorer.history().is_empty() {
                    let _ = writeln!(out, "(empty)");
                }
                for (i, op) in explorer.history().iter().enumerate() {
                    let _ = writeln!(out, "  {i}: {op:?}");
                }
            }
            ["compare", attr, v1, v2, class] => {
                match om.run_compare_by_name(attr, v1, v2, class, om.exec_ctx(None)) {
                    Ok(result) => {
                        let _ = writeln!(out, "{}", om_compare::report::render(&result, 5));
                    }
                    Err(e) => {
                        let _ = writeln!(out, "error: {e}");
                    }
                }
            }
            ["gi"] => {
                let _ = writeln!(out, "{}", om.gi_report(5));
            }
            other => {
                let _ = writeln!(
                    out,
                    "error: unknown command {:?}; 'help' for commands",
                    other.join(" ")
                );
            }
        }
    }
    let _ = writeln!(out, "bye");
}

/// Resolve an attribute name to the matching dimension index of the
/// explorer's current cube.
fn explorer_dim(
    explorer: &Explorer<'_>,
    om: &OpportunityMap,
    attr_name: &str,
) -> Result<usize, String> {
    let cube = explorer
        .current()
        .ok_or_else(|| "nothing selected; use 'select' first".to_owned())?;
    let attr = om
        .attr_index(attr_name)
        .map_err(|e| e.to_string())?;
    cube.dims()
        .iter()
        .position(|d| d.attr_index == attr)
        .ok_or_else(|| format!("attribute {attr_name:?} is not a dimension of the current cube"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_engine::EngineConfig;
    use om_synth::paper_scenario;
    use std::io::BufReader;

    fn engine() -> OpportunityMap {
        let (ds, _) = paper_scenario(20_000, 44);
        OpportunityMap::build(ds, EngineConfig::default()).unwrap()
    }

    fn run_script(om: &OpportunityMap, script: &str) -> String {
        let mut out = Vec::new();
        run_repl(om, BufReader::new(script.as_bytes()), &mut out);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn full_exploration_session() {
        let om = engine();
        let script = "\
attrs
select PhoneModel
show
select PhoneModel TimeOfCall
show dropped
slice PhoneModel ph2
show
history
undo
rollup TimeOfCall
compare PhoneModel ph1 ph2 dropped
quit
";
        let text = run_script(&om, script);
        assert!(text.contains("PhoneModel"), "{text}");
        assert!(text.contains("Detailed view: PhoneModel"), "{text}");
        assert!(text.contains("PhoneModel × TimeOfCall"), "{text}");
        assert!(text.contains("sliced:"), "{text}");
        assert!(text.contains("SelectPair"), "{text}");
        assert!(text.contains("undone"), "{text}");
        assert!(text.contains("Rule 1: PhoneModel=ph1"), "{text}");
        assert!(text.trim_end().ends_with("bye"), "{text}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let om = engine();
        let script = "\
select Bogus
slice PhoneModel ph1
select PhoneModel
slice TimeOfCall morning
frobnicate
show
quit
";
        let text = run_script(&om, script);
        assert!(text.contains("unknown name"), "{text}");
        assert!(text.contains("nothing selected"), "{text}");
        assert!(text.contains("not a dimension"), "{text}");
        assert!(text.contains("unknown command"), "{text}");
        // The session survived to the final show.
        assert!(text.contains("Detailed view"), "{text}");
    }

    #[test]
    fn eof_terminates_cleanly() {
        let om = engine();
        let text = run_script(&om, "attrs\n");
        assert!(text.trim_end().ends_with("bye"));
    }

    #[test]
    fn gi_command_renders() {
        let om = engine();
        let text = run_script(&om, "gi\nquit\n");
        assert!(text.contains("Influential attributes"), "{text}");
    }

    #[test]
    fn zero_dim_cube_shows_class_histogram() {
        let om = engine();
        let text = run_script(&om, "select PhoneModel\nrollup PhoneModel\nshow\nquit\n");
        assert!(text.contains("ended-ok"), "{text}");
    }
}
