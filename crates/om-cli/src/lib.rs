//! `opmap` — the Opportunity Map command-line interface.
//!
//! The deployed system was a GUI used daily by Motorola engineers; this
//! CLI exposes the same workflow over CSV files:
//!
//! ```console
//! $ opmap generate --domain call-log --records 50000 --out calls.csv
//! $ opmap overview --data calls.csv --class CallDisposition
//! $ opmap detail   --data calls.csv --class CallDisposition --attr PhoneModel
//! $ opmap compare  --data calls.csv --class CallDisposition \
//!                  --attr PhoneModel --v1 ph1 --v2 ph2 --target dropped
//! $ opmap gi       --data calls.csv --class CallDisposition
//! $ opmap rules    --data calls.csv --class CallDisposition --min-support 0.01
//! ```
//!
//! The crate is a thin library (`run`) plus a `main.rs` shim so every
//! command path is unit-testable.

pub mod args;
pub mod commands;
pub mod repl;

use std::io::Write;

/// Exit status of a command.
pub type CliResult = Result<(), CliError>;

/// CLI-level errors: bad usage or a failure from the underlying system.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the string is a usage hint.
    Usage(String),
    /// An engine/data failure, already formatted.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<om_data::DataError> for CliError {
    fn from(e: om_data::DataError) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<om_engine::EngineError> for CliError {
    fn from(e: om_engine::EngineError) -> Self {
        if e.is_overload() {
            // A tripped --budget-ms deadline is expected behavior, not a
            // malfunction; tell the user how to proceed.
            return CliError::Failed(format!(
                "query stopped: {e}; raise --budget-ms (or drop it for no limit)"
            ));
        }
        CliError::Failed(e.to_string())
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
opmap — Opportunity Map: finding actionable knowledge via automated comparison

USAGE:
  opmap <COMMAND> [OPTIONS]

COMMANDS:
  generate   Generate a synthetic dataset to CSV
  describe   Summarize a dataset (shape, class skew, attribute stats)
  explore    Smart drill-down: top-k summaries by weighted coverage
  shell      Interactive rule-cube exploration shell
  overview   Render the overall visualization (all 2-D rule cubes, Fig. 5)
  detail     Render one attribute's detailed view (Fig. 6)
  compare    Rank attributes distinguishing two values (Figs. 7/8)
  drill      Compare, then recurse into each level's top finding
  groups     Compare two merged groups of values
  gi         Mine general impressions (trends, exceptions, influence)
  heatmap    Shade a pair cube by class confidence
  rules      Mine class association rules
  report     Full Markdown analysis report in one call
  scan       Auto-detect significant value pairs and compare each
  serve      Run the HTTP query daemon over a dataset
  cluster    Spawn a loopback sharded cluster and drive mixed load
  ingest     Append CSV rows to a running server's live store
  help       Show this message

Run `opmap <COMMAND> --help` for command options.";

/// Dispatch a full argument vector (excluding argv\[0\]) and write all
/// output to `out`.
///
/// # Errors
/// Returns [`CliError::Usage`] on bad arguments and [`CliError::Failed`]
/// on execution failures.
pub fn run(argv: &[String], out: &mut dyn Write) -> CliResult {
    let mut parsed = args::Parsed::parse(argv)?;
    let command = match parsed.command() {
        Some(c) => c.to_owned(),
        None => {
            writeln!(out, "{USAGE}").ok();
            return Ok(());
        }
    };
    match command.as_str() {
        "generate" => commands::generate::run(&mut parsed, out),
        "overview" => commands::overview::run(&mut parsed, out),
        "report" => commands::report::run(&mut parsed, out),
        "detail" => commands::detail::run(&mut parsed, out),
        "describe" => commands::describe::run(&mut parsed, out),
        "explore" => commands::explore::run(&mut parsed, out),
        "shell" => commands::shell::run(&mut parsed, out),
        "compare" => commands::compare::run(&mut parsed, out),
        "drill" => commands::drill::run(&mut parsed, out),
        "groups" => commands::groups::run(&mut parsed, out),
        "gi" => commands::gi::run(&mut parsed, out),
        "heatmap" => commands::heatmap::run(&mut parsed, out),
        "rules" => commands::rules::run(&mut parsed, out),
        "scan" => commands::scan::run(&mut parsed, out),
        "serve" => commands::serve::run(&mut parsed, out),
        "cluster" => commands::cluster::run(&mut parsed, out),
        "ingest" => commands::ingest::run(&mut parsed, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").ok();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `opmap help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (CliResult, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let r = run(&argv, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_args_prints_usage() {
        let (r, text) = run_capture(&[]);
        assert!(r.is_ok());
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        let (r, text) = run_capture(&["help"]);
        assert!(r.is_ok());
        assert!(text.contains("compare"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let (r, _) = run_capture(&["frobnicate"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn error_display() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        assert_eq!(CliError::Failed("boom".into()).to_string(), "boom");
    }
}
