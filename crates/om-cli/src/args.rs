//! A small, dependency-free `--flag value` argument parser.

use std::collections::HashMap;

use crate::CliError;

/// Parsed command line: one positional command, further positional
/// operands (e.g. `opmap ingest rows.csv`), plus `--key value` options
/// and bare `--switch` flags.
#[derive(Debug, Clone)]
pub struct Parsed {
    command: Option<String>,
    positionals: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
    /// Keys actually consumed by the command (for unknown-option checks).
    consumed: Vec<String>,
    /// How many positionals the command has taken; leftovers are
    /// rejected by [`Parsed::reject_unknown`].
    taken_positionals: usize,
}

impl Parsed {
    /// Parse an argument vector (without argv\[0\]).
    ///
    /// # Errors
    /// Fails on a dangling `--key` with no value.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut command = None;
        let mut positionals = Vec::new();
        let mut options = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(key) = token.strip_prefix("--") {
                // A switch if it's the last token or the next token is
                // another option; otherwise a key/value pair.
                let is_switch = matches!(
                    key,
                    "help"
                        | "no-ci"
                        | "full"
                        | "ansi"
                        | "verbose"
                        | "skip-header"
                        | "verify"
                        | "chaos"
                        | "ingest"
                );
                if is_switch {
                    switches.push(key.to_owned());
                } else {
                    let value = argv.get(i + 1).ok_or_else(|| {
                        CliError::Usage(format!("option --{key} needs a value"))
                    })?;
                    if value.starts_with("--") {
                        return Err(CliError::Usage(format!(
                            "option --{key} needs a value, found {value:?}"
                        )));
                    }
                    if options.insert(key.to_owned(), value.clone()).is_some() {
                        return Err(CliError::Usage(format!("duplicate option --{key}")));
                    }
                    i += 1;
                }
            } else if command.is_none() {
                command = Some(token.clone());
            } else {
                positionals.push(token.clone());
            }
            i += 1;
        }
        Ok(Self {
            command,
            positionals,
            options,
            switches,
            consumed: Vec::new(),
            taken_positionals: 0,
        })
    }

    /// The positional command, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// The next positional operand after the command, in order.
    pub fn next_positional(&mut self) -> Option<String> {
        let value = self.positionals.get(self.taken_positionals).cloned();
        if value.is_some() {
            self.taken_positionals += 1;
        }
        value
    }

    /// Whether a bare switch like `--no-ci` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required string option.
    ///
    /// # Errors
    /// Fails if missing.
    pub fn required(&mut self, key: &str) -> Result<String, CliError> {
        self.consumed.push(key.to_owned());
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn optional(&mut self, key: &str) -> Option<String> {
        self.consumed.push(key.to_owned());
        self.options.get(key).cloned()
    }

    /// An optional option parsed as `T`, with a default.
    ///
    /// # Errors
    /// Fails if present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(
        &mut self,
        key: &str,
        default: T,
    ) -> Result<T, CliError> {
        self.consumed.push(key.to_owned());
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                CliError::Usage(format!("option --{key} has invalid value {raw:?}"))
            }),
        }
    }

    /// Reject any option the command never asked about and any
    /// positional it never took (catches typos).
    ///
    /// # Errors
    /// Fails listing the unknown options or the stray positional.
    pub fn reject_unknown(&self) -> Result<(), CliError> {
        if let Some(stray) = self.positionals.get(self.taken_positionals) {
            return Err(CliError::Usage(format!(
                "unexpected positional argument {stray:?}"
            )));
        }
        let unknown: Vec<&String> = self
            .options
            .keys()
            .filter(|k| !self.consumed.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            let mut names: Vec<String> = unknown.iter().map(|k| format!("--{k}")).collect();
            names.sort();
            Err(CliError::Usage(format!(
                "unknown option(s): {}",
                names.join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv)
    }

    #[test]
    fn command_and_options() {
        let mut p = parse(&["compare", "--attr", "Phone", "--v1", "ph1"]).unwrap();
        assert_eq!(p.command(), Some("compare"));
        assert_eq!(p.required("attr").unwrap(), "Phone");
        assert_eq!(p.optional("v1"), Some("ph1".into()));
        assert_eq!(p.optional("v2"), None);
    }

    #[test]
    fn switches_parse() {
        let p = parse(&["compare", "--no-ci", "--attr", "A"]).unwrap();
        assert!(p.switch("no-ci"));
        assert!(!p.switch("ansi"));
    }

    #[test]
    fn numeric_defaults_and_parsing() {
        let mut p = parse(&["generate", "--records", "1234"]).unwrap();
        assert_eq!(p.parse_or("records", 0usize).unwrap(), 1234);
        assert_eq!(p.parse_or("seed", 7u64).unwrap(), 7);
        let mut p = parse(&["generate", "--records", "abc"]).unwrap();
        assert!(p.parse_or("records", 0usize).is_err());
    }

    #[test]
    fn dangling_value_rejected() {
        assert!(parse(&["x", "--key"]).is_err());
        assert!(parse(&["x", "--key", "--other", "v"]).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["x", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn stray_positional_rejected() {
        let p = parse(&["cmd", "oops"]).unwrap();
        let e = p.reject_unknown().unwrap_err();
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn positionals_taken_in_order() {
        let mut p = parse(&["ingest", "rows.csv", "--addr", "h:1", "more.csv"]).unwrap();
        assert_eq!(p.command(), Some("ingest"));
        assert_eq!(p.next_positional(), Some("rows.csv".into()));
        assert_eq!(p.next_positional(), Some("more.csv".into()));
        assert_eq!(p.next_positional(), None);
        let _ = p.optional("addr");
        p.reject_unknown().unwrap();
    }

    #[test]
    fn missing_required_reported() {
        let mut p = parse(&["compare"]).unwrap();
        let e = p.required("attr").unwrap_err();
        assert!(e.to_string().contains("--attr"));
    }

    #[test]
    fn unknown_options_detected() {
        let mut p = parse(&["cmd", "--good", "1", "--typo", "2"]).unwrap();
        let _ = p.parse_or("good", 0u32);
        let e = p.reject_unknown().unwrap_err();
        assert!(e.to_string().contains("--typo"));
        assert!(!e.to_string().contains("--good"));
    }
}
