//! The `opmap` binary: a thin shim over [`om_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match om_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("opmap: {e}");
            ExitCode::FAILURE
        }
    }
}
