//! # om-api — typed wire contract for the opportunity-map HTTP API
//!
//! The single source of truth for every `/v1` request and response
//! body, shared by the server (om-server) and the HTTP clients
//! (om-cli, benches). Pure std: it holds no engine types, only what
//! actually travels on the wire, so clients don't pull in the cube or
//! comparison machinery.
//!
//! Layout:
//! - [`json`] — a small strict JSON value type ([`json::Json`]) with a
//!   parser and an encoder whose float/escape formatting is
//!   byte-identical to the legacy hand-rolled encoders.
//! - [`error`] — the uniform `/v1` error envelope
//!   `{"error":{"code","message","retry_after_ms"?,"row"?}}` and the
//!   code → HTTP-status mapping.
//! - [`request`] — typed request bodies (`POST /v1/compare`, `/drill`,
//!   `/gi`, `/cube/slice`, `/ingest`, `/compare/batch`).
//! - [`response`] — typed response bodies; their encoders reproduce
//!   the legacy GET bodies byte-for-byte, which is what lets `/v1`
//!   answers stay identical to the deprecated endpoints.
//! - [`internal`] — shard-internal wire types for cluster mode
//!   (`/internal/*`): base64 carriage of encoded stores and schema
//!   datasets between om-server shards and the om-cluster coordinator.
//!
//! Every type round-trips: `parse(x.encode()) == x` (non-finite floats
//! all encode as `null` and are treated as equal wire values).

// Request-path crate: panics here become 500s or worker deaths, so
// unwrap/expect are lint-visible outside unit tests (om-lint's
// panic-path check enforces the same rule with suppression reasons).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod internal;
pub mod json;
pub mod request;
pub mod response;

mod de;

pub use error::{ErrorCode, ErrorEnvelope};
pub use internal::{
    b64_decode, b64_encode, ConditionWire, InternalCountRequest, InternalCountResponse,
    InternalGenerationResponse, InternalLevelRequest, InternalLevelResponse,
    InternalSchemaResponse, InternalStoreResponse,
};
pub use json::{Json, JsonError};
pub use request::{
    BatchItemRequest, BatchRequest, CompareRequest, DrillRequest, ExploreCompareBlock,
    ExploreRequest, GiRequest, IngestRequest, PathStep, SliceRequest,
};
pub use response::{
    AttrScoreWire, BatchItemResult, BatchResponse, CompareResponse, CoverageWire, DrillLevelWire,
    DrillResponse, ExceptionWire, ExploreCompareWire, ExploreCondWire, ExploreResponse,
    ExploreSummaryWire, GiResponse, InfluenceWire, IngestResponse, PairCellWire, PairDimWire,
    SliceResponse, SliceValueWire, TrendWire, ValueContributionWire,
};
