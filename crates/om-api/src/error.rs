//! The uniform `/v1` error envelope:
//! `{"error":{"code":"...","message":"...","retry_after_ms":N,"row":N}}`
//! (`retry_after_ms` only on overload, `row` only on per-row ingest
//! rejections).

use crate::json::Json;

/// Machine-readable error class; the HTTP status is derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body or parameters could not be understood.
    BadRequest,
    /// One uploaded row failed validation (`row` names it, 1-based).
    BadRow,
    /// A name lookup failed (attribute, value or class label).
    UnknownName,
    /// The request was well-formed but semantically invalid.
    Invalid,
    /// No such route.
    NotFound,
    /// Wrong HTTP method for the route.
    MethodNotAllowed,
    /// Out of budget / shedding — retry after `retry_after_ms`.
    Overloaded,
    /// An internal failure.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadRow => "bad_row",
            ErrorCode::UnknownName => "unknown_name",
            ErrorCode::Invalid => "invalid",
            ErrorCode::NotFound => "not_found",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire spelling (inverse of [`Self::as_str`]).
    #[must_use]
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "bad_row" => ErrorCode::BadRow,
            "unknown_name" => ErrorCode::UnknownName,
            "invalid" => ErrorCode::Invalid,
            "not_found" => ErrorCode::NotFound,
            "method_not_allowed" => ErrorCode::MethodNotAllowed,
            "overloaded" => ErrorCode::Overloaded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status a `/v1` response carries for this code.
    #[must_use]
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::BadRow => 400,
            ErrorCode::UnknownName | ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Invalid => 422,
            ErrorCode::Overloaded => 503,
            ErrorCode::Internal => 500,
        }
    }
}

/// The structured error every `/v1` endpoint answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEnvelope {
    pub code: ErrorCode,
    pub message: String,
    /// On [`ErrorCode::Overloaded`]: when to retry, in milliseconds.
    pub retry_after_ms: Option<u64>,
    /// On [`ErrorCode::BadRow`]: the 1-based index of the offending row.
    pub row: Option<u64>,
}

impl ErrorEnvelope {
    /// A minimal envelope with just a code and a message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            retry_after_ms: None,
            row: None,
        }
    }

    /// The wire body.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut inner = vec![
            ("code".to_owned(), Json::Str(self.code.as_str().to_owned())),
            ("message".to_owned(), Json::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            #[allow(clippy::cast_precision_loss)]
            inner.push(("retry_after_ms".to_owned(), Json::Num(ms as f64)));
        }
        if let Some(row) = self.row {
            #[allow(clippy::cast_precision_loss)]
            inner.push(("row".to_owned(), Json::Num(row as f64)));
        }
        Json::Obj(vec![("error".to_owned(), Json::Obj(inner))]).encode()
    }

    /// Decode a parsed envelope.
    ///
    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let inner = v.get("error").ok_or("missing \"error\" object")?;
        let code_str = inner
            .get("code")
            .and_then(Json::as_str)
            .ok_or("missing \"error.code\" string")?;
        let code = ErrorCode::from_wire(code_str)
            .ok_or_else(|| format!("unknown error code {code_str:?}"))?;
        let message = inner
            .get("message")
            .and_then(Json::as_str)
            .ok_or("missing \"error.message\" string")?
            .to_owned();
        let retry_after_ms = match inner.get("retry_after_ms") {
            None => None,
            Some(x) => Some(x.as_u64().ok_or("\"retry_after_ms\" must be an integer")?),
        };
        let row = match inner.get("row") {
            None => None,
            Some(x) => Some(x.as_u64().ok_or("\"row\" must be an integer")?),
        };
        Ok(Self {
            code,
            message,
            retry_after_ms,
            row,
        })
    }

    /// Parse the wire body.
    ///
    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let e = ErrorEnvelope {
            code: ErrorCode::Overloaded,
            message: "deadline exceeded".to_owned(),
            retry_after_ms: Some(1000),
            row: None,
        };
        let text = e.encode();
        assert_eq!(
            text,
            "{\"error\":{\"code\":\"overloaded\",\"message\":\"deadline exceeded\",\
             \"retry_after_ms\":1000}}"
        );
        assert_eq!(ErrorEnvelope::parse(&text).unwrap(), e);
    }

    #[test]
    fn bad_row_carries_the_row() {
        let e = ErrorEnvelope {
            row: Some(7),
            ..ErrorEnvelope::new(ErrorCode::BadRow, "unknown label \"x\"")
        };
        let parsed = ErrorEnvelope::parse(&e.encode()).unwrap();
        assert_eq!(parsed.row, Some(7));
        assert_eq!(parsed.code.http_status(), 400);
    }

    #[test]
    fn codes_round_trip_and_map_to_statuses() {
        for (code, status) in [
            (ErrorCode::BadRequest, 400),
            (ErrorCode::BadRow, 400),
            (ErrorCode::UnknownName, 404),
            (ErrorCode::NotFound, 404),
            (ErrorCode::MethodNotAllowed, 405),
            (ErrorCode::Invalid, 422),
            (ErrorCode::Overloaded, 503),
            (ErrorCode::Internal, 500),
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
            assert_eq!(code.http_status(), status);
        }
        assert_eq!(ErrorCode::from_wire("nope"), None);
    }

    #[test]
    fn rejects_malformed_envelopes() {
        assert!(ErrorEnvelope::parse("{}").is_err());
        assert!(ErrorEnvelope::parse("{\"error\":{\"code\":\"weird\",\"message\":\"m\"}}").is_err());
        assert!(ErrorEnvelope::parse("not json").is_err());
    }
}
