//! Typed response bodies for every `/v1` endpoint.
//!
//! These are *wire* mirrors: they hold exactly what the JSON carries,
//! and their encoders are byte-identical to the legacy hand-rolled
//! encoders (`om_compare::json::to_json` and om-server's router), so a
//! `/v1` body equals the corresponding legacy body for the same engine
//! result. Non-finite floats encode as `null` and decode as NaN — the
//! wire cannot distinguish NaN from ±Inf, so equality on wire types
//! treats all non-finite values as equal.

use std::fmt::Write as _;

use crate::de::{req_arr, req_bool, req_f64, req_str, req_u64};
use crate::error::ErrorEnvelope;
use crate::json::{esc, num, Json};

/// Wire float equality: exact for finite values; all non-finite values
/// are indistinguishable on the wire (`null`), hence equal.
fn feq(a: f64, b: f64) -> bool {
    a == b || (!a.is_finite() && !b.is_finite())
}

fn opt_feq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => feq(a, b),
        (None, None) => true,
        // `Some(non-finite)` and `None` both encode as `null`.
        (Some(x), None) | (None, Some(x)) => !x.is_finite(),
    }
}

fn decode_f64_arr(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    req_arr(v, key)?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("{key:?} holds a non-number")))
        .collect()
}

fn decode_u64_arr(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    req_arr(v, key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("{key:?} holds a non-integer")))
        .collect()
}

fn decode_str_arr(v: &Json, key: &str) -> Result<Vec<String>, String> {
    req_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("{key:?} holds a non-string"))
        })
        .collect()
}

/// One value's contribution inside an [`AttrScoreWire`] (the paper's
/// per-value W_k terms).
#[derive(Debug, Clone)]
pub struct ValueContributionWire {
    pub value: String,
    pub n1: u64,
    pub n2: u64,
    pub x1: u64,
    pub x2: u64,
    /// `None` encodes `null` (confidence undefined on an empty slice).
    pub cf1: Option<f64>,
    pub cf2: Option<f64>,
    pub rcf1: f64,
    pub rcf2: f64,
    pub f: f64,
    pub w: f64,
}

impl PartialEq for ValueContributionWire {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
            && self.n1 == other.n1
            && self.n2 == other.n2
            && self.x1 == other.x1
            && self.x2 == other.x2
            && opt_feq(self.cf1, other.cf1)
            && opt_feq(self.cf2, other.cf2)
            && feq(self.rcf1, other.rcf1)
            && feq(self.rcf2, other.rcf2)
            && feq(self.f, other.f)
            && feq(self.w, other.w)
    }
}

impl ValueContributionWire {
    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"value":"{}","n1":{},"n2":{},"x1":{},"x2":{},"cf1":{},"cf2":{},"rcf1":{},"rcf2":{},"f":{},"w":{}}}"#,
            esc(&self.value),
            self.n1,
            self.n2,
            self.x1,
            self.x2,
            self.cf1.map_or("null".to_owned(), num),
            self.cf2.map_or("null".to_owned(), num),
            num(self.rcf1),
            num(self.rcf2),
            num(self.f),
            num(self.w)
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let opt = |key: &str| -> Result<Option<f64>, String> {
            // `null` is a first-class value here (undefined confidence),
            // so it decodes to None rather than NaN.
            match v.get(key) {
                None => Err(format!("missing field {key:?}")),
                Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("field {key:?} must be a number or null")),
            }
        };
        Ok(Self {
            value: req_str(v, "value")?,
            n1: req_u64(v, "n1")?,
            n2: req_u64(v, "n2")?,
            x1: req_u64(v, "x1")?,
            x2: req_u64(v, "x2")?,
            cf1: opt("cf1")?,
            cf2: opt("cf2")?,
            rcf1: req_f64(v, "rcf1")?,
            rcf2: req_f64(v, "rcf2")?,
            f: req_f64(v, "f")?,
            w: req_f64(v, "w")?,
        })
    }
}

/// One candidate attribute's score (ranked or property).
#[derive(Debug, Clone)]
pub struct AttrScoreWire {
    pub attr: u64,
    pub name: String,
    pub score: f64,
    pub normalized: f64,
    pub property_p: u64,
    pub property_t: u64,
    pub property_ratio: f64,
    pub values: Vec<ValueContributionWire>,
}

impl PartialEq for AttrScoreWire {
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr
            && self.name == other.name
            && feq(self.score, other.score)
            && feq(self.normalized, other.normalized)
            && self.property_p == other.property_p
            && self.property_t == other.property_t
            && feq(self.property_ratio, other.property_ratio)
            && self.values == other.values
    }
}

impl AttrScoreWire {
    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"attr":{},"name":"{}","score":{},"normalized":{},"property":{{"p":{},"t":{},"ratio":{}}},"values":["#,
            self.attr,
            esc(&self.name),
            num(self.score),
            num(self.normalized),
            self.property_p,
            self.property_t,
            num(self.property_ratio)
        );
        for (i, c) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.encode_into(out);
        }
        out.push_str("]}");
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let property = v.get("property").ok_or("missing \"property\" object")?;
        Ok(Self {
            attr: req_u64(v, "attr")?,
            name: req_str(v, "name")?,
            score: req_f64(v, "score")?,
            normalized: req_f64(v, "normalized")?,
            property_p: req_u64(property, "p")?,
            property_t: req_u64(property, "t")?,
            property_ratio: req_f64(property, "ratio")?,
            values: req_arr(v, "values")?
                .iter()
                .map(ValueContributionWire::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Which part of a cluster answered a degraded (`allow_partial`)
/// request: the coverage envelope attached to partial results. A
/// response without one covers the full record set.
#[derive(Debug, Clone)]
pub struct CoverageWire {
    pub partitions_total: u64,
    pub partitions_answered: u64,
    /// Share of the cluster's rows inside the answered partitions, in
    /// percent (base rows plus acknowledged live-ingested rows).
    pub rows_covered_pct: f64,
    /// Partition indices that contributed nothing.
    pub missing_partitions: Vec<u64>,
    /// The unreachable shard addresses behind the missing partitions.
    pub missing_shards: Vec<String>,
}

impl PartialEq for CoverageWire {
    fn eq(&self, other: &Self) -> bool {
        self.partitions_total == other.partitions_total
            && self.partitions_answered == other.partitions_answered
            && feq(self.rows_covered_pct, other.rows_covered_pct)
            && self.missing_partitions == other.missing_partitions
            && self.missing_shards == other.missing_shards
    }
}

impl CoverageWire {
    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"partitions_total":{},"partitions_answered":{},"rows_covered_pct":{},"missing_partitions":["#,
            self.partitions_total,
            self.partitions_answered,
            num(self.rows_covered_pct)
        );
        for (i, p) in self.missing_partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{p}");
        }
        out.push_str(r#"],"missing_shards":["#);
        for (i, s) in self.missing_shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(s));
        }
        out.push_str("]}");
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            partitions_total: req_u64(v, "partitions_total")?,
            partitions_answered: req_u64(v, "partitions_answered")?,
            rows_covered_pct: req_f64(v, "rows_covered_pct")?,
            missing_partitions: decode_u64_arr(v, "missing_partitions")?,
            missing_shards: decode_str_arr(v, "missing_shards")?,
        })
    }
}

fn opt_coverage(v: &Json) -> Result<Option<CoverageWire>, String> {
    match v.get("coverage") {
        None | Some(Json::Null) => Ok(None),
        Some(c) => CoverageWire::from_json(c).map(Some),
    }
}

/// The full comparison body (`/v1/compare`, and each drill level).
/// Encodes byte-identically to `om_compare::json::to_json`.
#[derive(Debug, Clone)]
pub struct CompareResponse {
    pub attribute: String,
    pub value_1: String,
    pub value_2: String,
    pub swapped: bool,
    pub class: String,
    pub cf1: f64,
    pub cf2: f64,
    pub n1: u64,
    pub n2: u64,
    pub ranked: Vec<AttrScoreWire>,
    pub property_attributes: Vec<AttrScoreWire>,
    /// Present only on degraded partial answers (`allow_partial`); a
    /// full-coverage body omits the field entirely, keeping it
    /// byte-identical to the pre-coverage wire format.
    pub coverage: Option<CoverageWire>,
}

impl PartialEq for CompareResponse {
    fn eq(&self, other: &Self) -> bool {
        self.attribute == other.attribute
            && self.value_1 == other.value_1
            && self.value_2 == other.value_2
            && self.swapped == other.swapped
            && self.class == other.class
            && feq(self.cf1, other.cf1)
            && feq(self.cf2, other.cf2)
            && self.n1 == other.n1
            && self.n2 == other.n2
            && self.ranked == other.ranked
            && self.property_attributes == other.property_attributes
            && self.coverage == other.coverage
    }
}

impl CompareResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"attribute":"{}","value_1":"{}","value_2":"{}","swapped":{},"class":"{}","cf1":{},"cf2":{},"n1":{},"n2":{},"ranked":["#,
            esc(&self.attribute),
            esc(&self.value_1),
            esc(&self.value_2),
            self.swapped,
            esc(&self.class),
            num(self.cf1),
            num(self.cf2),
            self.n1,
            self.n2
        );
        for (i, s) in self.ranked.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.encode_into(out);
        }
        out.push_str(r#"],"property_attributes":["#);
        for (i, s) in self.property_attributes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.encode_into(out);
        }
        out.push(']');
        if let Some(cov) = &self.coverage {
            out.push_str(",\"coverage\":");
            cov.encode_into(out);
        }
        out.push('}');
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            attribute: req_str(v, "attribute")?,
            value_1: req_str(v, "value_1")?,
            value_2: req_str(v, "value_2")?,
            swapped: req_bool(v, "swapped")?,
            class: req_str(v, "class")?,
            cf1: req_f64(v, "cf1")?,
            cf2: req_f64(v, "cf2")?,
            n1: req_u64(v, "n1")?,
            n2: req_u64(v, "n2")?,
            ranked: req_arr(v, "ranked")?
                .iter()
                .map(AttrScoreWire::from_json)
                .collect::<Result<_, _>>()?,
            property_attributes: req_arr(v, "property_attributes")?
                .iter()
                .map(AttrScoreWire::from_json)
                .collect::<Result<_, _>>()?,
            coverage: opt_coverage(v)?,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One drill level: the conditions in force and its comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillLevelWire {
    /// Human-readable `"Attr=value"` labels, outermost first.
    pub conditions: Vec<String>,
    pub result: CompareResponse,
}

/// The drill body (`/v1/drill`): same shape as legacy `/drill`.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillResponse {
    pub levels: Vec<DrillLevelWire>,
}

impl DrillResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        out.push_str("{\"levels\":[");
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"conditions\":[");
            for (j, label) in level.conditions.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", esc(label));
            }
            out.push_str("],\"result\":");
            level.result.encode_into(out);
            out.push('}');
        }
        out.push_str("]}");
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let levels = req_arr(v, "levels")?
            .iter()
            .map(|level| {
                Ok(DrillLevelWire {
                    conditions: decode_str_arr(level, "conditions")?,
                    result: CompareResponse::from_json(
                        level.get("result").ok_or("missing \"result\"")?,
                    )?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(Self { levels })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One condition of an explore summary, by label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreCondWire {
    pub attr: String,
    pub value: String,
}

/// One ranked summary of an `/v1/explore` body.
#[derive(Debug, Clone)]
pub struct ExploreSummaryWire {
    /// The summary's non-⋆ conditions (slice conditions excluded).
    pub conditions: Vec<ExploreCondWire>,
    pub support: u64,
    /// Marginal weighted coverage the summary earned when selected.
    pub coverage: u64,
    /// Per-class rule confidence, in `classes` order.
    pub confidences: Vec<f64>,
    /// Compare mode only: 1 = the normalized `value_1` side, 2 = the
    /// `value_2` side. Absent otherwise.
    pub side: Option<u64>,
    /// Compare mode only: distinguishing mass of the condition.
    pub mass: Option<f64>,
}

impl PartialEq for ExploreSummaryWire {
    fn eq(&self, other: &Self) -> bool {
        self.conditions == other.conditions
            && self.support == other.support
            && self.coverage == other.coverage
            && self.confidences.len() == other.confidences.len()
            && self
                .confidences
                .iter()
                .zip(&other.confidences)
                .all(|(&a, &b)| feq(a, b))
            && self.side == other.side
            && opt_feq(self.mass, other.mass)
    }
}

impl ExploreSummaryWire {
    fn encode_into(&self, out: &mut String) {
        out.push_str("{\"conditions\":[");
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"attr":"{}","value":"{}"}}"#,
                esc(&c.attr),
                esc(&c.value)
            );
        }
        let _ = write!(
            out,
            r#"],"support":{},"coverage":{},"confidences":["#,
            self.support, self.coverage
        );
        for (i, cf) in self.confidences.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&num(*cf));
        }
        out.push(']');
        if let Some(side) = self.side {
            let _ = write!(out, r#","side":{side}"#);
        }
        if let Some(mass) = self.mass {
            let _ = write!(out, r#","mass":{}"#, num(mass));
        }
        out.push('}');
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let conditions = req_arr(v, "conditions")?
            .iter()
            .map(|c| {
                Ok(ExploreCondWire {
                    attr: req_str(c, "attr")?,
                    value: req_str(c, "value")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let mass = match v.get("mass") {
            None => None,
            Some(Json::Null) => Some(f64::NAN),
            Some(x) => Some(x.as_f64().ok_or("field \"mass\" must be a number")?),
        };
        Ok(Self {
            conditions,
            support: req_u64(v, "support")?,
            coverage: req_u64(v, "coverage")?,
            confidences: decode_f64_arr(v, "confidences")?,
            side: match v.get("side") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_u64().ok_or("field \"side\" must be an integer")?),
            },
            mass,
        })
    }
}

/// The comparison block echoed back by an `explore_compare` body, with
/// the comparator's normalization (`swapped`) applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreCompareWire {
    pub attribute: String,
    pub value_1: String,
    pub value_2: String,
    pub swapped: bool,
    pub class: String,
}

impl ExploreCompareWire {
    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"attribute":"{}","value_1":"{}","value_2":"{}","swapped":{},"class":"{}"}}"#,
            esc(&self.attribute),
            esc(&self.value_1),
            esc(&self.value_2),
            self.swapped,
            esc(&self.class)
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            attribute: req_str(v, "attribute")?,
            value_1: req_str(v, "value_1")?,
            value_2: req_str(v, "value_2")?,
            swapped: req_bool(v, "swapped")?,
            class: req_str(v, "class")?,
        })
    }
}

/// The smart drill-down body (`/v1/explore`).
///
/// `truncated: true` marks a budget-degraded partial: the summaries
/// present are a valid prefix of the full answer. The `compare` block
/// (and per-summary `side`/`mass`) appear only in compare mode, keeping
/// plain exploration bodies free of the fields entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreResponse {
    pub universe: u64,
    pub covered: u64,
    pub steps: u64,
    pub truncated: bool,
    /// Class labels indexing each summary's `confidences`.
    pub classes: Vec<String>,
    pub summaries: Vec<ExploreSummaryWire>,
    pub compare: Option<ExploreCompareWire>,
}

impl ExploreResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"universe":{},"covered":{},"steps":{},"truncated":{},"classes":["#,
            self.universe, self.covered, self.steps, self.truncated
        );
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(c));
        }
        out.push_str("],\"summaries\":[");
        for (i, s) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.encode_into(out);
        }
        out.push(']');
        if let Some(cmp) = &self.compare {
            out.push_str(",\"compare\":");
            cmp.encode_into(out);
        }
        out.push('}');
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            universe: req_u64(v, "universe")?,
            covered: req_u64(v, "covered")?,
            steps: req_u64(v, "steps")?,
            truncated: req_bool(v, "truncated")?,
            classes: decode_str_arr(v, "classes")?,
            summaries: req_arr(v, "summaries")?
                .iter()
                .map(ExploreSummaryWire::from_json)
                .collect::<Result<_, _>>()?,
            compare: match v.get("compare") {
                None | Some(Json::Null) => None,
                Some(c) => Some(ExploreCompareWire::from_json(c)?),
            },
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One trend entry of the GI report (`trend` is `"increasing"`,
/// `"decreasing"` or `"stable"`; flat/none trends are not emitted).
#[derive(Debug, Clone)]
pub struct TrendWire {
    pub attr: String,
    pub class: String,
    pub trend: String,
    pub slope: f64,
    pub r_squared: f64,
}

impl PartialEq for TrendWire {
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr
            && self.class == other.class
            && self.trend == other.trend
            && feq(self.slope, other.slope)
            && feq(self.r_squared, other.r_squared)
    }
}

/// One exception entry (`kind` is `"high"` or `"low"`).
#[derive(Debug, Clone)]
pub struct ExceptionWire {
    pub attr: String,
    pub value: String,
    pub class: String,
    pub kind: String,
    pub confidence: f64,
    pub rest_confidence: f64,
    pub z: f64,
}

impl PartialEq for ExceptionWire {
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr
            && self.value == other.value
            && self.class == other.class
            && self.kind == other.kind
            && feq(self.confidence, other.confidence)
            && feq(self.rest_confidence, other.rest_confidence)
            && feq(self.z, other.z)
    }
}

/// One influence entry.
#[derive(Debug, Clone)]
pub struct InfluenceWire {
    pub attr: String,
    pub chi2: f64,
    pub p_value: f64,
    pub info_gain: f64,
}

impl PartialEq for InfluenceWire {
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr
            && feq(self.chi2, other.chi2)
            && feq(self.p_value, other.p_value)
            && feq(self.info_gain, other.info_gain)
    }
}

/// The general-impressions body (`/v1/gi`): same shape as legacy `/gi`.
#[derive(Debug, Clone, PartialEq)]
pub struct GiResponse {
    pub trends: Vec<TrendWire>,
    pub exceptions: Vec<ExceptionWire>,
    pub influence: Vec<InfluenceWire>,
    /// Present only on degraded partial answers (`allow_partial`); a
    /// full-coverage body omits the field entirely, keeping it
    /// byte-identical to the pre-coverage wire format.
    pub coverage: Option<CoverageWire>,
}

impl GiResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"trends\":[");
        for (i, t) in self.trends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"attr\":\"{}\",\"class\":\"{}\",\"trend\":\"{}\",\"slope\":{},\"r_squared\":{}}}",
                esc(&t.attr),
                esc(&t.class),
                esc(&t.trend),
                num(t.slope),
                num(t.r_squared)
            );
        }
        out.push_str("],\"exceptions\":[");
        for (i, e) in self.exceptions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"attr\":\"{}\",\"value\":\"{}\",\"class\":\"{}\",\"kind\":\"{}\",\"confidence\":{},\"rest_confidence\":{},\"z\":{}}}",
                esc(&e.attr),
                esc(&e.value),
                esc(&e.class),
                esc(&e.kind),
                num(e.confidence),
                num(e.rest_confidence),
                num(e.z)
            );
        }
        out.push_str("],\"influence\":[");
        for (i, r) in self.influence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"attr\":\"{}\",\"chi2\":{},\"p_value\":{},\"info_gain\":{}}}",
                esc(&r.attr),
                num(r.chi2),
                num(r.p_value),
                num(r.info_gain)
            );
        }
        out.push(']');
        if let Some(cov) = &self.coverage {
            out.push_str(",\"coverage\":");
            cov.encode_into(&mut out);
        }
        out.push('}');
        out
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let trends = req_arr(v, "trends")?
            .iter()
            .map(|t| {
                Ok(TrendWire {
                    attr: req_str(t, "attr")?,
                    class: req_str(t, "class")?,
                    trend: req_str(t, "trend")?,
                    slope: req_f64(t, "slope")?,
                    r_squared: req_f64(t, "r_squared")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let exceptions = req_arr(v, "exceptions")?
            .iter()
            .map(|e| {
                Ok(ExceptionWire {
                    attr: req_str(e, "attr")?,
                    value: req_str(e, "value")?,
                    class: req_str(e, "class")?,
                    kind: req_str(e, "kind")?,
                    confidence: req_f64(e, "confidence")?,
                    rest_confidence: req_f64(e, "rest_confidence")?,
                    z: req_f64(e, "z")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let influence = req_arr(v, "influence")?
            .iter()
            .map(|r| {
                Ok(InfluenceWire {
                    attr: req_str(r, "attr")?,
                    chi2: req_f64(r, "chi2")?,
                    p_value: req_f64(r, "p_value")?,
                    info_gain: req_f64(r, "info_gain")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(Self {
            trends,
            exceptions,
            influence,
            coverage: opt_coverage(v)?,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One value row of a one-dimensional slice.
#[derive(Debug, Clone)]
pub struct SliceValueWire {
    pub label: String,
    pub total: u64,
    /// Per-class counts, in `classes` order.
    pub counts: Vec<u64>,
    /// Per-class confidences; NaN encodes `null` (undefined on an empty
    /// value).
    pub confidences: Vec<f64>,
}

impl PartialEq for SliceValueWire {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.total == other.total
            && self.counts == other.counts
            && self.confidences.len() == other.confidences.len()
            && self
                .confidences
                .iter()
                .zip(&other.confidences)
                .all(|(a, b)| feq(*a, *b))
    }
}

/// One dimension header of a pair slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairDimWire {
    pub attr: String,
    pub labels: Vec<String>,
}

/// One non-zero cell of a pair slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCellWire {
    pub coords: [u64; 2],
    pub class: u64,
    pub count: u64,
}

/// The cube-slice body (`/v1/cube/slice`): one-dimensional, or a pair
/// heatmap when `by` was given. Same shapes as legacy `/cube/slice`.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceResponse {
    OneDim {
        attr: String,
        total: u64,
        classes: Vec<String>,
        values: Vec<SliceValueWire>,
    },
    Pair {
        dims: Vec<PairDimWire>,
        classes: Vec<String>,
        total: u64,
        cells: Vec<PairCellWire>,
    },
}

impl SliceResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(1024);
        match self {
            SliceResponse::OneDim {
                attr,
                total,
                classes,
                values,
            } => {
                let _ = write!(
                    out,
                    "{{\"attr\":\"{}\",\"total\":{total},\"classes\":[",
                    esc(attr)
                );
                for (i, c) in classes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", esc(c));
                }
                out.push_str("],\"values\":[");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"label\":\"{}\",\"total\":{},\"counts\":[",
                        esc(&v.label),
                        v.total
                    );
                    for (j, n) in v.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{n}");
                    }
                    out.push_str("],\"confidences\":[");
                    for (j, cf) in v.confidences.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&num(*cf));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
            SliceResponse::Pair {
                dims,
                classes,
                total,
                cells,
            } => {
                out.push_str("{\"dims\":[");
                for (i, dim) in dims.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"attr\":\"{}\",\"labels\":[", esc(&dim.attr));
                    for (j, label) in dim.labels.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\"", esc(label));
                    }
                    out.push_str("]}");
                }
                out.push_str("],\"classes\":[");
                for (i, c) in classes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", esc(c));
                }
                let _ = write!(out, "],\"total\":{total},\"cells\":[");
                for (i, cell) in cells.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"coords\":[{},{}],\"class\":{},\"count\":{}}}",
                        // om-lint: allow(panic-path) — coords is a fixed [u64; 2]
                        cell.coords[0], cell.coords[1], cell.class, cell.count
                    );
                }
                out.push_str("]}");
            }
        }
        out
    }

    /// Decode either shape, dispatching on which fields are present.
    ///
    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("cells").is_some() {
            let dims = req_arr(v, "dims")?
                .iter()
                .map(|d| {
                    Ok(PairDimWire {
                        attr: req_str(d, "attr")?,
                        labels: decode_str_arr(d, "labels")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            let cells = req_arr(v, "cells")?
                .iter()
                .map(|cell| {
                    let coords = decode_u64_arr(cell, "coords")?;
                    let [a, b] = coords[..] else {
                        return Err("\"coords\" must hold exactly 2 entries".to_owned());
                    };
                    Ok(PairCellWire {
                        coords: [a, b],
                        class: req_u64(cell, "class")?,
                        count: req_u64(cell, "count")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            return Ok(SliceResponse::Pair {
                dims,
                classes: decode_str_arr(v, "classes")?,
                total: req_u64(v, "total")?,
                cells,
            });
        }
        let values = req_arr(v, "values")?
            .iter()
            .map(|value| {
                Ok(SliceValueWire {
                    label: req_str(value, "label")?,
                    total: req_u64(value, "total")?,
                    counts: decode_u64_arr(value, "counts")?,
                    confidences: decode_f64_arr(value, "confidences")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(SliceResponse::OneDim {
            attr: req_str(v, "attr")?,
            total: req_u64(v, "total")?,
            classes: decode_str_arr(v, "classes")?,
            values,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// The ingest acknowledgement (`/v1/ingest` and legacy `/ingest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestResponse {
    pub accepted: u64,
    pub rows_total: u64,
    pub generation: u64,
}

impl IngestResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "{{\"accepted\":{},\"rows_total\":{},\"generation\":{}}}",
            self.accepted, self.rows_total, self.generation
        )
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            accepted: req_u64(v, "accepted")?,
            rows_total: req_u64(v, "rows_total")?,
            generation: req_u64(v, "generation")?,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One item's outcome in a `/v1/compare/batch` response. The batch is
/// partial by design: per-item failures are enveloped in place, never
/// failing the sibling items.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItemResult {
    Compare(CompareResponse),
    Drill(DrillResponse),
    Error(ErrorEnvelope),
}

/// The `/v1/compare/batch` body: item outcomes in request order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    pub items: Vec<BatchItemResult>,
}

impl BatchResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"items\":[");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match item {
                BatchItemResult::Compare(r) => {
                    out.push_str("{\"compare\":");
                    r.encode_into(&mut out);
                    out.push('}');
                }
                BatchItemResult::Drill(r) => {
                    out.push_str("{\"drill\":");
                    r.encode_into(&mut out);
                    out.push('}');
                }
                BatchItemResult::Error(e) => out.push_str(&e.encode()),
            }
        }
        out.push_str("]}");
        out
    }

    /// # Errors
    /// A message describing the shape mismatch.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let items = req_arr(v, "items")?
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let decoded = if let Some(c) = item.get("compare") {
                    BatchItemResult::Compare(CompareResponse::from_json(c)?)
                } else if let Some(d) = item.get("drill") {
                    BatchItemResult::Drill(DrillResponse::from_json(d)?)
                } else if item.get("error").is_some() {
                    BatchItemResult::Error(ErrorEnvelope::from_json(item)?)
                } else {
                    return Err(format!(
                        "item {}: expected \"compare\", \"drill\" or \"error\"",
                        i + 1
                    ));
                };
                Ok(decoded)
            })
            .collect::<Result<_, String>>()?;
        Ok(Self { items })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;

    fn sample_explore() -> ExploreResponse {
        ExploreResponse {
            universe: 18_000,
            covered: 15_200,
            steps: 5,
            truncated: false,
            classes: vec!["ok".into(), "dropped".into()],
            summaries: vec![ExploreSummaryWire {
                conditions: vec![ExploreCondWire {
                    attr: "TimeOfCall".into(),
                    value: "morning".into(),
                }],
                support: 6_100,
                coverage: 6_100,
                confidences: vec![0.94, 0.06],
                side: None,
                mass: None,
            }],
            compare: None,
        }
    }

    #[test]
    fn explore_round_trips_plain() {
        let r = sample_explore();
        assert_eq!(
            r.encode(),
            "{\"universe\":18000,\"covered\":15200,\"steps\":5,\"truncated\":false,\
             \"classes\":[\"ok\",\"dropped\"],\"summaries\":[{\"conditions\":\
             [{\"attr\":\"TimeOfCall\",\"value\":\"morning\"}],\"support\":6100,\
             \"coverage\":6100,\"confidences\":[0.94,0.06]}]}"
        );
        assert_eq!(ExploreResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn explore_round_trips_compare_mode_and_truncation() {
        let mut r = sample_explore();
        r.truncated = true;
        r.summaries[0].side = Some(2);
        r.summaries[0].mass = Some(31.5);
        r.compare = Some(ExploreCompareWire {
            attribute: "PhoneModel".into(),
            value_1: "ph1".into(),
            value_2: "ph2".into(),
            swapped: true,
            class: "dropped".into(),
        });
        let body = r.encode();
        assert!(body.contains("\"truncated\":true"));
        assert!(body.contains("\"side\":2,\"mass\":31.5"));
        assert!(body.ends_with(
            "\"compare\":{\"attribute\":\"PhoneModel\",\"value_1\":\"ph1\",\
             \"value_2\":\"ph2\",\"swapped\":true,\"class\":\"dropped\"}}"
        ));
        assert_eq!(ExploreResponse::parse(&body).unwrap(), r);
    }

    fn sample_compare() -> CompareResponse {
        CompareResponse {
            attribute: "PhoneModel".into(),
            value_1: "ph1".into(),
            value_2: "ph2".into(),
            swapped: false,
            class: "dropped".into(),
            cf1: 0.02,
            cf2: 0.08,
            n1: 1000,
            n2: 900,
            ranked: vec![AttrScoreWire {
                attr: 3,
                name: "TimeOfCall".into(),
                score: 12.5,
                normalized: 0.9,
                property_p: 0,
                property_t: 3,
                property_ratio: 0.0,
                values: vec![ValueContributionWire {
                    value: "morning".into(),
                    n1: 300,
                    n2: 310,
                    x1: 5,
                    x2: 40,
                    cf1: Some(0.016_666_666_666_666_666),
                    cf2: None,
                    rcf1: 0.25,
                    rcf2: f64::NAN,
                    f: 0.1,
                    w: 31.0,
                }],
            }],
            property_attributes: vec![],
            coverage: None,
        }
    }

    #[test]
    fn compare_round_trips() {
        let r = sample_compare();
        assert_eq!(CompareResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn non_finite_floats_encode_null_and_compare_equal() {
        let mut r = sample_compare();
        r.cf1 = f64::INFINITY;
        let text = r.encode();
        assert!(text.contains("\"cf1\":null"));
        let back = CompareResponse::parse(&text).unwrap();
        assert!(back.cf1.is_nan());
        assert_eq!(back, r, "Inf and NaN are the same wire value");
    }

    #[test]
    fn drill_round_trips() {
        let r = DrillResponse {
            levels: vec![DrillLevelWire {
                conditions: vec!["TimeOfCall=morning".into()],
                result: sample_compare(),
            }],
        };
        assert_eq!(DrillResponse::parse(&r.encode()).unwrap(), r);
        assert!(r.encode().starts_with("{\"levels\":[{\"conditions\":["));
    }

    #[test]
    fn gi_round_trips() {
        let r = GiResponse {
            trends: vec![TrendWire {
                attr: "A".into(),
                class: "c".into(),
                trend: "increasing".into(),
                slope: 0.01,
                r_squared: 0.95,
            }],
            exceptions: vec![ExceptionWire {
                attr: "A".into(),
                value: "v".into(),
                class: "c".into(),
                kind: "high".into(),
                confidence: 0.3,
                rest_confidence: 0.1,
                z: 4.2,
            }],
            influence: vec![InfluenceWire {
                attr: "A".into(),
                chi2: 101.5,
                p_value: 0.0001,
                info_gain: 0.2,
            }],
            coverage: None,
        };
        assert_eq!(GiResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn coverage_round_trips_and_stays_off_full_answers() {
        let full = sample_compare();
        assert!(
            !full.encode().contains("coverage"),
            "full-coverage bodies must stay byte-identical to the legacy wire"
        );
        let mut partial = sample_compare();
        partial.coverage = Some(CoverageWire {
            partitions_total: 4,
            partitions_answered: 3,
            rows_covered_pct: 74.5,
            missing_partitions: vec![2],
            missing_shards: vec!["127.0.0.1:9102".into(), "127.0.0.1:9103".into()],
        });
        let text = partial.encode();
        assert!(text.contains("\"coverage\":{\"partitions_total\":4,\"partitions_answered\":3"));
        assert!(text.contains("\"missing_partitions\":[2]"));
        let back = CompareResponse::parse(&text).unwrap();
        assert_eq!(back, partial);
        assert_ne!(back, full);
    }

    #[test]
    fn slices_round_trip_both_shapes() {
        let one = SliceResponse::OneDim {
            attr: "A".into(),
            total: 10,
            classes: vec!["yes".into(), "no".into()],
            values: vec![SliceValueWire {
                label: "x".into(),
                total: 4,
                counts: vec![1, 3],
                confidences: vec![0.25, f64::NAN],
            }],
        };
        assert_eq!(SliceResponse::parse(&one.encode()).unwrap(), one);
        let pair = SliceResponse::Pair {
            dims: vec![
                PairDimWire {
                    attr: "A".into(),
                    labels: vec!["x".into()],
                },
                PairDimWire {
                    attr: "B".into(),
                    labels: vec!["y".into(), "z".into()],
                },
            ],
            classes: vec!["yes".into()],
            total: 7,
            cells: vec![PairCellWire {
                coords: [0, 1],
                class: 0,
                count: 7,
            }],
        };
        assert_eq!(SliceResponse::parse(&pair.encode()).unwrap(), pair);
    }

    #[test]
    fn ingest_round_trips() {
        let r = IngestResponse {
            accepted: 12,
            rows_total: 340,
            generation: 7,
        };
        assert_eq!(
            r.encode(),
            "{\"accepted\":12,\"rows_total\":340,\"generation\":7}"
        );
        assert_eq!(IngestResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn batch_round_trips_every_arm() {
        let r = BatchResponse {
            items: vec![
                BatchItemResult::Compare(sample_compare()),
                BatchItemResult::Drill(DrillResponse { levels: vec![] }),
                BatchItemResult::Error(ErrorEnvelope {
                    retry_after_ms: Some(1000),
                    ..ErrorEnvelope::new(ErrorCode::Overloaded, "out of budget")
                }),
            ],
        };
        assert_eq!(BatchResponse::parse(&r.encode()).unwrap(), r);
    }
}
