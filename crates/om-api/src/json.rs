//! A tiny JSON value type with a strict parser and a writer whose
//! formatting is byte-compatible with the hand-rolled encoders used by
//! the legacy endpoints (`om_compare::json` and om-server's router):
//! finite floats render via Rust's shortest round-trip `Display`,
//! non-finite floats render as `null`, and strings escape `"`, `\`,
//! `\n`, `\r`, `\t` plus all other control characters as `\u00XX`.
//!
//! Objects preserve insertion order, so encode(decode(s)) reproduces a
//! canonically-encoded document byte for byte.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64`; integers are exact up to
    /// 2^53, which comfortably covers every count this API carries.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (duplicates rejected by the
    /// parser).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte position plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escape a string for a JSON string literal (same rules as the legacy
/// encoders).
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float the way the legacy encoders do: shortest round-trip
/// representation, `null` for non-finite values (JSON has no NaN/Inf).
#[must_use]
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

impl Json {
    /// Strict parse: one value, nothing but whitespace after it.
    ///
    /// # Errors
    /// [`JsonError`] with the byte position of the first offense.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the JSON value"));
        }
        Ok(value)
    }

    /// Serialize canonically (insertion order, legacy float formatting).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&num(*x)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, with `null` reading as NaN (the encoding of a
    /// non-finite float).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// A non-negative integer that survived the f64 round trip exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escaped) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // \uXXXX with a low surrogate.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let mut value = 0u32;
        for &b in slice {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("malformed number bytes"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparsable number {text:?}")))?;
        Ok(Json::Num(value))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(Json::parse(&enc).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.encode(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn floats_format_like_the_legacy_encoders() {
        assert_eq!(Json::Num(0.5).encode(), "0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(num(2.0), "2");
    }

    #[test]
    fn escapes_match_legacy_rules() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_owned());
        assert_eq!(v.encode(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn unicode_and_surrogates_parse() {
        assert_eq!(
            Json::parse("\"\\u00e9 caf\u{e9} \\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{e9} caf\u{e9} \u{1f600}".to_owned())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn strictness() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("nul").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = Json::parse("{\"a\" 1}").unwrap_err();
        assert_eq!(e.pos, 5);
        assert!(e.to_string().contains("byte 5"));
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"nil\":null}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("nil").unwrap().as_f64().unwrap().is_nan());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
