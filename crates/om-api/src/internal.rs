//! Wire types for the shard-internal `/internal/*` endpoints.
//!
//! A cluster coordinator drives its shards over plain HTTP, and the
//! payloads it moves — encoded cube stores, encoded (zero-row) schema
//! datasets — are binary. JSON carries them as standard base64 strings,
//! encoded and decoded here so both sides of the protocol share one
//! implementation. These endpoints are *not* part of the public `/v1`
//! contract: they are versioned implicitly by the store/dataset codecs
//! (whose magic headers reject foreign bytes) and served only by engine
//! shards, never by a coordinator.

use crate::de::{check_keys, req_arr, req_str, req_u64};
use crate::json::Json;

const B64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 (RFC 4648, with padding) of `bytes`.
#[must_use]
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        // om-lint: allow(panic-path) — chunks(3) never yields an empty slice
        let b0 = u32::from(chunk[0]);
        let b1 = chunk.get(1).copied().map(u32::from);
        let b2 = chunk.get(2).copied().map(u32::from);
        let word = (b0 << 16) | (b1.unwrap_or(0) << 8) | b2.unwrap_or(0);
        // om-lint: allow(panic-path) — & 0x3f keeps the index < 64 == alphabet length
        let sextet = |shift: u32| B64_ALPHABET[((word >> shift) & 0x3f) as usize] as char;
        out.push(sextet(18));
        out.push(sextet(12));
        out.push(if b1.is_some() { sextet(6) } else { '=' });
        out.push(if b2.is_some() { sextet(0) } else { '=' });
    }
    out
}

/// Decode standard base64 (RFC 4648; padding required, no whitespace).
///
/// # Errors
/// A message naming the first offending byte or length problem.
pub fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (group_idx, group) in bytes.chunks(4).enumerate() {
        let last_group = (group_idx + 1) * 4 == bytes.len();
        let mut word: u32 = 0;
        let mut pad = 0usize;
        for (i, &b) in group.iter().enumerate() {
            let value = if b == b'=' {
                if !last_group || i < 2 {
                    return Err("unexpected '=' padding inside base64".to_owned());
                }
                pad += 1;
                0
            } else {
                if pad > 0 {
                    return Err("base64 data after '=' padding".to_owned());
                }
                match B64_ALPHABET.iter().position(|&a| a == b) {
                    Some(v) => v as u32,
                    None => return Err(format!("invalid base64 byte 0x{b:02x}")),
                }
            };
            word = (word << 6) | value;
        }
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

/// One resolved drill condition on the internal wire: `attr = value` by
/// schema index and value id (names were resolved at the coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionWire {
    pub attr: u64,
    pub value: u64,
}

fn conditions_json(conditions: &[ConditionWire]) -> Json {
    Json::Arr(
        conditions
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    #[allow(clippy::cast_precision_loss)]
                    ("attr".to_owned(), Json::Num(c.attr as f64)),
                    #[allow(clippy::cast_precision_loss)]
                    ("value".to_owned(), Json::Num(c.value as f64)),
                ])
            })
            .collect(),
    )
}

fn conditions_from(v: &Json, key: &str) -> Result<Vec<ConditionWire>, String> {
    req_arr(v, key)?
        .iter()
        .map(|c| {
            check_keys(c, &["attr", "value"])?;
            Ok(ConditionWire {
                attr: req_u64(c, "attr")?,
                value: req_u64(c, "value")?,
            })
        })
        .collect()
}

/// `GET /internal/schema` — the shard's schema as an encoded zero-row
/// dataset (schema + domains, no records), base64 of the om-data codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalSchemaResponse {
    pub dataset_b64: String,
}

impl InternalSchemaResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![(
            "dataset".to_owned(),
            Json::Str(self.dataset_b64.clone()),
        )])
        .encode()
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["dataset"])?;
        Ok(Self {
            dataset_b64: req_str(&v, "dataset")?,
        })
    }
}

/// `GET /internal/generation` (and `POST /internal/flush`) — the shard's
/// currently published store generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalGenerationResponse {
    pub generation: u64,
}

impl InternalGenerationResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        format!("{{\"generation\":{}}}", self.generation)
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["generation"])?;
        Ok(Self {
            generation: req_u64(&v, "generation")?,
        })
    }
}

/// `GET /internal/store?expect=G` — the shard's full cube store at the
/// pinned generation `G` (base64 of the om-cube store codec). A shard
/// whose published generation moved past `G` answers `409` instead, and
/// the coordinator re-pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalStoreResponse {
    pub generation: u64,
    pub store_b64: String,
}

impl InternalStoreResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            #[allow(clippy::cast_precision_loss)]
            ("generation".to_owned(), Json::Num(self.generation as f64)),
            ("store".to_owned(), Json::Str(self.store_b64.clone())),
        ])
        .encode()
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["generation", "store"])?;
        Ok(Self {
            generation: req_u64(&v, "generation")?,
            store_b64: req_str(&v, "store")?,
        })
    }
}

/// `POST /internal/level` — build the restricted drill-level store over
/// the shard's *base* partition narrowed by `conditions`, counting only
/// `attrs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalLevelRequest {
    pub conditions: Vec<ConditionWire>,
    pub attrs: Vec<u64>,
}

impl InternalLevelRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("conditions".to_owned(), conditions_json(&self.conditions)),
            (
                "attrs".to_owned(),
                Json::Arr(
                    self.attrs
                        .iter()
                        .map(|&a| {
                            #[allow(clippy::cast_precision_loss)]
                            Json::Num(a as f64)
                        })
                        .collect(),
                ),
            ),
        ])
        .encode()
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["conditions", "attrs"])?;
        let attrs = req_arr(&v, "attrs")?
            .iter()
            .map(|a| {
                a.as_u64()
                    .ok_or_else(|| "attrs must be non-negative integers".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            conditions: conditions_from(&v, "conditions")?,
            attrs,
        })
    }
}

/// Response to [`InternalLevelRequest`]: the restricted store (base64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalLevelResponse {
    pub store_b64: String,
}

impl InternalLevelResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![("store".to_owned(), Json::Str(self.store_b64.clone()))]).encode()
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["store"])?;
        Ok(Self {
            store_b64: req_str(&v, "store")?,
        })
    }
}

/// `POST /internal/count` — how many base-partition records satisfy all
/// of `conditions` (the coordinator's sub-population emptiness probe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalCountRequest {
    pub conditions: Vec<ConditionWire>,
}

impl InternalCountRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![(
            "conditions".to_owned(),
            conditions_json(&self.conditions),
        )])
        .encode()
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["conditions"])?;
        Ok(Self {
            conditions: conditions_from(&v, "conditions")?,
        })
    }
}

/// Response to [`InternalCountRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalCountResponse {
    pub count: u64,
}

impl InternalCountResponse {
    #[must_use]
    pub fn encode(&self) -> String {
        format!("{{\"count\":{}}}", self.count)
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        check_keys(&v, &["count"])?;
        Ok(Self {
            count: req_u64(&v, "count")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips() {
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let text = b64_encode(&bytes);
            assert_eq!(b64_decode(&text).unwrap(), bytes, "len={len}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(b64_decode("Zm9vYmE=").unwrap(), b"fooba");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(b64_decode("abc").is_err()); // bad length
        assert!(b64_decode("ab!=").is_err()); // bad byte
        assert!(b64_decode("a=bc").is_err()); // data after padding
        assert!(b64_decode("=abc").is_err()); // padding up front
    }

    #[test]
    fn wire_types_round_trip() {
        let level = InternalLevelRequest {
            conditions: vec![
                ConditionWire { attr: 3, value: 1 },
                ConditionWire { attr: 0, value: 9 },
            ],
            attrs: vec![0, 2, 5],
        };
        assert_eq!(
            InternalLevelRequest::parse(&level.encode()).unwrap(),
            level
        );
        let count = InternalCountRequest {
            conditions: level.conditions.clone(),
        };
        assert_eq!(InternalCountRequest::parse(&count.encode()).unwrap(), count);
        let store = InternalStoreResponse {
            generation: 7,
            store_b64: b64_encode(b"store bytes"),
        };
        assert_eq!(
            InternalStoreResponse::parse(&store.encode()).unwrap(),
            store
        );
        let generation = InternalGenerationResponse { generation: 12 };
        assert_eq!(
            InternalGenerationResponse::parse(&generation.encode()).unwrap(),
            generation
        );
        let schema = InternalSchemaResponse {
            dataset_b64: b64_encode(b"dataset"),
        };
        assert_eq!(
            InternalSchemaResponse::parse(&schema.encode()).unwrap(),
            schema
        );
        let level_resp = InternalLevelResponse {
            store_b64: b64_encode(b"level"),
        };
        assert_eq!(
            InternalLevelResponse::parse(&level_resp.encode()).unwrap(),
            level_resp
        );
        let count_resp = InternalCountResponse { count: 41 };
        assert_eq!(
            InternalCountResponse::parse(&count_resp.encode()).unwrap(),
            count_resp
        );
    }

    #[test]
    fn strict_parsing_rejects_unknown_fields() {
        assert!(InternalCountResponse::parse("{\"count\":1,\"x\":2}").is_err());
        assert!(InternalGenerationResponse::parse("{}").is_err());
    }
}
