//! Shared strict-decoding helpers: required/optional typed fields plus
//! unknown-key rejection, all with field-naming error messages.

use crate::json::Json;

/// Reject any key outside `allowed` (typo safety for requests).
pub(crate) fn check_keys(v: &Json, allowed: &[&str]) -> Result<(), String> {
    let pairs = v.as_obj().ok_or("expected a JSON object")?;
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown field {k:?}"));
        }
    }
    Ok(())
}

pub(crate) fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

pub(crate) fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(str::to_owned)
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

pub(crate) fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

pub(crate) fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

/// A required float; JSON `null` reads as NaN (the wire form of a
/// non-finite value).
pub(crate) fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field {key:?}"))
}

pub(crate) fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

pub(crate) fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a boolean")),
    }
}

pub(crate) fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

pub(crate) fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}
