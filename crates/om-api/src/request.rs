//! Typed `/v1` request bodies.
//!
//! Field names mirror the legacy GET query parameters (`attr`, `v1`,
//! `v2`, `class`, `depth`, `min_score`, `top`, `by`), so migrating a
//! client is a mechanical move from the query string into a JSON body.

use crate::de::{check_keys, opt_bool, opt_f64, opt_str, opt_u64, req_arr, req_str, req_u64};
use crate::json::Json;

#[allow(clippy::cast_precision_loss)]
fn num_u64(x: u64) -> Json {
    Json::Num(x as f64)
}

/// `POST /v1/compare` — one comparison by names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareRequest {
    pub attr: String,
    pub v1: String,
    pub v2: String,
    pub class: String,
    /// Opt in to a degraded partial answer when part of a cluster is
    /// unreachable: instead of a blanket `503`, the response covers the
    /// live partitions and carries a `coverage` envelope. Absent (the
    /// default) keeps today's all-or-nothing semantics; single-node
    /// servers always answer with full coverage either way.
    pub allow_partial: Option<bool>,
}

impl CompareRequest {
    fn fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![
            ("attr".to_owned(), Json::Str(self.attr.clone())),
            ("v1".to_owned(), Json::Str(self.v1.clone())),
            ("v2".to_owned(), Json::Str(self.v2.clone())),
            ("class".to_owned(), Json::Str(self.class.clone())),
        ];
        if let Some(allow) = self.allow_partial {
            fields.push(("allow_partial".to_owned(), Json::Bool(allow)));
        }
        fields
    }

    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(self.fields()).encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["attr", "v1", "v2", "class", "allow_partial"])?;
        Ok(Self {
            attr: req_str(v, "attr")?,
            v1: req_str(v, "v1")?,
            v2: req_str(v, "v2")?,
            class: req_str(v, "class")?,
            allow_partial: opt_bool(v, "allow_partial")?,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One fixed drill condition: `attr = value`, both by label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    pub attr: String,
    pub value: String,
}

impl PathStep {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("attr".to_owned(), Json::Str(self.attr.clone())),
            ("value".to_owned(), Json::Str(self.value.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["attr", "value"])?;
        Ok(Self {
            attr: req_str(v, "attr")?,
            value: req_str(v, "value")?,
        })
    }
}

/// `POST /v1/drill` — drill-down from a named comparison.
///
/// With an empty `path` the walk is automated (condition on each
/// level's top finding, exactly the legacy `/drill`); a non-empty
/// `path` fixes the conditions instead: level *i* is the comparison
/// conditioned on `path[..i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillRequest {
    pub attr: String,
    pub v1: String,
    pub v2: String,
    pub class: String,
    /// Maximum automated depth; server default when absent.
    pub depth: Option<u64>,
    /// Minimum normalized score to keep descending; server default
    /// when absent.
    pub min_score: Option<f64>,
    pub path: Vec<PathStep>,
}

impl DrillRequest {
    /// The request's fields in canonical encode order, reused by the
    /// batch encoder to inline a drill item without a re-parse.
    fn fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![
            ("attr".to_owned(), Json::Str(self.attr.clone())),
            ("v1".to_owned(), Json::Str(self.v1.clone())),
            ("v2".to_owned(), Json::Str(self.v2.clone())),
            ("class".to_owned(), Json::Str(self.class.clone())),
        ];
        if let Some(depth) = self.depth {
            fields.push(("depth".to_owned(), num_u64(depth)));
        }
        if let Some(min_score) = self.min_score {
            fields.push(("min_score".to_owned(), Json::Num(min_score)));
        }
        if !self.path.is_empty() {
            fields.push((
                "path".to_owned(),
                Json::Arr(self.path.iter().map(PathStep::to_json).collect()),
            ));
        }
        fields
    }

    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(self.fields()).encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(
            v,
            &["attr", "v1", "v2", "class", "depth", "min_score", "path"],
        )?;
        let path = match v.get("path") {
            None | Some(Json::Null) => Vec::new(),
            Some(p) => p
                .as_arr()
                .ok_or("field \"path\" must be an array")?
                .iter()
                .map(PathStep::from_json)
                .collect::<Result<_, _>>()?,
        };
        Ok(Self {
            attr: req_str(v, "attr")?,
            v1: req_str(v, "v1")?,
            v2: req_str(v, "v2")?,
            class: req_str(v, "class")?,
            depth: opt_u64(v, "depth")?,
            min_score: opt_f64(v, "min_score")?,
            path,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// `POST /v1/gi` — the general-impressions report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GiRequest {
    /// Entries per section (exceptions, influence); server default when
    /// absent.
    pub top: Option<u64>,
    /// Opt in to a degraded partial report when part of a cluster is
    /// unreachable (see [`CompareRequest::allow_partial`]).
    pub allow_partial: Option<bool>,
}

impl GiRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut fields = Vec::new();
        if let Some(top) = self.top {
            fields.push(("top".to_owned(), num_u64(top)));
        }
        if let Some(allow) = self.allow_partial {
            fields.push(("allow_partial".to_owned(), Json::Bool(allow)));
        }
        Json::Obj(fields).encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["top", "allow_partial"])?;
        Ok(Self {
            top: opt_u64(v, "top")?,
            allow_partial: opt_bool(v, "allow_partial")?,
        })
    }

    /// Parse, accepting an empty body as the default request.
    ///
    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.trim().is_empty() {
            return Ok(Self::default());
        }
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// `POST /v1/cube/slice` — a one-dimensional cube slice, or a pair
/// slice when `by` is given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceRequest {
    pub attr: String,
    pub by: Option<String>,
}

impl SliceRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        let mut fields = vec![("attr".to_owned(), Json::Str(self.attr.clone()))];
        if let Some(by) = &self.by {
            fields.push(("by".to_owned(), Json::Str(by.clone())));
        }
        Json::Obj(fields).encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["attr", "by"])?;
        Ok(Self {
            attr: req_str(v, "attr")?,
            by: opt_str(v, "by")?,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// `POST /v1/ingest` — typed live rows: each row is every attribute's
/// value label (class included) in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestRequest {
    pub rows: Vec<Vec<String>>,
}

impl IngestRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![(
            "rows".to_owned(),
            Json::Arr(
                self.rows
                    .iter()
                    .map(|row| {
                        Json::Arr(row.iter().map(|f| Json::Str(f.clone())).collect())
                    })
                    .collect(),
            ),
        )])
        .encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["rows"])?;
        let rows = req_arr(v, "rows")?
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.as_arr()
                    .ok_or_else(|| format!("row {} must be an array of strings", i + 1))?
                    .iter()
                    .map(|f| {
                        f.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| format!("row {} has a non-string field", i + 1))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { rows })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One item of a `/v1/compare/batch` request.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItemRequest {
    /// `{"kind":"compare", ...CompareRequest, "budget_ms":N?}`
    Compare {
        req: CompareRequest,
        budget_ms: Option<u64>,
    },
    /// `{"kind":"drill", ...DrillRequest, "budget_ms":N?}`
    Drill {
        req: DrillRequest,
        budget_ms: Option<u64>,
    },
}

impl BatchItemRequest {
    fn to_json(&self) -> Json {
        match self {
            BatchItemRequest::Compare { req, budget_ms } => {
                let mut fields =
                    vec![("kind".to_owned(), Json::Str("compare".to_owned()))];
                fields.extend(req.fields());
                if let Some(ms) = budget_ms {
                    fields.push(("budget_ms".to_owned(), num_u64(*ms)));
                }
                Json::Obj(fields)
            }
            BatchItemRequest::Drill { req, budget_ms } => {
                // Reuse DrillRequest's canonical field order, with the
                // kind tag prepended and the budget appended.
                let mut fields = vec![("kind".to_owned(), Json::Str("drill".to_owned()))];
                fields.extend(req.fields());
                if let Some(ms) = budget_ms {
                    fields.push(("budget_ms".to_owned(), num_u64(*ms)));
                }
                Json::Obj(fields)
            }
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let kind = req_str(v, "kind")?;
        let budget_ms = opt_u64(v, "budget_ms")?;
        // Strip the batch-only fields, then decode as the plain request.
        let pairs = v.as_obj().ok_or("expected a JSON object")?;
        let stripped = Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "kind" && k != "budget_ms")
                .cloned()
                .collect(),
        );
        match kind.as_str() {
            "compare" => Ok(BatchItemRequest::Compare {
                req: CompareRequest::from_json(&stripped)?,
                budget_ms,
            }),
            "drill" => Ok(BatchItemRequest::Drill {
                req: DrillRequest::from_json(&stripped)?,
                budget_ms,
            }),
            other => Err(format!(
                "unknown item kind {other:?} (expected \"compare\" or \"drill\")"
            )),
        }
    }
}

/// `POST /v1/compare/batch` — many comparison/drill items answered in
/// one request, with shared-scan batching server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    pub items: Vec<BatchItemRequest>,
}

impl BatchRequest {
    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(vec![(
            "items".to_owned(),
            Json::Arr(self.items.iter().map(BatchItemRequest::to_json).collect()),
        )])
        .encode()
    }

    /// # Errors
    /// A message naming the malformed item or field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["items"])?;
        let items = req_arr(v, "items")?
            .iter()
            .enumerate()
            .map(|(i, item)| {
                BatchItemRequest::from_json(item).map_err(|e| format!("item {}: {e}", i + 1))
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { items })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// The comparison block of an [`ExploreRequest`]: anchors
/// `explore_compare` mode. Field names match `/v1/compare`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreCompareBlock {
    pub attr: String,
    pub v1: String,
    pub v2: String,
    pub class: String,
}

impl ExploreCompareBlock {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("attr".to_owned(), Json::Str(self.attr.clone())),
            ("v1".to_owned(), Json::Str(self.v1.clone())),
            ("v2".to_owned(), Json::Str(self.v2.clone())),
            ("class".to_owned(), Json::Str(self.class.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["attr", "v1", "v2", "class"])?;
        Ok(Self {
            attr: req_str(v, "attr")?,
            v1: req_str(v, "v1")?,
            v2: req_str(v, "v2")?,
            class: req_str(v, "class")?,
        })
    }
}

/// `POST /v1/explore` — smart drill-down: top-k rule summaries by
/// weighted coverage over an optional slice, or — with `compare` —
/// over both compared sub-populations, interleaved by distinguishing
/// mass. `slice` and `compare` are mutually exclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreRequest {
    /// Conditions restricting the explored population (at most one —
    /// the store answers one- and two-dimensional conjunctions
    /// exactly). Empty = whole population.
    pub slice: Vec<PathStep>,
    /// Number of summaries to return.
    pub k: u64,
    /// Widest conjunction per summary, slice included; server default
    /// (2) when absent.
    pub max_conditions: Option<u64>,
    /// Per-request budget; the server narrows its own deadline to this,
    /// returning a `truncated` partial when it expires mid-run.
    pub budget_ms: Option<u64>,
    /// Switch to `explore_compare` mode.
    pub compare: Option<ExploreCompareBlock>,
}

impl ExploreRequest {
    fn fields(&self) -> Vec<(String, Json)> {
        let mut fields = Vec::new();
        if !self.slice.is_empty() {
            fields.push((
                "slice".to_owned(),
                Json::Arr(self.slice.iter().map(PathStep::to_json).collect()),
            ));
        }
        fields.push(("k".to_owned(), num_u64(self.k)));
        if let Some(mc) = self.max_conditions {
            fields.push(("max_conditions".to_owned(), num_u64(mc)));
        }
        if let Some(ms) = self.budget_ms {
            fields.push(("budget_ms".to_owned(), num_u64(ms)));
        }
        if let Some(cmp) = &self.compare {
            fields.push(("compare".to_owned(), cmp.to_json()));
        }
        fields
    }

    #[must_use]
    pub fn encode(&self) -> String {
        Json::Obj(self.fields()).encode()
    }

    /// # Errors
    /// A message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        check_keys(v, &["slice", "k", "max_conditions", "budget_ms", "compare"])?;
        let slice = match v.get("slice") {
            None | Some(Json::Null) => Vec::new(),
            Some(s) => s
                .as_arr()
                .ok_or("field \"slice\" must be an array")?
                .iter()
                .map(PathStep::from_json)
                .collect::<Result<_, _>>()?,
        };
        let compare = match v.get("compare") {
            None | Some(Json::Null) => None,
            Some(c) => Some(ExploreCompareBlock::from_json(c)?),
        };
        Ok(Self {
            slice,
            k: req_u64(v, "k")?,
            max_conditions: opt_u64(v, "max_conditions")?,
            budget_ms: opt_u64(v, "budget_ms")?,
            compare,
        })
    }

    /// # Errors
    /// A message describing the parse or shape failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_round_trips() {
        let r = CompareRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            allow_partial: None,
        };
        assert_eq!(
            r.encode(),
            "{\"attr\":\"PhoneModel\",\"v1\":\"ph1\",\"v2\":\"ph2\",\"class\":\"dropped\"}"
        );
        assert_eq!(CompareRequest::parse(&r.encode()).unwrap(), r);

        let partial = CompareRequest {
            allow_partial: Some(true),
            ..r
        };
        assert!(partial.encode().ends_with("\"allow_partial\":true}"));
        assert_eq!(CompareRequest::parse(&partial.encode()).unwrap(), partial);
        assert!(
            CompareRequest::parse("{\"attr\":\"a\",\"v1\":\"1\",\"v2\":\"2\",\"class\":\"c\",\"allow_partial\":1}")
                .unwrap_err()
                .contains("boolean")
        );
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(CompareRequest::parse(
            "{\"attr\":\"a\",\"v1\":\"1\",\"v2\":\"2\",\"class\":\"c\",\"oops\":1}"
        )
        .unwrap_err()
        .contains("oops"));
    }

    #[test]
    fn drill_round_trips_with_and_without_extras() {
        let bare = DrillRequest {
            attr: "A".into(),
            v1: "x".into(),
            v2: "y".into(),
            class: "c".into(),
            depth: None,
            min_score: None,
            path: Vec::new(),
        };
        assert_eq!(DrillRequest::parse(&bare.encode()).unwrap(), bare);
        let full = DrillRequest {
            depth: Some(3),
            min_score: Some(0.05),
            path: vec![PathStep {
                attr: "B".into(),
                value: "v".into(),
            }],
            ..bare
        };
        assert_eq!(DrillRequest::parse(&full.encode()).unwrap(), full);
    }

    #[test]
    fn gi_accepts_empty_body() {
        let bare = GiRequest {
            top: None,
            allow_partial: None,
        };
        assert_eq!(GiRequest::parse("").unwrap(), bare);
        assert_eq!(GiRequest::parse("{}").unwrap(), bare);
        let r = GiRequest {
            top: Some(5),
            allow_partial: Some(true),
        };
        assert_eq!(GiRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn slice_round_trips() {
        for by in [None, Some("Other".to_owned())] {
            let r = SliceRequest {
                attr: "A".into(),
                by,
            };
            assert_eq!(SliceRequest::parse(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn ingest_rows_round_trip() {
        let r = IngestRequest {
            rows: vec![
                vec!["red".into(), "lo, hi".into(), "yes".into()],
                vec!["blue".into(), "1.5".into(), "no".into()],
            ],
        };
        assert_eq!(IngestRequest::parse(&r.encode()).unwrap(), r);
        assert!(IngestRequest::parse("{\"rows\":[[1]]}").is_err());
        assert!(IngestRequest::parse("{\"rows\":[\"flat\"]}")
            .unwrap_err()
            .contains("row 1"));
    }

    #[test]
    fn batch_round_trips_both_kinds() {
        let r = BatchRequest {
            items: vec![
                BatchItemRequest::Compare {
                    req: CompareRequest {
                        attr: "A".into(),
                        v1: "x".into(),
                        v2: "y".into(),
                        class: "c".into(),
                        allow_partial: None,
                    },
                    budget_ms: Some(250),
                },
                BatchItemRequest::Drill {
                    req: DrillRequest {
                        attr: "A".into(),
                        v1: "x".into(),
                        v2: "y".into(),
                        class: "c".into(),
                        depth: Some(2),
                        min_score: None,
                        path: vec![PathStep {
                            attr: "B".into(),
                            value: "v".into(),
                        }],
                    },
                    budget_ms: None,
                },
            ],
        };
        assert_eq!(BatchRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn explore_round_trips_every_shape() {
        let bare = ExploreRequest {
            slice: Vec::new(),
            k: 5,
            max_conditions: None,
            budget_ms: None,
            compare: None,
        };
        assert_eq!(bare.encode(), "{\"k\":5}");
        assert_eq!(ExploreRequest::parse(&bare.encode()).unwrap(), bare);

        let sliced = ExploreRequest {
            slice: vec![PathStep {
                attr: "PhoneModel".into(),
                value: "ph2".into(),
            }],
            max_conditions: Some(2),
            budget_ms: Some(250),
            ..bare.clone()
        };
        assert_eq!(ExploreRequest::parse(&sliced.encode()).unwrap(), sliced);

        let compare = ExploreRequest {
            compare: Some(ExploreCompareBlock {
                attr: "PhoneModel".into(),
                v1: "ph1".into(),
                v2: "ph2".into(),
                class: "dropped".into(),
            }),
            ..bare
        };
        assert_eq!(ExploreRequest::parse(&compare.encode()).unwrap(), compare);
    }

    #[test]
    fn explore_rejects_malformed_fields() {
        assert!(ExploreRequest::parse("{}").unwrap_err().contains('k'));
        assert!(ExploreRequest::parse("{\"k\":5,\"oops\":1}")
            .unwrap_err()
            .contains("oops"));
        assert!(ExploreRequest::parse("{\"k\":5,\"slice\":\"x\"}")
            .unwrap_err()
            .contains("slice"));
        assert!(ExploreRequest::parse("{\"k\":5,\"compare\":{\"attr\":\"a\"}}").is_err());
    }

    #[test]
    fn batch_names_the_offending_item() {
        let bad = "{\"items\":[{\"kind\":\"compare\",\"attr\":\"a\",\"v1\":\"1\",\
                   \"v2\":\"2\",\"class\":\"c\"},{\"kind\":\"teleport\"}]}";
        assert!(BatchRequest::parse(bad).unwrap_err().contains("item 2"));
    }
}
