//! Property tests: every om-api wire type satisfies
//! `parse(encode(x)) == x`, including non-finite floats (which all
//! collapse to the single wire value `null`) and arbitrary Unicode in
//! every string position.

use om_api::{
    AttrScoreWire, BatchItemRequest, BatchItemResult, BatchRequest, BatchResponse, CompareRequest,
    CompareResponse, CoverageWire, DrillLevelWire, DrillRequest, DrillResponse, ErrorCode,
    ErrorEnvelope, ExceptionWire, GiRequest, GiResponse, InfluenceWire, IngestRequest,
    IngestResponse,
    PairCellWire, PairDimWire, PathStep, SliceRequest, SliceResponse, SliceValueWire, TrendWire,
    ValueContributionWire,
};
use proptest::prelude::*;

/// Arbitrary Unicode (quotes, backslashes, control and astral-plane
/// chars included), kept short so the cases stay fast.
fn label() -> impl Strategy<Value = String> {
    collection::vec(0u32..0x11_0000, 0..12)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

/// Finite or non-finite; the wire encodes every non-finite as `null`.
fn float() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e12..1.0e12f64,
        1 => Just(f64::NAN),
        1 => prop_oneof![Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
    ]
}

/// Counts: u64 on the wire, but JSON numbers are only exact to 2^53,
/// and real counts fit comfortably in u32.
fn count() -> impl Strategy<Value = u64> {
    0..u64::from(u32::MAX)
}

fn coin() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn value_contribution() -> impl Strategy<Value = ValueContributionWire> {
    (
        label(),
        (count(), count(), count(), count()),
        proptest::option::of(float()),
        proptest::option::of(float()),
        (float(), float(), float(), float()),
    )
        .prop_map(|(value, (n1, n2, x1, x2), cf1, cf2, (rcf1, rcf2, f, w))| {
            ValueContributionWire {
                value,
                n1,
                n2,
                x1,
                x2,
                cf1,
                cf2,
                rcf1,
                rcf2,
                f,
                w,
            }
        })
}

fn attr_score() -> impl Strategy<Value = AttrScoreWire> {
    (
        count(),
        label(),
        (float(), float(), float()),
        count(),
        count(),
        collection::vec(value_contribution(), 0..3),
    )
        .prop_map(
            |(attr, name, (score, normalized, property_ratio), property_p, property_t, values)| {
                AttrScoreWire {
                    attr,
                    name,
                    score,
                    normalized,
                    property_p,
                    property_t,
                    property_ratio,
                    values,
                }
            },
        )
}

fn coverage() -> impl Strategy<Value = CoverageWire> {
    (
        (count(), count()),
        float(),
        collection::vec(count(), 0..4),
        collection::vec(label(), 0..4),
    )
        .prop_map(
            |(
                (partitions_total, partitions_answered),
                rows_covered_pct,
                missing_partitions,
                missing_shards,
            )| CoverageWire {
                partitions_total,
                partitions_answered,
                rows_covered_pct,
                missing_partitions,
                missing_shards,
            },
        )
}

fn compare_response() -> impl Strategy<Value = CompareResponse> {
    (
        (label(), label(), label(), label()),
        coin(),
        (float(), float()),
        (count(), count()),
        (
            collection::vec(attr_score(), 0..3),
            collection::vec(attr_score(), 0..2),
        ),
        proptest::option::of(coverage()),
    )
        .prop_map(
            |(
                (attribute, value_1, value_2, class),
                swapped,
                (cf1, cf2),
                (n1, n2),
                (ranked, property_attributes),
                coverage,
            )| CompareResponse {
                attribute,
                value_1,
                value_2,
                swapped,
                class,
                cf1,
                cf2,
                n1,
                n2,
                ranked,
                property_attributes,
                coverage,
            },
        )
}

fn drill_response() -> impl Strategy<Value = DrillResponse> {
    collection::vec(
        (collection::vec(label(), 0..3), compare_response())
            .prop_map(|(conditions, result)| DrillLevelWire { conditions, result }),
        0..3,
    )
    .prop_map(|levels| DrillResponse { levels })
}

fn error_envelope() -> impl Strategy<Value = ErrorEnvelope> {
    (
        prop_oneof![
            Just(ErrorCode::BadRequest),
            Just(ErrorCode::BadRow),
            Just(ErrorCode::UnknownName),
            Just(ErrorCode::Invalid),
            Just(ErrorCode::NotFound),
            Just(ErrorCode::MethodNotAllowed),
            Just(ErrorCode::Overloaded),
            Just(ErrorCode::Internal),
        ],
        label(),
        proptest::option::of(count()),
        proptest::option::of(count()),
    )
        .prop_map(|(code, message, retry_after_ms, row)| ErrorEnvelope {
            code,
            message,
            retry_after_ms,
            row,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compare_request_round_trips(
        attr in label(), v1 in label(), v2 in label(), class in label(),
        allow_partial in proptest::option::of(coin()),
    ) {
        let r = CompareRequest { attr, v1, v2, class, allow_partial };
        prop_assert_eq!(CompareRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn drill_request_round_trips(
        attr in label(), v1 in label(), v2 in label(), class in label(),
        depth in proptest::option::of(0..32u64),
        min_score in proptest::option::of(-100.0..100.0f64),
        path in collection::vec(
            (label(), label()).prop_map(|(attr, value)| PathStep { attr, value }),
            0..3,
        ),
    ) {
        let r = DrillRequest { attr, v1, v2, class, depth, min_score, path };
        prop_assert_eq!(DrillRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn gi_and_slice_requests_round_trip(
        top in proptest::option::of(count()),
        allow_partial in proptest::option::of(coin()),
        attr in label(),
        by in proptest::option::of(label()),
    ) {
        let g = GiRequest { top, allow_partial };
        prop_assert_eq!(GiRequest::parse(&g.encode()).unwrap(), g);
        let s = SliceRequest { attr, by };
        prop_assert_eq!(SliceRequest::parse(&s.encode()).unwrap(), s);
    }

    #[test]
    fn ingest_request_round_trips(
        rows in collection::vec(collection::vec(label(), 0..4), 0..4),
    ) {
        let r = IngestRequest { rows };
        prop_assert_eq!(IngestRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn batch_request_round_trips(
        items in collection::vec(
            prop_oneof![
                ((label(), label(), label(), label()), proptest::option::of(count()))
                    .prop_map(|((attr, v1, v2, class), budget_ms)| BatchItemRequest::Compare {
                        req: CompareRequest { attr, v1, v2, class, allow_partial: None },
                        budget_ms,
                    }),
                ((label(), label(), label(), label()), proptest::option::of(0..8u64),
                 proptest::option::of(count()))
                    .prop_map(|((attr, v1, v2, class), depth, budget_ms)| BatchItemRequest::Drill {
                        req: DrillRequest {
                            attr, v1, v2, class, depth, min_score: None, path: vec![],
                        },
                        budget_ms,
                    }),
            ],
            0..4,
        ),
    ) {
        let r = BatchRequest { items };
        prop_assert_eq!(BatchRequest::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn compare_response_round_trips(r in compare_response()) {
        prop_assert_eq!(CompareResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn drill_response_round_trips(r in drill_response()) {
        prop_assert_eq!(DrillResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn gi_response_round_trips(
        trends in collection::vec(
            ((label(), label()), prop_oneof![
                Just("increasing".to_owned()),
                Just("decreasing".to_owned()),
                Just("stable".to_owned()),
            ], (float(), float()))
                .prop_map(|((attr, class), trend, (slope, r_squared))| TrendWire {
                    attr, class, trend, slope, r_squared,
                }),
            0..3,
        ),
        exceptions in collection::vec(
            ((label(), label(), label()),
             prop_oneof![Just("high".to_owned()), Just("low".to_owned())],
             (float(), float(), float()))
                .prop_map(|((attr, value, class), kind, (confidence, rest_confidence, z))| {
                    ExceptionWire { attr, value, class, kind, confidence, rest_confidence, z }
                }),
            0..3,
        ),
        influence in collection::vec(
            (label(), (float(), float(), float()))
                .prop_map(|(attr, (chi2, p_value, info_gain))| InfluenceWire {
                    attr, chi2, p_value, info_gain,
                }),
            0..3,
        ),
        coverage in proptest::option::of(coverage()),
    ) {
        let r = GiResponse { trends, exceptions, influence, coverage };
        prop_assert_eq!(GiResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn one_dim_slice_round_trips(
        attr in label(),
        total in count(),
        classes in collection::vec(label(), 0..3),
        values in collection::vec(
            (label(), count(),
             collection::vec(count(), 0..3),
             collection::vec(float(), 0..3))
                .prop_map(|(label, total, counts, confidences)| SliceValueWire {
                    label, total, counts, confidences,
                }),
            0..3,
        ),
    ) {
        let r = SliceResponse::OneDim { attr, total, classes, values };
        prop_assert_eq!(SliceResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn pair_slice_round_trips(
        dims in collection::vec(
            (label(), collection::vec(label(), 0..3))
                .prop_map(|(attr, labels)| PairDimWire { attr, labels }),
            0..3,
        ),
        classes in collection::vec(label(), 0..3),
        total in count(),
        cells in collection::vec(
            ((count(), count()), count(), count())
                .prop_map(|((a, b), class, count)| PairCellWire {
                    coords: [a, b], class, count,
                }),
            0..4,
        ),
    ) {
        let r = SliceResponse::Pair { dims, classes, total, cells };
        prop_assert_eq!(SliceResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn ingest_response_round_trips(
        accepted in count(), rows_total in count(), generation in count()
    ) {
        let r = IngestResponse { accepted, rows_total, generation };
        prop_assert_eq!(IngestResponse::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn error_envelope_round_trips(e in error_envelope()) {
        prop_assert_eq!(ErrorEnvelope::parse(&e.encode()).unwrap(), e);
    }

    #[test]
    fn batch_response_round_trips(
        items in collection::vec(
            prop_oneof![
                compare_response().prop_map(BatchItemResult::Compare),
                drill_response().prop_map(BatchItemResult::Drill),
                error_envelope().prop_map(BatchItemResult::Error),
            ],
            0..3,
        ),
    ) {
        let r = BatchResponse { items };
        prop_assert_eq!(BatchResponse::parse(&r.encode()).unwrap(), r);
    }
}
