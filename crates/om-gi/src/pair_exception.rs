//! Interaction exceptions over 3-D rule cubes.
//!
//! The 2-D exception miner ([`crate::exception`]) flags single values;
//! this module flags *cells* of the pair cubes whose class confidence
//! deviates from what the two attributes' individual effects predict
//! under a multiplicative (independent-odds) model:
//!
//! ```text
//! expected_cf(u, v) ≈ cf_row(u) · cf_col(v) / cf_overall
//! ```
//!
//! A significantly higher observed confidence marks an interaction — the
//! paper's running example (`PhoneModel = ph2 × TimeOfCall = morning`) is
//! exactly such a cell. This generalizes the paper's GI miner along the
//! lines of the Sarawagi-style discovery-driven exploration its related
//! work discusses, but on flat rule cubes with no aggregation hierarchy.

use om_cube::{CubeStore, RuleCube};
use om_fault::{Budget, FaultError};
use om_stats::proportion_margin;

/// Configuration for interaction-exception mining.
#[derive(Debug, Clone)]
pub struct PairExceptionConfig {
    /// Statistical confidence level for the deviation margin.
    pub level: f64,
    /// Minimum records in a cell.
    pub min_cell_count: u64,
    /// Required ratio of observed over expected confidence (beyond the
    /// margin) — filters trivia.
    pub min_lift: f64,
}

impl Default for PairExceptionConfig {
    fn default() -> Self {
        Self {
            level: 0.999,
            min_cell_count: 50,
            min_lift: 1.5,
        }
    }
}

/// One interaction exception.
#[derive(Debug, Clone, PartialEq)]
pub struct PairException {
    pub attr_a: usize,
    pub attr_a_name: String,
    pub value_a: u32,
    pub value_a_label: String,
    pub attr_b: usize,
    pub attr_b_name: String,
    pub value_b: u32,
    pub value_b_label: String,
    pub class: u32,
    pub class_label: String,
    /// Observed cell confidence.
    pub observed: f64,
    /// Expected confidence under the independent-odds model.
    pub expected: f64,
    /// `observed / expected`.
    pub lift: f64,
    /// Cell size.
    pub n: u64,
}

/// Mine interaction exceptions from one pair cube.
pub fn exceptions_in_pair(cube: &RuleCube, config: &PairExceptionConfig) -> Vec<PairException> {
    assert_eq!(cube.n_attr_dims(), 2, "pair cube required");
    let [dim_a, dim_b] = [&cube.dims()[0], &cube.dims()[1]];
    let card_a = dim_a.cardinality();
    let card_b = dim_b.cardinality();
    let n_classes = cube.n_classes();
    let total = cube.total();
    if total == 0 {
        return Vec::new();
    }

    // Marginals.
    let mut row_n = vec![0u64; card_a];
    let mut row_x = vec![vec![0u64; n_classes]; card_a];
    let mut col_n = vec![0u64; card_b];
    let mut col_x = vec![vec![0u64; n_classes]; card_b];
    let mut class_totals = vec![0u64; n_classes];
    for (coords, class, count) in cube.iter_cells() {
        let (a, b) = (coords[0] as usize, coords[1] as usize);
        row_n[a] += count;
        row_x[a][class as usize] += count;
        col_n[b] += count;
        col_x[b][class as usize] += count;
        class_totals[class as usize] += count;
    }

    let mut out = Vec::new();
    for a in 0..card_a {
        if row_n[a] == 0 {
            continue;
        }
        for b in 0..card_b {
            if col_n[b] == 0 {
                continue;
            }
            let cell_n = cube
                .cell_total(&[a as u32, b as u32])
                .expect("valid coords");
            if cell_n < config.min_cell_count {
                continue;
            }
            for c in 0..n_classes {
                let overall = class_totals[c] as f64 / total as f64;
                if overall <= 0.0 {
                    continue;
                }
                let cf_row = row_x[a][c] as f64 / row_n[a] as f64;
                let cf_col = col_x[b][c] as f64 / col_n[b] as f64;
                let expected = (cf_row * cf_col / overall).min(1.0);
                let observed = cube
                    .count(&[a as u32, b as u32], c as u32)
                    .expect("valid coords") as f64
                    / cell_n as f64;
                let margin = proportion_margin(observed, cell_n, config.level)
                    + proportion_margin(expected, cell_n, config.level);
                if observed > expected + margin
                    && (expected <= 0.0 || observed / expected >= config.min_lift)
                {
                    out.push(PairException {
                        attr_a: dim_a.attr_index,
                        attr_a_name: dim_a.name.clone(),
                        value_a: a as u32,
                        value_a_label: dim_a.labels[a].clone(),
                        attr_b: dim_b.attr_index,
                        attr_b_name: dim_b.name.clone(),
                        value_b: b as u32,
                        value_b_label: dim_b.labels[b].clone(),
                        class: c as u32,
                        class_label: cube.class_labels()[c].clone(),
                        observed,
                        expected,
                        lift: if expected > 0.0 {
                            observed / expected
                        } else {
                            f64::INFINITY
                        },
                        n: cell_n,
                    });
                }
            }
        }
    }
    out
}

/// Mine interaction exceptions across every pair cube in the store,
/// sorted by lift descending.
pub fn mine_pair_exceptions(
    store: &CubeStore,
    config: &PairExceptionConfig,
) -> Vec<PairException> {
    mine_pair_exceptions_budgeted(store, config, &Budget::unlimited())
        .expect("unlimited budget never trips")
}

/// [`mine_pair_exceptions`] under a cooperative [`Budget`]: this miner is
/// O(attrs²) in pair cubes, so the deadline is checked once per pair.
///
/// # Errors
/// [`FaultError`] when the budget expires or the request is cancelled.
pub fn mine_pair_exceptions_budgeted(
    store: &CubeStore,
    config: &PairExceptionConfig,
    budget: &Budget,
) -> Result<Vec<PairException>, FaultError> {
    budget.check()?;
    let attrs = store.attrs();
    let mut out = Vec::new();
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            budget.check()?;
            let cube = store.pair(a, b).expect("pair in store");
            out.extend(exceptions_in_pair(&cube, config));
        }
    }
    out.sort_by(|x, y| {
        y.lift
            .partial_cmp(&x.lift)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_synth::{generate_call_log, paper_scenario, CallLogConfig};

    #[test]
    fn finds_the_planted_interaction() {
        let (ds, truth) = paper_scenario(120_000, 55);
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        // The planted ph2×morning multiplier is 2.2, but under the
        // independent-odds expectation its measurable lift dilutes to
        // ~1.5 (ph2's marginal already absorbs part of the boost), which
        // straddles the default `min_lift` threshold depending on the
        // sampling noise of the seed. Mine with a slightly lower lift
        // floor so the test checks *detection of the planted cell*, not
        // the default threshold's knife edge; noise cells sit near 1.05
        // and stay excluded.
        let config = PairExceptionConfig {
            min_lift: 1.35,
            ..PairExceptionConfig::default()
        };
        let exceptions = mine_pair_exceptions(&store, &config);
        assert!(!exceptions.is_empty());
        let hit = exceptions.iter().any(|e| {
            let pair = [
                (e.attr_a_name.as_str(), e.value_a_label.as_str()),
                (e.attr_b_name.as_str(), e.value_b_label.as_str()),
            ];
            e.class_label == truth.target_class
                && pair.contains(&("PhoneModel", "ph2"))
                && pair.contains(&(
                    truth.expected_top_attr.as_str(),
                    truth.expected_top_value.as_str(),
                ))
        });
        assert!(
            hit,
            "planted ph2×morning not found; top: {:?}",
            exceptions
                .iter()
                .take(5)
                .map(|e| format!(
                    "{}={} × {}={} on {} (lift {:.1})",
                    e.attr_a_name, e.value_a_label, e.attr_b_name, e.value_b_label,
                    e.class_label, e.lift
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn effect_free_data_is_quiet() {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 60_000,
            seed: 56,
            effects: vec![],
            signal_effect: 0.0,
            ..CallLogConfig::default()
        });
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let exceptions = mine_pair_exceptions(&store, &PairExceptionConfig::default());
        // Hardware-version cells are deterministic functions of the phone
        // model, not interactions with the *class*; nothing should fire
        // loudly on null data.
        assert!(
            exceptions.len() <= 2,
            "false positives on null data: {:?}",
            exceptions
                .iter()
                .map(|e| format!(
                    "{}={} × {}={} lift {:.2}",
                    e.attr_a_name, e.value_a_label, e.attr_b_name, e.value_b_label, e.lift
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_cube_no_exceptions() {
        use om_cube::{CubeDim, RuleCube};
        let cube = RuleCube::new(
            vec![
                CubeDim { attr_index: 0, name: "A".into(), labels: vec!["x".into()] },
                CubeDim { attr_index: 1, name: "B".into(), labels: vec!["y".into()] },
            ],
            vec!["c".into()],
        );
        assert!(exceptions_in_pair(&cube, &PairExceptionConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "pair cube required")]
    fn rejects_wrong_dimensionality() {
        use om_cube::{CubeDim, RuleCube};
        let cube = RuleCube::new(
            vec![CubeDim { attr_index: 0, name: "A".into(), labels: vec!["x".into()] }],
            vec!["c".into()],
        );
        exceptions_in_pair(&cube, &PairExceptionConfig::default());
    }
}
