//! Trend detection across an attribute's ordered values.
//!
//! "Trends are detectable from the shape in each grid. Strong unit trends
//! are indicated using color arrows: red for decreasing, green for
//! increasing and gray for stable trends" (Section V-B). A trend is a
//! statement about one (attribute, class) pair: how the rule confidence
//! moves as the attribute's values are swept in domain order (meaningful
//! for discretized continuous attributes and other ordered domains).

use om_cube::{CubeStore, CubeView};
use om_fault::{Budget, FaultError};
use om_stats::linear_regression;

/// The qualitative trend of one attribute/class confidence series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Confidence rises across the value order (green arrow).
    Increasing,
    /// Confidence falls across the value order (red arrow).
    Decreasing,
    /// Confidence is essentially flat (gray arrow).
    Stable,
    /// No clear unit trend.
    None,
}

/// Thresholds for trend classification.
#[derive(Debug, Clone)]
pub struct TrendConfig {
    /// Minimum `r²` of the linear fit for an increasing/decreasing call.
    pub min_r_squared: f64,
    /// A series whose (max − min) is below this fraction of its mean is
    /// called stable.
    pub stable_band: f64,
    /// Minimum populated values needed to call any trend.
    pub min_points: usize,
    /// Instead of the linear-fit `r²` gate, require the nonparametric
    /// Mann–Kendall test to be significant at this level. Robust to
    /// monotone-but-curved series; needs ≥ 5 or so points to fire at all.
    pub mann_kendall_alpha: Option<f64>,
}

impl Default for TrendConfig {
    fn default() -> Self {
        Self {
            min_r_squared: 0.7,
            stable_band: 0.15,
            min_points: 3,
            mann_kendall_alpha: None,
        }
    }
}

/// A detected trend.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendResult {
    /// Schema index of the attribute.
    pub attr: usize,
    pub attr_name: String,
    /// Class id the confidences refer to.
    pub class: u32,
    pub class_label: String,
    pub trend: Trend,
    /// Slope of confidence per value step.
    pub slope: f64,
    /// Fit quality.
    pub r_squared: f64,
}

/// Classify the trend of one confidence series (empty cells are skipped,
/// not treated as zero, so sparsely used values do not fake a trend).
pub fn classify_series(confidences: &[Option<f64>], config: &TrendConfig) -> (Trend, f64, f64) {
    let points: Vec<(f64, f64)> = confidences
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|c| (i as f64, c)))
        .collect();
    if points.len() < config.min_points {
        return (Trend::None, 0.0, 0.0);
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = linear_regression(&xs, &ys);
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    if mean == 0.0 || (max - min) < config.stable_band * mean {
        return (Trend::Stable, fit.slope, fit.r_squared());
    }
    let directional = match config.mann_kendall_alpha {
        // Nonparametric gate: monotone tendency significant at alpha.
        Some(alpha) => {
            let mk = om_stats::mann_kendall(&ys);
            mk.p_value < alpha && mk.s != 0
        }
        // Default gate: good linear fit.
        None => fit.r_squared() >= config.min_r_squared,
    };
    if directional {
        if fit.slope > 0.0 {
            return (Trend::Increasing, fit.slope, fit.r_squared());
        }
        if fit.slope < 0.0 {
            return (Trend::Decreasing, fit.slope, fit.r_squared());
        }
    }
    (Trend::None, fit.slope, fit.r_squared())
}

/// Mine trends for every (attribute, class) pair in the store.
pub fn mine_trends(store: &CubeStore, config: &TrendConfig) -> Vec<TrendResult> {
    mine_trends_budgeted(store, config, &Budget::unlimited())
        .expect("unlimited budget never trips")
}

/// [`mine_trends`] under a cooperative [`Budget`]: the deadline is
/// checked once per attribute.
///
/// # Errors
/// [`FaultError`] when the budget expires or the request is cancelled.
pub fn mine_trends_budgeted(
    store: &CubeStore,
    config: &TrendConfig,
    budget: &Budget,
) -> Result<Vec<TrendResult>, FaultError> {
    budget.check()?;
    let mut out = Vec::new();
    for &attr in store.attrs() {
        budget.check()?;
        let cube = store.one_dim(attr).expect("store attr has a cube");
        let view = CubeView::from_cube(&cube).expect("one-dim cube");
        for class in 0..view.n_classes() as u32 {
            let series: Vec<Option<f64>> = (0..view.n_values() as u32)
                .map(|v| view.confidence(v, class))
                .collect();
            let (trend, slope, r2) = classify_series(&series, config);
            out.push(TrendResult {
                attr,
                attr_name: view.attr_name().to_owned(),
                class,
                class_label: view.class_labels()[class as usize].clone(),
                trend,
                slope,
                r_squared: r2,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrendConfig {
        TrendConfig::default()
    }

    #[test]
    fn increasing_series() {
        let series: Vec<Option<f64>> =
            vec![Some(0.01), Some(0.03), Some(0.05), Some(0.07), Some(0.09)];
        let (t, slope, r2) = classify_series(&series, &cfg());
        assert_eq!(t, Trend::Increasing);
        assert!(slope > 0.0);
        assert!(r2 > 0.99);
    }

    #[test]
    fn decreasing_series() {
        let series: Vec<Option<f64>> = vec![Some(0.9), Some(0.7), Some(0.5), Some(0.3)];
        let (t, ..) = classify_series(&series, &cfg());
        assert_eq!(t, Trend::Decreasing);
    }

    #[test]
    fn stable_series() {
        let series: Vec<Option<f64>> =
            vec![Some(0.50), Some(0.51), Some(0.495), Some(0.505)];
        let (t, ..) = classify_series(&series, &cfg());
        assert_eq!(t, Trend::Stable);
    }

    #[test]
    fn noisy_series_is_none() {
        let series: Vec<Option<f64>> =
            vec![Some(0.1), Some(0.9), Some(0.2), Some(0.8), Some(0.15)];
        let (t, ..) = classify_series(&series, &cfg());
        assert_eq!(t, Trend::None);
    }

    #[test]
    fn too_few_points_is_none() {
        let series: Vec<Option<f64>> = vec![Some(0.1), Some(0.9)];
        assert_eq!(classify_series(&series, &cfg()).0, Trend::None);
        let sparse: Vec<Option<f64>> = vec![Some(0.1), None, None, Some(0.9)];
        assert_eq!(classify_series(&sparse, &cfg()).0, Trend::None);
    }

    #[test]
    fn empty_cells_skipped_not_zeroed() {
        // With Nones treated as 0 this would read as noisy; skipping them
        // reveals the clean increase.
        let series: Vec<Option<f64>> =
            vec![Some(0.1), None, Some(0.3), None, Some(0.5), Some(0.7)];
        let (t, ..) = classify_series(&series, &cfg());
        assert_eq!(t, Trend::Increasing);
    }

    #[test]
    fn all_zero_series_is_stable() {
        let series: Vec<Option<f64>> = vec![Some(0.0); 5];
        assert_eq!(classify_series(&series, &cfg()).0, Trend::Stable);
    }

    #[test]
    fn mine_trends_over_store() {
        use om_data::{Cell, DatasetBuilder};
        // Attribute with a clean increasing drop-rate across 5 bins.
        let mut b = DatasetBuilder::new().categorical("Bin").class("C");
        for (i, bin) in ["b0", "b1", "b2", "b3", "b4"].iter().enumerate() {
            let drops = (i + 1) * 10;
            for _ in 0..drops {
                b.push_row(&[Cell::Str(bin), Cell::Str("drop")]).unwrap();
            }
            for _ in 0..(100 - drops) {
                b.push_row(&[Cell::Str(bin), Cell::Str("ok")]).unwrap();
            }
        }
        let ds = b.finish().unwrap();
        let store =
            om_cube::CubeStore::build(&ds, &om_cube::StoreBuildOptions::default()).unwrap();
        let trends = mine_trends(&store, &cfg());
        assert_eq!(trends.len(), 2, "one result per (attr, class)");
        let drop_trend = trends
            .iter()
            .find(|t| t.class_label == "drop")
            .unwrap();
        assert_eq!(drop_trend.trend, Trend::Increasing);
        let ok_trend = trends.iter().find(|t| t.class_label == "ok").unwrap();
        assert_eq!(ok_trend.trend, Trend::Decreasing);
    }
}

#[cfg(test)]
mod mann_kendall_tests {
    use super::*;

    #[test]
    fn mk_gate_catches_monotone_but_curved_series() {
        // Exponential-ish: poor linear r², clearly monotone.
        let series: Vec<Option<f64>> = (0..10)
            .map(|i| Some(0.01 * (i as f64 / 1.5).exp()))
            .collect();
        let linear = TrendConfig {
            min_r_squared: 0.97,
            ..TrendConfig::default()
        };
        let (t_linear, ..) = classify_series(&series, &linear);
        let mk = TrendConfig {
            min_r_squared: 0.97,
            mann_kendall_alpha: Some(0.01),
            ..TrendConfig::default()
        };
        let (t_mk, ..) = classify_series(&series, &mk);
        assert_eq!(t_mk, Trend::Increasing);
        // The strict linear gate misses it — exactly the case MK fixes.
        assert_eq!(t_linear, Trend::None);
    }

    #[test]
    fn mk_gate_rejects_noise() {
        let series: Vec<Option<f64>> =
            vec![Some(0.3), Some(0.9), Some(0.1), Some(0.8), Some(0.2), Some(0.7)];
        let mk = TrendConfig {
            mann_kendall_alpha: Some(0.01),
            ..TrendConfig::default()
        };
        assert_eq!(classify_series(&series, &mk).0, Trend::None);
    }
}
