//! General impressions (GI) mining: trends, exceptions, influential
//! attributes.
//!
//! The Opportunity Map framework is "enhanced with several methods to
//! automatically find exceptions, trends and influential attributes
//! (called general impressions)" (Section III-B, citing the authors'
//! prior work \[17, 20\]). The GI miner "is called when requested based on
//! the sub-cube shown on screen" (Section V-A); Fig. 5's colored arrows
//! (red decreasing / green increasing / gray stable) come from [`trend`].
//!
//! All three miners read rule cubes only — never the raw data — matching
//! the deployed system's architecture.

pub mod exception;
pub mod influence;
pub mod pair_exception;
pub mod trend;

pub use exception::{
    mine_exceptions, mine_exceptions_budgeted, Exception, ExceptionConfig, ExceptionKind,
};
pub use influence::{mine_influence, mine_influence_budgeted, InfluenceResult};
pub use pair_exception::{
    mine_pair_exceptions, mine_pair_exceptions_budgeted, PairException, PairExceptionConfig,
};
pub use trend::{mine_trends, mine_trends_budgeted, Trend, TrendConfig, TrendResult};
