//! Influential-attribute ranking: which attributes are most associated
//! with the class overall.
//!
//! This is the GI miner's third output and also serves as a baseline the
//! comparator is evaluated against (the paper argues plain attribute/class
//! association is *not* the same as distinguishing two sub-populations —
//! the recovery experiment makes that concrete).

use om_cube::{CubeStore, CubeView};
use om_fault::{Budget, FaultError};
use om_stats::{chi2_independence, info_gain};

/// Association strength of one attribute with the class.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluenceResult {
    pub attr: usize,
    pub attr_name: String,
    /// Pearson chi-square statistic of the value × class table.
    pub chi2: f64,
    /// Upper-tail p-value of the statistic.
    pub p_value: f64,
    /// Information gain of splitting the class by this attribute.
    pub info_gain: f64,
}

/// Rank all attributes by chi-square statistic, descending.
pub fn mine_influence(store: &CubeStore) -> Vec<InfluenceResult> {
    mine_influence_budgeted(store, &Budget::unlimited()).expect("unlimited budget never trips")
}

/// [`mine_influence`] under a cooperative [`Budget`]: the deadline is
/// checked once per attribute.
///
/// # Errors
/// [`FaultError`] when the budget expires or the request is cancelled.
pub fn mine_influence_budgeted(
    store: &CubeStore,
    budget: &Budget,
) -> Result<Vec<InfluenceResult>, FaultError> {
    budget.check()?;
    let mut out = Vec::with_capacity(store.attrs().len());
    for &attr in store.attrs() {
        budget.check()?;
        let cube = store.one_dim(attr).expect("store attr has a cube");
        let view = CubeView::from_cube(&cube).expect("one-dim cube");
        let table: Vec<Vec<u64>> = (0..view.n_values() as u32)
            .map(|v| {
                (0..view.n_classes() as u32)
                    .map(|c| view.count(v, c))
                    .collect()
            })
            .collect();
        let chi = chi2_independence(&table);
        out.push(InfluenceResult {
            attr,
            attr_name: view.attr_name().to_owned(),
            chi2: chi.statistic,
            p_value: chi.p_value,
            info_gain: info_gain(&table),
        });
    }
    out.sort_by(|a, b| {
        b.chi2
            .partial_cmp(&a.chi2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_data::{Cell, DatasetBuilder};

    /// `Strong` fully determines the class; `Weak` is independent noise.
    fn ds() -> om_data::Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("Strong")
            .categorical("Weak")
            .class("C");
        for i in 0..400u32 {
            let strong = if i % 2 == 0 { "s0" } else { "s1" };
            let weak = match i % 3 {
                0 => "w0",
                1 => "w1",
                _ => "w2",
            };
            let class = if i % 2 == 0 { "y" } else { "n" };
            b.push_row(&[Cell::Str(strong), Cell::Str(weak), Cell::Str(class)])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn strong_attribute_ranks_first() {
        let store = CubeStore::build(&ds(), &StoreBuildOptions::default()).unwrap();
        let ranking = mine_influence(&store);
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].attr_name, "Strong");
        assert!(ranking[0].chi2 > ranking[1].chi2 * 10.0);
        assert!(ranking[0].p_value < 1e-10);
        assert!(ranking[0].info_gain > 0.99, "perfect predictor gains ~1 bit");
        assert!(ranking[1].info_gain < 0.05);
    }

    #[test]
    fn expired_budget_aborts_all_miners() {
        use crate::{
            mine_exceptions_budgeted, mine_pair_exceptions_budgeted, mine_trends_budgeted,
        };
        use std::time::Duration;
        let store = CubeStore::build(&ds(), &StoreBuildOptions::default()).unwrap();
        let spent = Budget::with_timeout(Duration::ZERO);
        assert!(mine_influence_budgeted(&store, &spent).is_err());
        assert!(mine_trends_budgeted(&store, &Default::default(), &spent).is_err());
        assert!(mine_exceptions_budgeted(&store, &Default::default(), &spent).is_err());
        assert!(mine_pair_exceptions_budgeted(&store, &Default::default(), &spent).is_err());
        // Unlimited budgets reproduce the plain results.
        let plain = mine_influence(&store);
        let budgeted = mine_influence_budgeted(&store, &Budget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn independent_attribute_not_significant() {
        let store = CubeStore::build(&ds(), &StoreBuildOptions::default()).unwrap();
        let ranking = mine_influence(&store);
        let weak = ranking.iter().find(|r| r.attr_name == "Weak").unwrap();
        assert!(weak.p_value > 0.01, "weak p={}", weak.p_value);
    }
}
