//! Exception mining: attribute values whose class confidence deviates
//! significantly from the attribute-wide base rate.
//!
//! Unlike the OLAP exception work of Sarawagi et al. discussed in the
//! paper's related work (multi-level aggregation lattices), Opportunity
//! Map cubes are flat; an exception here is a single-level statement:
//! "value `v` of attribute `A` has a significantly higher (or lower)
//! rate of class `c` than `A`'s other values". Significance uses the
//! pooled two-proportion z-test from `om-stats`.

use om_cube::{CubeStore, CubeView};
use om_fault::{Budget, FaultError};
use om_stats::two_proportion_z;

/// Direction of the deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionKind {
    /// Confidence significantly above the rest of the attribute.
    High,
    /// Confidence significantly below the rest of the attribute.
    Low,
}

/// Thresholds for exception mining.
#[derive(Debug, Clone)]
pub struct ExceptionConfig {
    /// Two-sided significance level (on the z-test p-value). When
    /// `use_fdr` is set, this is the Benjamini–Hochberg FDR level instead
    /// of a per-test threshold.
    pub alpha: f64,
    /// Minimum records in the cell (tiny cells produce junk exceptions).
    pub min_cell_count: u64,
    /// Control the false discovery rate across *all* cells tested in the
    /// store (thousands on a wide dataset) instead of applying `alpha`
    /// per test.
    pub use_fdr: bool,
}

impl Default for ExceptionConfig {
    fn default() -> Self {
        Self {
            alpha: 0.001,
            min_cell_count: 30,
            use_fdr: false,
        }
    }
}

/// One detected exception.
#[derive(Debug, Clone, PartialEq)]
pub struct Exception {
    pub attr: usize,
    pub attr_name: String,
    pub value: u32,
    pub value_label: String,
    pub class: u32,
    pub class_label: String,
    pub kind: ExceptionKind,
    /// The cell's confidence.
    pub confidence: f64,
    /// Confidence of the same class over the attribute's *other* values.
    pub rest_confidence: f64,
    /// z statistic of the comparison.
    pub z: f64,
}

/// Every candidate test of one view (cells above `min_cell_count`), with
/// its two-sided p-value — no significance filtering yet.
fn candidates_in_view(view: &CubeView, min_cell_count: u64) -> Vec<(Exception, f64)> {
    let mut out = Vec::new();
    // Per-class totals over the whole attribute.
    let n_classes = view.n_classes();
    let mut class_totals = vec![0u64; n_classes];
    let mut grand = 0u64;
    for v in 0..view.n_values() as u32 {
        for c in 0..n_classes as u32 {
            class_totals[c as usize] += view.count(v, c);
        }
        grand += view.value_total(v);
    }

    for v in 0..view.n_values() as u32 {
        let cell_n = view.value_total(v);
        if cell_n < min_cell_count {
            continue;
        }
        let rest_n = grand - cell_n;
        if rest_n == 0 {
            continue; // the attribute has a single populated value
        }
        for c in 0..n_classes as u32 {
            let cell_x = view.count(v, c);
            let rest_x = class_totals[c as usize] - cell_x;
            let test = two_proportion_z(cell_x, cell_n, rest_x, rest_n);
            out.push((
                Exception {
                    attr: 0, // filled by the store-level driver
                    attr_name: view.attr_name().to_owned(),
                    value: v,
                    value_label: view.value_labels()[v as usize].clone(),
                    class: c,
                    class_label: view.class_labels()[c as usize].clone(),
                    kind: if test.z > 0.0 {
                        ExceptionKind::High
                    } else {
                        ExceptionKind::Low
                    },
                    confidence: cell_x as f64 / cell_n as f64,
                    rest_confidence: rest_x as f64 / rest_n as f64,
                    z: test.z,
                },
                test.p_value,
            ));
        }
    }
    out
}

/// Mine exceptions from one attribute's 2-D view at a fixed per-test
/// `alpha`.
pub fn exceptions_in_view(view: &CubeView, config: &ExceptionConfig) -> Vec<Exception> {
    candidates_in_view(view, config.min_cell_count)
        .into_iter()
        .filter_map(|(e, p)| (p < config.alpha).then_some(e))
        .collect()
}

/// Mine exceptions across every attribute in the store, sorted by |z|
/// descending. With `use_fdr`, significance is decided jointly by
/// Benjamini–Hochberg over every candidate cell at FDR level `alpha`.
pub fn mine_exceptions(store: &CubeStore, config: &ExceptionConfig) -> Vec<Exception> {
    mine_exceptions_budgeted(store, config, &Budget::unlimited())
        .expect("unlimited budget never trips")
}

/// [`mine_exceptions`] under a cooperative [`Budget`]: the deadline is
/// checked once per attribute.
///
/// # Errors
/// [`FaultError`] when the budget expires or the request is cancelled.
pub fn mine_exceptions_budgeted(
    store: &CubeStore,
    config: &ExceptionConfig,
    budget: &Budget,
) -> Result<Vec<Exception>, FaultError> {
    budget.check()?;
    let mut candidates: Vec<(Exception, f64)> = Vec::new();
    for &attr in store.attrs() {
        budget.check()?;
        let cube = store.one_dim(attr).expect("store attr has a cube");
        let view = CubeView::from_cube(&cube).expect("one-dim cube");
        for (mut e, p) in candidates_in_view(&view, config.min_cell_count) {
            e.attr = attr;
            candidates.push((e, p));
        }
    }
    let mut out: Vec<Exception> = if config.use_fdr {
        let p_values: Vec<f64> = candidates.iter().map(|(_, p)| *p).collect();
        let keep = om_stats::bh_reject(&p_values, config.alpha);
        candidates
            .into_iter()
            .zip(keep)
            .filter_map(|((e, _), k)| k.then_some(e))
            .collect()
    } else {
        candidates
            .into_iter()
            .filter_map(|(e, p)| (p < config.alpha).then_some(e))
            .collect()
    };
    out.sort_by(|a, b| {
        b.z.abs()
            .partial_cmp(&a.z.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_data::{Cell, DatasetBuilder};

    /// Attribute with one outlier value: v2 drops at 30%, others at 5%.
    fn outlier_ds() -> om_data::Dataset {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for (value, drop_pct) in [("v0", 5), ("v1", 5), ("v2", 30), ("v3", 5)] {
            for i in 0..200 {
                let c = if i % 100 < drop_pct { "drop" } else { "ok" };
                b.push_row(&[Cell::Str(value), Cell::Str(c)]).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn finds_the_planted_outlier() {
        let ds = outlier_ds();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let exceptions = mine_exceptions(&store, &ExceptionConfig::default());
        assert!(!exceptions.is_empty());
        let top = &exceptions[0];
        assert_eq!(top.value_label, "v2");
        // v2 should be High for drop and Low for ok — both directions land.
        let v2_drop = exceptions
            .iter()
            .find(|e| e.value_label == "v2" && e.class_label == "drop")
            .unwrap();
        assert_eq!(v2_drop.kind, ExceptionKind::High);
        assert!((v2_drop.confidence - 0.30).abs() < 1e-9);
        assert!(v2_drop.z > 3.0);
    }

    #[test]
    fn uniform_attribute_has_no_exceptions() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for value in ["v0", "v1", "v2"] {
            for i in 0..300 {
                let c = if i % 10 == 0 { "drop" } else { "ok" };
                b.push_row(&[Cell::Str(value), Cell::Str(c)]).unwrap();
            }
        }
        let ds = b.finish().unwrap();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let exceptions = mine_exceptions(&store, &ExceptionConfig::default());
        assert!(exceptions.is_empty(), "{exceptions:?}");
    }

    #[test]
    fn min_cell_count_suppresses_tiny_cells() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        // v_outlier has only 3 records, all drops — noisy, must be skipped.
        for _ in 0..3 {
            b.push_row(&[Cell::Str("v_outlier"), Cell::Str("drop")]).unwrap();
        }
        for i in 0..500 {
            b.push_row(&[
                Cell::Str("v_normal"),
                Cell::Str(if i % 20 == 0 { "drop" } else { "ok" }),
            ])
            .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let exceptions = mine_exceptions(&store, &ExceptionConfig::default());
        assert!(
            exceptions.iter().all(|e| e.value_label != "v_outlier"),
            "{exceptions:?}"
        );
    }

    #[test]
    fn single_value_attribute_no_exception() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for i in 0..100 {
            b.push_row(&[
                Cell::Str("only"),
                Cell::Str(if i % 2 == 0 { "a" } else { "b" }),
            ])
            .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        assert!(mine_exceptions(&store, &ExceptionConfig::default()).is_empty());
    }
}

#[cfg(test)]
mod fdr_tests {
    use super::*;
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_synth::{generate_scaleup, ScaleUpConfig};

    #[test]
    fn fdr_is_stricter_than_per_test_alpha_on_wide_noise() {
        // Many attributes of noise: per-test alpha at 0.05 fires spuriously;
        // FDR at the same level should fire (much) less.
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 40,
            n_records: 20_000,
            seed: 99,
            ..ScaleUpConfig::default()
        });
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let loose = mine_exceptions(
            &store,
            &ExceptionConfig { alpha: 0.05, min_cell_count: 30, use_fdr: false },
        );
        let fdr = mine_exceptions(
            &store,
            &ExceptionConfig { alpha: 0.05, min_cell_count: 30, use_fdr: true },
        );
        assert!(
            fdr.len() <= loose.len(),
            "FDR ({}) must not exceed per-test ({})",
            fdr.len(),
            loose.len()
        );
    }

    #[test]
    fn fdr_keeps_a_strong_planted_signal() {
        use om_data::{Cell, DatasetBuilder};
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for (value, drop_pct) in [("v0", 5), ("v1", 5), ("v2", 40), ("v3", 5)] {
            for i in 0..300 {
                let c = if i % 100 < drop_pct { "drop" } else { "ok" };
                b.push_row(&[Cell::Str(value), Cell::Str(c)]).unwrap();
            }
        }
        let ds = b.finish().unwrap();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let fdr = mine_exceptions(
            &store,
            &ExceptionConfig { alpha: 0.01, min_cell_count: 30, use_fdr: true },
        );
        assert!(
            fdr.iter().any(|e| e.value_label == "v2" && e.kind == ExceptionKind::High),
            "{fdr:?}"
        );
    }
}
