//! End-to-end ingestion: append → seal → compact → publish, recovery
//! after an unclean shutdown, and the no-torn-reads guarantee under
//! concurrent query load.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use om_cube::{CubeStore, SharedStore, StoreBuildOptions};
use om_data::{Dataset, ValueId};
use om_ingest::{IngestConfig, IngestHandle};
use om_synth::{generate_scaleup, ScaleUpConfig};

fn dataset(n_records: usize, seed: u64) -> Dataset {
    generate_scaleup(&ScaleUpConfig {
        n_attrs: 5,
        n_records,
        seed,
        ..ScaleUpConfig::default()
    })
}

/// Every row of `ds` as schema-ordered `ValueId` vectors.
fn rows_of(ds: &Dataset) -> Vec<Vec<ValueId>> {
    let n_attrs = ds.schema().n_attributes();
    let cols: Vec<&[ValueId]> = (0..n_attrs)
        .map(|i| ds.column(i).as_categorical().expect("categorical"))
        .collect();
    (0..ds.n_rows())
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect()
}

fn shared_over(ds: &Dataset) -> SharedStore {
    SharedStore::new(CubeStore::build(ds, &StoreBuildOptions::default()).unwrap())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("om-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_stores_equal(a: &CubeStore, b: &CubeStore) {
    assert_eq!(a.total_records(), b.total_records());
    assert_eq!(a.class_counts(), b.class_counts());
    for &i in a.attrs() {
        assert_eq!(*a.one_dim(i).unwrap(), *b.one_dim(i).unwrap());
    }
    for (i, &x) in a.attrs().iter().enumerate() {
        for &y in &a.attrs()[i + 1..] {
            assert_eq!(*a.pair(x, y).unwrap(), *b.pair(x, y).unwrap());
        }
    }
}

#[test]
fn ingested_rows_reach_the_published_snapshot() {
    let base = dataset(2_000, 1);
    let live = dataset(1_000, 2);
    let dir = tmp_dir("publish");
    let shared = shared_over(&base);
    let handle = IngestHandle::start(
        base.schema().clone(),
        &[],
        shared.clone(),
        &IngestConfig {
            wal_dir: dir.clone(),
            seal_rows: 256,
            sync_writes: false,
        },
    )
    .unwrap();

    let before = shared.snapshot();
    assert_eq!(before.generation(), 0);
    for chunk in rows_of(&live).chunks(100) {
        handle.append_rows(chunk.to_vec()).unwrap();
    }
    handle.flush().unwrap();

    let after = shared.snapshot();
    assert!(after.generation() >= 1);
    assert_eq!(after.total_records(), 3_000);
    // The pinned pre-ingest snapshot is untouched.
    assert_eq!(before.total_records(), 2_000);

    // The published store equals a batch rebuild over the union.
    let mut union = base.clone();
    union.append(&live).unwrap();
    let direct = CubeStore::build(&union, &StoreBuildOptions::default()).unwrap();
    assert_stores_equal(after.store(), &direct);

    let stats = handle.stats();
    assert_eq!(stats.rows_total, 1_000);
    assert!(stats.segments_sealed_total >= 3, "256-row seals over 1000 rows");
    assert!(stats.compactions_total >= 1);
    assert!(stats.wal_bytes > 0);
    assert_eq!(stats.store_generation, after.generation());

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_recovers_to_identical_counts() {
    let base = dataset(1_500, 3);
    let live = dataset(900, 4);
    let dir = tmp_dir("recover");

    // First life: ingest with a seal threshold that leaves rows both in
    // sealed segments and in the unsealed active segment, then shut down
    // abruptly (no flush).
    {
        let shared = shared_over(&base);
        let handle = IngestHandle::start(
            base.schema().clone(),
            &[],
            shared,
            &IngestConfig {
                wal_dir: dir.clone(),
                seal_rows: 400,
                sync_writes: true,
            },
        )
        .unwrap();
        handle.append_rows(rows_of(&live)).unwrap();
        handle.shutdown();
    }

    // Second life: a fresh base rebuild plus WAL replay.
    let shared = shared_over(&base);
    let handle = IngestHandle::start(
        base.schema().clone(),
        &[],
        shared.clone(),
        &IngestConfig {
            wal_dir: dir.clone(),
            seal_rows: 400,
            sync_writes: true,
        },
    )
    .unwrap();
    assert_eq!(handle.stats().rows_total, 900, "every appended row recovered");
    handle.flush().unwrap();

    // A run that never crashed: same rows, sealed and flushed normally.
    let never_dir = tmp_dir("recover-never");
    let never_shared = shared_over(&base);
    let never = IngestHandle::start(
        base.schema().clone(),
        &[],
        never_shared.clone(),
        &IngestConfig {
            wal_dir: never_dir.clone(),
            seal_rows: 400,
            sync_writes: true,
        },
    )
    .unwrap();
    never.append_rows(rows_of(&live)).unwrap();
    never.flush().unwrap();

    assert_stores_equal(
        shared.snapshot().store(),
        never_shared.snapshot().store(),
    );
    handle.shutdown();
    never.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&never_dir).unwrap();
}

#[test]
fn bad_batches_commit_nothing() {
    let base = dataset(500, 5);
    let dir = tmp_dir("badrow");
    let shared = shared_over(&base);
    let handle = IngestHandle::start(
        base.schema().clone(),
        &[],
        shared.clone(),
        &IngestConfig {
            wal_dir: dir.clone(),
            seal_rows: 64,
            sync_writes: false,
        },
    )
    .unwrap();

    let mut rows = rows_of(&dataset(10, 6));
    rows[7] = vec![9_999; base.schema().n_attributes()];
    assert!(handle.append_rows(rows).is_err());
    assert!(handle.append_csv("definitely,not,enough,fields").is_err());
    assert_eq!(handle.stats().rows_total, 0, "rejected batches left no trace");
    handle.flush().unwrap();
    assert_eq!(shared.snapshot().total_records(), 500);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_queries_never_see_a_torn_store() {
    let base = dataset(1_000, 7);
    let live = dataset(2_000, 8);
    let dir = tmp_dir("torn-reads");
    let shared = shared_over(&base);
    let handle = IngestHandle::start(
        base.schema().clone(),
        &[],
        shared.clone(),
        &IngestConfig {
            wal_dir: dir.clone(),
            seal_rows: 100,
            sync_writes: false,
        },
    )
    .unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // 4 readers hammer snapshots, asserting internal consistency:
        // within one generation every cube's total equals the record
        // count and every class margin equals the class counts — a mix
        // of pre- and post-merge cubes would violate both immediately.
        for _ in 0..4 {
            scope.spawn(|| {
                let mut last_generation = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snap = shared.snapshot();
                    assert!(
                        snap.generation() >= last_generation,
                        "generation went backwards"
                    );
                    last_generation = snap.generation();
                    let total = snap.total_records();
                    let class_counts = snap.class_counts().to_vec();
                    for &a in snap.attrs() {
                        let cube = snap.one_dim(a).unwrap();
                        assert_eq!(cube.total(), total, "torn 1-D cube in gen {last_generation}");
                        assert_eq!(cube.class_margin(), class_counts);
                    }
                    let pair = snap.pair(snap.attrs()[0], snap.attrs()[1]).unwrap();
                    assert_eq!(pair.total(), total, "torn pair cube");
                }
            });
        }
        // Writer: many small batches, constant sealing and publishing.
        for chunk in rows_of(&live).chunks(50) {
            handle.append_rows(chunk.to_vec()).unwrap();
        }
        handle.flush().unwrap();
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(shared.snapshot().total_records(), 3_000);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
