//! Crash-recovery chaos suite (compiled only with `--features
//! failpoints`): kill the append→seal→merge protocol at each stage via
//! injected faults, restart over the same WAL directory, and require the
//! recovered store to be count-identical to a run that never crashed.
//!
//! One test function walks all stages sequentially — the failpoint
//! registry is process-global, so scenarios must not run concurrently.
#![cfg(feature = "failpoints")]

use std::path::{Path, PathBuf};

use om_compare::{Comparator, ComparisonSpec};
use om_cube::{CubeStore, SharedStore, StoreBuildOptions};
use om_data::{Dataset, ValueId};
use om_fault::fail::{self, Action};
use om_ingest::{IngestConfig, IngestHandle};
use om_synth::{generate_scaleup, ScaleUpConfig};

fn dataset(n_records: usize, seed: u64) -> Dataset {
    generate_scaleup(&ScaleUpConfig {
        n_attrs: 4,
        n_records,
        seed,
        ..ScaleUpConfig::default()
    })
}

fn rows_of(ds: &Dataset) -> Vec<Vec<ValueId>> {
    let n_attrs = ds.schema().n_attributes();
    let cols: Vec<&[ValueId]> = (0..n_attrs)
        .map(|i| ds.column(i).as_categorical().expect("categorical"))
        .collect();
    (0..ds.n_rows())
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect()
}

fn shared_over(ds: &Dataset) -> SharedStore {
    SharedStore::new(CubeStore::build(ds, &StoreBuildOptions::default()).unwrap())
}

fn start(base: &Dataset, shared: &SharedStore, dir: &Path) -> IngestHandle {
    IngestHandle::start(
        base.schema().clone(),
        &[],
        shared.clone(),
        &IngestConfig {
            wal_dir: dir.to_path_buf(),
            seal_rows: 200,
            sync_writes: true,
        },
    )
    .unwrap()
}

fn assert_stores_equal(a: &CubeStore, b: &CubeStore, stage: &str) {
    assert_eq!(a.total_records(), b.total_records(), "{stage}: totals");
    assert_eq!(a.class_counts(), b.class_counts(), "{stage}: class counts");
    for &i in a.attrs() {
        assert_eq!(
            *a.one_dim(i).unwrap(),
            *b.one_dim(i).unwrap(),
            "{stage}: 1-D cube {i}"
        );
    }
    for (i, &x) in a.attrs().iter().enumerate() {
        for &y in &a.attrs()[i + 1..] {
            assert_eq!(
                *a.pair(x, y).unwrap(),
                *b.pair(x, y).unwrap(),
                "{stage}: pair cube ({x},{y})"
            );
        }
    }
}

/// A full ranked comparison over both stores must agree bit-for-bit:
/// identical counts feed identical arithmetic, so even the float scores
/// match exactly.
fn assert_comparisons_equal(a: &CubeStore, b: &CubeStore, stage: &str) {
    let spec = ComparisonSpec {
        attr: a.attrs()[0],
        value_1: 0,
        value_2: 1,
        class: 0,
    };
    let ra = Comparator::new(a).compare(&spec).unwrap();
    let rb = Comparator::new(b).compare(&spec).unwrap();
    assert_eq!(ra.cf1.to_bits(), rb.cf1.to_bits(), "{stage}: cf1");
    assert_eq!(ra.cf2.to_bits(), rb.cf2.to_bits(), "{stage}: cf2");
    assert_eq!(ra.ranked.len(), rb.ranked.len(), "{stage}: rank length");
    for (x, y) in ra.ranked.iter().zip(&rb.ranked) {
        assert_eq!(x.attr, y.attr, "{stage}: rank order");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{stage}: score of {}", x.attr_name);
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("om-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crash_at_every_protocol_stage_recovers_exact_counts() {
    let base = dataset(1_200, 20);
    let live = dataset(700, 21);

    // Ground truth: the same rows ingested with no faults at all.
    let clean_dir = tmp_dir("clean");
    let clean_shared = shared_over(&base);
    let clean = start(&base, &clean_shared, &clean_dir);
    clean.append_rows(rows_of(&live)).unwrap();
    clean.flush().unwrap();
    let truth = clean_shared.snapshot();

    for (stage, failpoint) in [
        ("append", "ingest.append"),
        ("seal", "ingest.seal"),
        ("merge", "ingest.merge"),
    ] {
        let dir = tmp_dir(stage);
        // Life 1: the fault fires mid-protocol, then the process "dies"
        // (handle dropped without flushing).
        {
            let shared = shared_over(&base);
            let handle = start(&base, &shared, &dir);
            fail::configure(failpoint, Action::Error(format!("killed at {stage}")));
            let result = handle.append_rows(rows_of(&live));
            // Drain the compactor while the fault is still armed so a
            // merge-stage fault deterministically drops its delta.
            let _ = handle.flush();
            fail::reset();
            match stage {
                // An append fault rejects the batch before any WAL write:
                // re-submit after the "transient" fault clears, as a
                // client retrying a 500 would.
                "append" => {
                    assert!(result.is_err());
                    handle.append_rows(rows_of(&live)).unwrap();
                }
                // A seal fault strikes *after* the rows are WAL-durable:
                // the caller sees an error but must not retry — recovery
                // owns those rows now.
                "seal" => assert!(result.is_err()),
                // A merge fault is invisible to the writer (the compactor
                // drops the delta in memory); the WAL still has it, and
                // the drop is accounted rather than silent.
                _ => {
                    assert!(result.is_ok());
                    assert_eq!(
                        handle.stats().merge_failures_total,
                        1,
                        "{stage}: dropped delta must be counted"
                    );
                }
            }
            handle.shutdown();
        }
        // Life 2: fresh base rebuild + WAL replay must reproduce the
        // never-crashed counts exactly.
        let shared = shared_over(&base);
        let handle = start(&base, &shared, &dir);
        handle.flush().unwrap();
        assert_eq!(handle.stats().rows_total, 700, "{stage}: rows recovered");
        assert_stores_equal(shared.snapshot().store(), truth.store(), stage);
        assert_comparisons_equal(shared.snapshot().store(), truth.store(), stage);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    clean.shutdown();
    std::fs::remove_dir_all(&clean_dir).unwrap();
}
