//! Validating live rows against the serving schema.
//!
//! The cube store is built over the *discretized* dataset, so a live row
//! must arrive in (or be converted to) that categorical encoding. Each
//! CSV field is matched against its attribute's domain first — which
//! accepts categorical labels and pre-binned interval labels alike — and,
//! for attributes that were discretized at build time, a numeric field is
//! binned through the same cut points the offline build used, so a live
//! `duration=3.7` lands in exactly the bin a batch rebuild would put it
//! in. Unknown labels are typed errors, never new domain values: growing
//! a domain would change cube dimensions and break merge algebra.

use std::collections::HashMap;

use om_data::{Schema, ValueId};
use om_discretize::apply::MISSING_LABEL;
use om_discretize::CutPoints;

use crate::error::IngestError;

struct NumericBinning {
    cuts: CutPoints,
    /// Domain id of each bin label, in bin order; `None` if the offline
    /// build collapsed that bin out of the domain.
    bin_ids: Vec<Option<ValueId>>,
    missing: Option<ValueId>,
}

/// Parses delimited text rows into schema-ordered `ValueId` vectors.
pub struct RowParser {
    schema: Schema,
    numeric: HashMap<usize, NumericBinning>,
}

impl RowParser {
    /// Build a parser for `schema`, with `cuts` mapping the schema index
    /// of each originally-continuous attribute to its cut points.
    ///
    /// # Errors
    /// [`IngestError::Schema`] if any schema attribute is still
    /// continuous — live rows can only extend categorical cubes.
    pub fn new(schema: Schema, cuts: &[(usize, CutPoints)]) -> Result<Self, IngestError> {
        for i in 0..schema.n_attributes() {
            if !schema.attribute(i).is_categorical() {
                return Err(IngestError::Schema(format!(
                    "attribute {:?} is continuous; build the engine with discretization \
                     before ingesting",
                    schema.attribute(i).name()
                )));
            }
        }
        let mut numeric = HashMap::new();
        for (attr, cut_points) in cuts {
            let domain = schema.attribute(*attr).domain();
            let bin_ids = cut_points
                .labels(3)
                .iter()
                .map(|l| domain.get(l))
                .collect();
            numeric.insert(
                *attr,
                NumericBinning {
                    cuts: cut_points.clone(),
                    bin_ids,
                    missing: domain.get(MISSING_LABEL),
                },
            );
        }
        Ok(Self { schema, numeric })
    }

    /// The schema rows are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Parse one comma-separated line: every schema attribute's value
    /// (class included) in schema order, with double-quote quoting for
    /// fields containing commas (interval bin labels). `row` is the
    /// 1-based position used in error messages.
    ///
    /// # Errors
    /// [`IngestError::BadRow`] on wrong arity, unknown labels, or
    /// unbinnable numerics.
    pub fn parse_line(&self, line: &str, row: usize) -> Result<Vec<ValueId>, IngestError> {
        let fields: Vec<String> = om_data::csv::split_record(line, ',')
            .into_iter()
            .map(|f| f.trim().to_owned())
            .collect();
        self.parse_fields(&fields, row)
    }

    /// Validate one already-split row (the JSON ingest path, where the
    /// client sends fields as an array instead of a CSV line). Fields
    /// are taken verbatim — no trimming or quote handling. `row` is the
    /// 1-based position used in error messages.
    ///
    /// # Errors
    /// [`IngestError::BadRow`] on wrong arity, unknown labels, or
    /// unbinnable numerics.
    pub fn parse_fields(&self, fields: &[String], row: usize) -> Result<Vec<ValueId>, IngestError> {
        if fields.len() != self.schema.n_attributes() {
            return Err(IngestError::BadRow {
                row,
                reason: format!(
                    "expected {} fields, got {}",
                    self.schema.n_attributes(),
                    fields.len()
                ),
            });
        }
        let mut ids = Vec::with_capacity(fields.len());
        for (attr, field) in fields.iter().enumerate() {
            ids.push(self.resolve(attr, field, row)?);
        }
        Ok(ids)
    }

    /// Parse a whole newline-separated body; blank lines are skipped.
    /// All-or-nothing: the first bad row rejects the entire batch, so a
    /// partially-garbled upload never half-commits.
    ///
    /// # Errors
    /// The first [`IngestError::BadRow`] encountered.
    pub fn parse_body(&self, body: &str) -> Result<Vec<Vec<ValueId>>, IngestError> {
        let mut rows = Vec::new();
        for (i, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            rows.push(self.parse_line(line, i + 1)?);
        }
        Ok(rows)
    }

    fn resolve(&self, attr: usize, field: &str, row: usize) -> Result<ValueId, IngestError> {
        let attribute = self.schema.attribute(attr);
        // Exact domain labels win — covers categorical values and rows
        // replayed in already-binned interval form.
        if let Some(id) = attribute.domain().get(field) {
            return Ok(id);
        }
        if let Some(binning) = self.numeric.get(&attr) {
            let missing = field.is_empty() || field.eq_ignore_ascii_case("nan");
            let parsed = if missing {
                f64::NAN
            } else {
                field.parse::<f64>().map_err(|_| IngestError::BadRow {
                    row,
                    reason: format!(
                        "attribute {:?}: {field:?} is neither a known label nor a number",
                        attribute.name()
                    ),
                })?
            };
            if parsed.is_nan() {
                return binning.missing.ok_or_else(|| IngestError::BadRow {
                    row,
                    reason: format!(
                        "attribute {:?}: missing value but the build saw none",
                        attribute.name()
                    ),
                });
            }
            return binning
                .bin_ids
                .get(binning.cuts.bin_of(parsed))
                .copied()
                .flatten()
                .ok_or_else(|| IngestError::BadRow {
                    row,
                    reason: format!(
                        "attribute {:?}: value {parsed} falls in a bin absent from the \
                         serving domain",
                        attribute.name()
                    ),
                });
        }
        Err(IngestError::BadRow {
            row,
            reason: format!(
                "attribute {:?}: unknown label {field:?}",
                attribute.name()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Attribute, Column, Dataset, Domain};
    use om_discretize::{discretize_all, Method};

    /// Tiny mixed schema: one categorical, one continuous, class.
    fn live_schema() -> (Schema, Vec<(usize, CutPoints)>) {
        let schema = Schema::new(
            vec![
                Attribute::categorical("color", Domain::from_labels(["red", "blue"])),
                Attribute::continuous("size"),
                Attribute::categorical("ok", Domain::from_labels(["yes", "no"])),
            ],
            2,
        )
        .unwrap();
        let columns = vec![
            Column::Categorical(vec![0, 1, 0, 1, 0, 1, 0, 1]),
            Column::Continuous(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, f64::NAN]),
            Column::Categorical(vec![0, 0, 0, 0, 1, 1, 1, 1]),
        ];
        let mut ds = Dataset::from_columns(schema, columns).unwrap();
        let cuts = discretize_all(&mut ds, &Method::EqualFrequency(2)).unwrap();
        (ds.schema().clone(), cuts)
    }

    #[test]
    fn parses_labels_and_numbers_identically() {
        let (schema, cuts) = live_schema();
        let parser = RowParser::new(schema.clone(), &cuts).unwrap();
        let by_number = parser.parse_line("red, 1.5, yes", 1).unwrap();
        let bin_label = schema.attribute(1).domain().label(by_number[1]).unwrap();
        // Interval labels contain the delimiter, so they arrive quoted.
        let by_label = parser
            .parse_line(&format!("red,\"{bin_label}\",yes"), 2)
            .unwrap();
        assert_eq!(by_number, by_label);
    }

    #[test]
    fn missing_numeric_maps_to_missing_bin() {
        let (schema, cuts) = live_schema();
        let parser = RowParser::new(schema.clone(), &cuts).unwrap();
        let row = parser.parse_line("blue,,no", 1).unwrap();
        let label = schema.attribute(1).domain().label(row[1]).unwrap();
        assert_eq!(label, MISSING_LABEL);
        assert_eq!(row, parser.parse_line("blue,NaN,no", 1).unwrap());
    }

    #[test]
    fn bad_rows_are_typed_errors() {
        let (schema, cuts) = live_schema();
        let parser = RowParser::new(schema, &cuts).unwrap();
        assert!(matches!(
            parser.parse_line("red,1.5", 3),
            Err(IngestError::BadRow { row: 3, .. })
        ));
        assert!(parser.parse_line("chartreuse,1.5,yes", 1).is_err());
        assert!(parser.parse_line("red,uphill,yes", 1).is_err());
    }

    #[test]
    fn body_is_all_or_nothing() {
        let (schema, cuts) = live_schema();
        let parser = RowParser::new(schema, &cuts).unwrap();
        let ok = parser.parse_body("red,1.0,yes\n\nblue,6.0,no\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(matches!(
            parser.parse_body("red,1.0,yes\nbogus,1.0,yes\n"),
            Err(IngestError::BadRow { row: 2, .. })
        ));
    }

    #[test]
    fn rejects_continuous_schema() {
        let schema = Schema::new(
            vec![
                Attribute::continuous("raw"),
                Attribute::categorical("ok", Domain::from_labels(["yes", "no"])),
            ],
            1,
        )
        .unwrap();
        assert!(RowParser::new(schema, &[]).is_err());
    }
}
