//! Segmented write-ahead log of appended records.
//!
//! # Frame format
//!
//! A segment file is a sequence of integrity frames, each using the same
//! V2 discipline as `om-cube`'s persistence layer
//! (`[magic: 4][version: 1][payload_len: u64 le][payload][crc32: u32 le]`,
//! IEEE CRC32 over the payload) with its own magic `OMWL`. The payload of
//! one frame is one appended batch:
//!
//! ```text
//! [n_rows: u32 le][n_cols: u32 le][value ids: u32 le × n_rows·n_cols]
//! ```
//!
//! where each row is every schema attribute's `ValueId` (class included)
//! in schema order — the post-discretization categorical encoding, so
//! replay needs no re-binning and reproduces counts exactly.
//!
//! # Segment lifecycle
//!
//! The directory holds `seg-NNNNNNNN.wal` files. Appends go to the
//! highest-numbered (*active*) segment; `seal` rotates to a fresh one.
//! Sealed segments are immutable and correspond 1:1 to delta cubes.
//! Segments are never deleted: recovery replays every sealed segment
//! over the freshly-rebuilt base store, and reloads the active segment's
//! rows into the staging buffer. Because appends are strictly sequential
//! within one file, a crash can only damage the final frame of a
//! segment; replay stops at the first bad frame and reports a torn tail
//! rather than failing. Before the active segment is reopened for
//! append, any torn tail is truncated away — otherwise rows appended
//! after recovery would sit behind the corrupt bytes and be silently
//! dropped by the *next* replay despite having been acked as durable.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use om_cube::persist::crc32;
use om_data::ValueId;

use crate::error::IngestError;

const MAGIC: &[u8; 4] = b"OMWL";
const VERSION: u8 = 1;
/// Frame overhead: magic + version + length + trailing CRC.
const HEADER: usize = 4 + 1 + 8;

/// Append-side handle to a WAL directory.
pub struct Wal {
    dir: PathBuf,
    active_index: u64,
    file: File,
    active_rows: usize,
    bytes: u64,
    sync_writes: bool,
}

/// Everything recovered from an existing WAL directory on open.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Row batches of each sealed segment, oldest first — one delta cube
    /// per entry.
    pub sealed: Vec<Vec<Vec<ValueId>>>,
    /// Rows of the still-active segment (the staging buffer's content at
    /// crash time that never made it into a delta).
    pub active: Vec<Vec<ValueId>>,
    /// True if any segment ended in a torn or corrupt frame that was
    /// dropped during replay.
    pub torn_tail: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

/// Encode one batch as a framed byte vector.
fn encode_frame(rows: &[Vec<ValueId>]) -> Vec<u8> {
    let n_cols = rows.first().map_or(0, Vec::len);
    let mut payload = Vec::with_capacity(8 + rows.len() * n_cols * 4);
    payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(n_cols as u32).to_le_bytes());
    for row in rows {
        for &id in row {
            payload.extend_from_slice(&id.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(HEADER + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Little-endian reads over an untrusted replay buffer. Out-of-range
/// offsets return `None` — a torn or corrupt tail must never panic the
/// recovery path, it just truncates the replay.
fn read_u32_at(buf: &[u8], at: usize) -> Option<u32> {
    let bytes = buf.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u64_at(buf: &[u8], at: usize) -> Option<u64> {
    let bytes = buf.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Decode every intact frame of one segment. Returns the recovered rows
/// and the byte length of the intact prefix — equal to `buf.len()` iff
/// the segment ended cleanly (no torn/corrupt tail).
fn decode_segment(buf: &[u8]) -> (Vec<Vec<ValueId>>, usize) {
    let mut rows = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_frame(buf, at, &mut rows) {
            Some(next) => at = next,
            None => return (rows, at), // torn/corrupt tail: stop replay here
        }
    }
    (rows, at)
}

/// Decode the frame starting at byte `at`, appending its rows on
/// success and returning the offset just past it. `None` means the
/// bytes from `at` on are torn or corrupt; nothing is appended. Every
/// read is bounds-checked — replay input is whatever survived a crash.
fn decode_frame(buf: &[u8], at: usize, rows: &mut Vec<Vec<ValueId>>) -> Option<usize> {
    let rest = buf.get(at..)?;
    if rest.get(..4)? != MAGIC || *rest.get(4)? != VERSION {
        return None;
    }
    let len = usize::try_from(read_u64_at(rest, 5)?).ok()?;
    let payload = rest.get(HEADER..HEADER.checked_add(len)?)?;
    let stored_crc = read_u32_at(rest, HEADER + len)?;
    if crc32(payload) != stored_crc || len < 8 {
        return None;
    }
    let n_rows = read_u32_at(payload, 0)? as usize;
    let n_cols = read_u32_at(payload, 4)? as usize;
    if len != 8usize.checked_add(n_rows.checked_mul(n_cols)?.checked_mul(4)?)? {
        return None;
    }
    let mut batch = Vec::new();
    let mut p = 8;
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            row.push(read_u32_at(payload, p)?);
            p += 4;
        }
        batch.push(row);
    }
    rows.append(&mut batch);
    Some(at + HEADER + len + 4)
}

impl Wal {
    /// Open (or create) a WAL directory, replaying whatever it holds.
    /// The highest-numbered segment becomes the active one and is
    /// reopened for append; all earlier segments are reported sealed.
    ///
    /// # Errors
    /// I/O failures only — torn tails are recovered, not errors.
    pub fn open(dir: &Path, sync_writes: bool) -> Result<(Self, Recovery), IngestError> {
        std::fs::create_dir_all(dir)?;
        let mut indices: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(i) = num.parse::<u64>() {
                    indices.push(i);
                }
            }
        }
        indices.sort_unstable();

        let mut recovery = Recovery::default();
        let mut bytes = 0u64;
        let mut active_valid_len = 0u64;
        for (pos, &i) in indices.iter().enumerate() {
            let mut raw = Vec::new();
            File::open(segment_path(dir, i))?.read_to_end(&mut raw)?;
            let (rows, valid_len) = decode_segment(&raw);
            recovery.torn_tail |= valid_len != raw.len();
            if pos + 1 == indices.len() {
                // The active segment is truncated to its intact prefix
                // below, so count only those bytes.
                bytes += valid_len as u64;
                active_valid_len = valid_len as u64;
                recovery.active = rows;
            } else {
                bytes += raw.len() as u64;
                recovery.sealed.push(rows);
            }
        }

        let active_index = indices.last().copied().unwrap_or(0);
        let active_rows = recovery.active.len();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, active_index))?;
        // A torn/corrupt tail must not survive into the append path:
        // replay stops at the first bad frame, so frames appended behind
        // the bad bytes would be acked as durable yet dropped by the next
        // replay. Cut the segment back to its last intact frame first.
        if file.metadata()?.len() > active_valid_len {
            file.set_len(active_valid_len)?;
            file.sync_data()?;
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
                active_index,
                file,
                active_rows,
                bytes,
                sync_writes,
            },
            recovery,
        ))
    }

    /// Append one batch of rows to the active segment, durably if the
    /// WAL was opened with `sync_writes`.
    ///
    /// # Errors
    /// I/O failures; the batch may then be partially on disk, which a
    /// later replay drops as a torn tail.
    pub fn append(&mut self, rows: &[Vec<ValueId>]) -> Result<(), IngestError> {
        if rows.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(rows);
        self.file.write_all(&frame)?;
        if self.sync_writes {
            self.file.sync_data()?;
        }
        self.active_rows += rows.len();
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Seal the active segment and rotate to a fresh one. The sealed
    /// segment's rows are exactly what the caller built a delta from.
    ///
    /// # Errors
    /// I/O failures creating the next segment; in durable mode
    /// (`sync_writes`), also a failed final sync — a segment must not be
    /// sealed (and its delta served) while its frames may not be on disk.
    pub fn seal(&mut self) -> Result<(), IngestError> {
        if self.sync_writes {
            self.file.sync_data()?;
        } else {
            let _ = self.file.sync_data();
        }
        self.active_index += 1;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.active_index))?;
        self.active_rows = 0;
        Ok(())
    }

    /// Total bytes across all segment files written or recovered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Rows appended to the active (unsealed) segment.
    pub fn active_rows(&self) -> usize {
        self.active_rows
    }

    /// Index of the active segment (== number of seals so far).
    pub fn active_index(&self) -> u64 {
        self.active_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "om-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rows(range: std::ops::Range<u32>) -> Vec<Vec<ValueId>> {
        range.map(|i| vec![i, i + 1, i % 3]).collect()
    }

    #[test]
    fn append_seal_and_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, rec) = Wal::open(&dir, true).unwrap();
            assert!(rec.sealed.is_empty() && rec.active.is_empty());
            wal.append(&rows(0..4)).unwrap();
            wal.append(&rows(4..6)).unwrap();
            wal.seal().unwrap();
            wal.append(&rows(6..9)).unwrap();
            assert_eq!(wal.active_rows(), 3);
            assert_eq!(wal.active_index(), 1);
        }
        let (wal, rec) = Wal::open(&dir, true).unwrap();
        assert_eq!(rec.sealed.len(), 1);
        assert_eq!(rec.sealed[0], rows(0..6));
        assert_eq!(rec.active, rows(6..9));
        assert!(!rec.torn_tail);
        assert_eq!(wal.active_rows(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, true).unwrap();
            wal.append(&rows(0..5)).unwrap();
            wal.append(&rows(5..8)).unwrap();
        }
        // Chop bytes off the final frame, simulating a crash mid-write.
        let path = segment_path(&dir, 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 7]).unwrap();
        let (_, rec) = Wal::open(&dir, true).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.active, rows(0..5), "intact first frame survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay_at_bad_frame() {
        let dir = tmp_dir("crc");
        {
            let (mut wal, _) = Wal::open(&dir, true).unwrap();
            wal.append(&rows(0..3)).unwrap();
            wal.append(&rows(3..6)).unwrap();
        }
        let path = segment_path(&dir, 0);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip one payload bit in the second frame.
        let second = encode_frame(&rows(0..3)).len();
        raw[second + HEADER + 2] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let (_, rec) = Wal::open(&dir, true).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.active, rows(0..3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_torn_recovery_survive_the_next_replay() {
        let dir = tmp_dir("torn-reappend");
        {
            let (mut wal, _) = Wal::open(&dir, true).unwrap();
            wal.append(&rows(0..5)).unwrap();
            wal.append(&rows(5..8)).unwrap();
        }
        let path = segment_path(&dir, 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 7]).unwrap();
        let intact = encode_frame(&rows(0..5)).len() as u64;
        {
            let (mut wal, rec) = Wal::open(&dir, true).unwrap();
            assert!(rec.torn_tail);
            assert_eq!(wal.bytes(), intact, "torn bytes not counted");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                intact,
                "torn tail truncated before reopening for append"
            );
            wal.append(&rows(8..12)).unwrap();
        }
        // The second replay must see both the pre-crash intact frame and
        // the rows appended after recovery — nothing hides behind a
        // corrupt tail.
        let (_, rec) = Wal::open(&dir, true).unwrap();
        assert!(!rec.torn_tail);
        let mut expected = rows(0..5);
        expected.extend(rows(8..12));
        assert_eq!(rec.active, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_append_writes_nothing() {
        let dir = tmp_dir("empty");
        let (mut wal, _) = Wal::open(&dir, false).unwrap();
        let before = wal.bytes();
        wal.append(&[]).unwrap();
        assert_eq!(wal.bytes(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
