//! The live ingestion pipeline: WAL append → staging → delta cube →
//! background compaction → snapshot publish.
//!
//! ```text
//!  rows ──► RowParser ──► WAL append (durable) ──► staging buffer
//!                                                     │ seal_rows
//!                                                     ▼
//!                                           delta CubeStore (built
//!                                           synchronously, small)
//!                                                     │ channel
//!                                                     ▼
//!                                        compactor thread: merge_from
//!                                        into master, publish snapshot
//! ```
//!
//! Writers hold the state lock only for the WAL write and an occasional
//! small delta build; queries never touch that lock — they read the
//! [`SharedStore`]'s current generation. The compactor batches every
//! delta waiting in its channel into one merge + one publish, so cube
//! copy-on-write cost is amortized under bursts.
//!
//! Crash model: a row is durable once its WAL append returned. Recovery
//! ([`IngestHandle::start`]) rebuilds sealed segments into deltas and
//! merges them before serving, and reloads the active segment into the
//! staging buffer — counts after a crash are byte-identical to a run
//! that never crashed, because merge is associative over row batches.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use om_cube::{CubeStore, SharedStore, StoreBuildOptions};
use om_data::{Column, Dataset, Schema, ValueId};
use om_discretize::CutPoints;
use om_fault::fail;

use crate::error::IngestError;
use crate::row::RowParser;
use crate::wal::Wal;

/// Knobs for a live ingestor.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory of WAL segments; created if absent, replayed if not.
    pub wal_dir: PathBuf,
    /// Staged rows that trigger sealing a segment into a delta cube.
    pub seal_rows: usize,
    /// Fsync after every append (durable but slower). Benchmarks turn
    /// this off; production keeps it on.
    pub sync_writes: bool,
}

impl IngestConfig {
    /// Defaults: seal every 4096 rows, fsync on.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        Self {
            wal_dir: wal_dir.into(),
            seal_rows: 4096,
            sync_writes: true,
        }
    }
}

/// Point-in-time ingestion counters (the `/metrics` ingest series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Rows accepted (durably appended) since start, recovery included.
    pub rows_total: u64,
    /// Segments sealed into delta cubes.
    pub segments_sealed_total: u64,
    /// Compactor merge+publish cycles.
    pub compactions_total: u64,
    /// Deltas the compactor failed to merge (each leaves the served
    /// store lagging the WAL until a restart replays the segment).
    pub merge_failures_total: u64,
    /// Currently-published store generation.
    pub store_generation: u64,
    /// Bytes across all WAL segment files.
    pub wal_bytes: u64,
}

#[derive(Default)]
struct Metrics {
    rows: AtomicU64,
    sealed: AtomicU64,
    compactions: AtomicU64,
    merge_failures: AtomicU64,
    wal_bytes: AtomicU64,
}

enum Msg {
    // Boxed: a CubeStore now carries its column index, and the variant
    // would otherwise dwarf Barrier (clippy::large_enum_variant).
    Delta(Box<CubeStore>),
    Barrier(Sender<()>),
}

struct State {
    wal: Wal,
    staging: Vec<Vec<ValueId>>,
}

struct Inner {
    parser: RowParser,
    attrs: Vec<usize>,
    seal_rows: usize,
    shared: SharedStore,
    // Arc'd because the compactor thread shares the counters; the thread
    // must NOT hold the whole `Inner`, or the drop-to-join cycle would
    // keep both alive forever.
    metrics: Arc<Metrics>,
    state: Mutex<State>,
    tx: Mutex<Option<Sender<Msg>>>,
    compactor: Mutex<Option<JoinHandle<()>>>,
}

/// Clonable handle to a running ingestor. All clones feed the same WAL,
/// staging buffer, and compactor; dropping the last clone shuts the
/// compactor down (after it drains its queue).
#[derive(Clone)]
pub struct IngestHandle {
    inner: Arc<Inner>,
}

/// Build one delta store over a sealed batch of schema-ordered rows.
fn build_delta(
    schema: &Schema,
    attrs: &[usize],
    rows: &[Vec<ValueId>],
) -> Result<CubeStore, IngestError> {
    let n_attrs = schema.n_attributes();
    let mut columns: Vec<Vec<ValueId>> = vec![Vec::with_capacity(rows.len()); n_attrs];
    for row in rows {
        for (col, &id) in columns.iter_mut().zip(row) {
            col.push(id);
        }
    }
    let ds = Dataset::from_columns(
        schema.clone(),
        columns.into_iter().map(Column::Categorical).collect(),
    )?;
    // Deltas are small (≤ seal_rows); a single-threaded build avoids
    // spawning a worker pool on every seal. No index either — a delta
    // exists only to be folded into the master store, never queried.
    Ok(CubeStore::build(
        &ds,
        &StoreBuildOptions {
            attrs: Some(attrs.to_vec()),
            n_threads: 1,
            index: false,
        },
    )?)
}

/// Merge every queued delta into `master`, publish once per batch.
fn compactor_loop(
    mut master: CubeStore,
    rx: &Receiver<Msg>,
    shared: &SharedStore,
    metrics: &Metrics,
) {
    while let Ok(first) = rx.recv() {
        let mut queue = vec![first];
        while let Ok(more) = rx.try_recv() {
            queue.push(more);
        }
        let mut acks = Vec::new();
        let mut dirty = false;
        for msg in queue {
            match msg {
                Msg::Delta(delta) => {
                    // An injected merge fault models the process dying
                    // before compaction: the delta stays WAL-durable and
                    // is recovered on restart.
                    let merged = fail::inject("ingest.merge")
                        .map_err(IngestError::from)
                        .and_then(|()| Ok(master.merge_from(&delta)?));
                    match merged {
                        Ok(()) => dirty = true,
                        Err(e) => {
                            // Deltas are pre-validated, so a real merge
                            // failure means the served store diverges
                            // from the WAL until a restart replays the
                            // segment — it must not vanish silently.
                            metrics.merge_failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "om-ingest: compactor dropped a delta ({e}); \
                                 served store lags the WAL until restart"
                            );
                        }
                    }
                }
                Msg::Barrier(ack) => acks.push(ack),
            }
        }
        if dirty {
            shared.publish(master.clone());
            metrics.compactions.fetch_add(1, Ordering::Relaxed);
        }
        for ack in acks {
            let _ = ack.send(());
        }
    }
}

impl IngestHandle {
    /// Start (or recover) a live ingestor over the store currently
    /// published in `shared`.
    ///
    /// `schema` must be the discretized schema the store was built over;
    /// `cuts` are the cut points of originally-continuous attributes so
    /// numeric fields in live rows bin identically to the offline build.
    ///
    /// Recovery: sealed WAL segments found in `config.wal_dir` are
    /// rebuilt into delta cubes and merged (then published) before this
    /// returns; the active segment's rows are reloaded into staging.
    ///
    /// # Errors
    /// Schema rejection (continuous attributes, lazy store), WAL I/O,
    /// or a delta rebuild failure on corrupted history.
    pub fn start(
        schema: Schema,
        cuts: &[(usize, CutPoints)],
        shared: SharedStore,
        config: &IngestConfig,
    ) -> Result<Self, IngestError> {
        if config.seal_rows == 0 {
            return Err(IngestError::Schema("seal_rows must be at least 1".into()));
        }
        let base = shared.snapshot();
        if !base.is_eager() {
            return Err(IngestError::Schema(
                "live ingestion requires an eager cube store".into(),
            ));
        }
        let parser = RowParser::new(schema, cuts)?;
        let attrs = base.attrs().to_vec();

        let (wal, recovery) = Wal::open(&config.wal_dir, config.sync_writes)?;
        if recovery.torn_tail {
            // The torn rows were never acked (their append/seal did not
            // return), so dropping them is correct — but worth a trace.
            eprintln!(
                "om-ingest: WAL recovery in {} dropped a torn/corrupt segment tail \
                 (rows from an unacknowledged write)",
                config.wal_dir.display()
            );
        }
        let mut master = base.store().clone();
        drop(base);
        let mut recovered_rows = 0u64;
        let mut sealed = 0u64;
        for segment in &recovery.sealed {
            if segment.is_empty() {
                continue;
            }
            recovered_rows += segment.len() as u64;
            sealed += 1;
            let delta = build_delta(parser.schema(), &attrs, segment)?;
            master.merge_from(&delta)?;
        }
        if sealed > 0 {
            shared.publish(master.clone());
        }
        recovered_rows += recovery.active.len() as u64;

        let (tx, rx) = channel::unbounded::<Msg>();
        let metrics = Arc::new(Metrics {
            rows: AtomicU64::new(recovered_rows),
            sealed: AtomicU64::new(sealed),
            compactions: AtomicU64::new(0),
            merge_failures: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(wal.bytes()),
        });
        let inner = Arc::new(Inner {
            parser,
            attrs,
            seal_rows: config.seal_rows,
            shared: shared.clone(),
            metrics: Arc::clone(&metrics),
            state: Mutex::new(State {
                wal,
                staging: recovery.active,
            }),
            tx: Mutex::new(Some(tx)),
            compactor: Mutex::new(None),
        });
        let handle = std::thread::Builder::new()
            .name("om-ingest-compactor".into())
            .spawn(move || compactor_loop(master, &rx, &shared, &metrics))
            .map_err(IngestError::Io)?;
        *inner.compactor.lock() = Some(handle);

        let this = Self { inner };
        // A recovered staging buffer past the seal threshold (crash
        // landed between append and seal) seals immediately.
        {
            // om-lint: allow(lock-across-io) — single-writer recovery: nothing else can observe the store until open() returns; the seal fsync must complete under the lock
            let mut state = this.inner.state.lock();
            if state.staging.len() >= this.inner.seal_rows {
                this.seal_locked(&mut state)?;
            }
        }
        Ok(this)
    }

    /// Append a newline-separated batch of CSV rows (schema order, class
    /// included). All-or-nothing: on any bad row, nothing is appended.
    /// Returns the number of rows accepted.
    ///
    /// # Errors
    /// [`IngestError::BadRow`] on validation failures; WAL/fault errors
    /// on the durability path.
    pub fn append_csv(&self, body: &str) -> Result<usize, IngestError> {
        let rows = self.inner.parser.parse_body(body)?;
        self.append_rows(rows)
    }

    /// Append already-split label rows (the typed `/v1/ingest` path:
    /// each row is every schema attribute's label, class included, in
    /// schema order). All-or-nothing, like [`Self::append_csv`].
    /// Returns the number of rows accepted.
    ///
    /// # Errors
    /// As [`Self::append_csv`].
    pub fn append_labeled(&self, rows: &[Vec<String>]) -> Result<usize, IngestError> {
        let parsed = rows
            .iter()
            .enumerate()
            .map(|(i, fields)| self.inner.parser.parse_fields(fields, i + 1))
            .collect::<Result<Vec<_>, _>>()?;
        self.append_rows(parsed)
    }

    /// Append pre-encoded rows (each: every schema attribute's `ValueId`
    /// in schema order). Validates arity and id ranges.
    ///
    /// # Errors
    /// As [`Self::append_csv`].
    pub fn append_rows(&self, rows: Vec<Vec<ValueId>>) -> Result<usize, IngestError> {
        let schema = self.inner.parser.schema();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.n_attributes() {
                return Err(IngestError::BadRow {
                    row: i + 1,
                    reason: format!(
                        "expected {} values, got {}",
                        schema.n_attributes(),
                        row.len()
                    ),
                });
            }
            for (attr, &id) in row.iter().enumerate() {
                if id as usize >= schema.attribute(attr).cardinality() {
                    return Err(IngestError::BadRow {
                        row: i + 1,
                        reason: format!(
                            "attribute {:?}: value id {id} out of range",
                            schema.attribute(attr).name()
                        ),
                    });
                }
            }
        }
        if rows.is_empty() {
            return Ok(0);
        }
        let n = rows.len();
        // om-lint: allow(lock-across-io) — the state lock IS the WAL serialization point: appends must hit the log in lock order, so the fsync happens under it by contract (docs/ingest.md)
        let mut state = self.inner.state.lock();
        fail::inject("ingest.append")?;
        state.wal.append(&rows)?;
        self.inner.metrics.rows.fetch_add(n as u64, Ordering::Relaxed);
        self.inner
            .metrics
            .wal_bytes
            .store(state.wal.bytes(), Ordering::Relaxed);
        state.staging.extend(rows);
        if state.staging.len() >= self.inner.seal_rows {
            self.seal_locked(&mut state)?;
        }
        Ok(n)
    }

    /// Seal the current staging buffer into a delta now, regardless of
    /// size. No-op on an empty buffer.
    ///
    /// # Errors
    /// WAL rotation or delta-build failures.
    pub fn seal_now(&self) -> Result<(), IngestError> {
        // om-lint: allow(lock-across-io) — seal swaps the staging buffer and rotates the WAL atomically; the segment fsync under the lock is the crash-consistency boundary
        let mut state = self.inner.state.lock();
        self.seal_locked(&mut state)
    }

    fn seal_locked(&self, state: &mut State) -> Result<(), IngestError> {
        if state.staging.is_empty() {
            return Ok(());
        }
        // The ISSUE's crash point: rows are WAL-durable but the segment
        // is not yet sealed. An injected error here leaves exactly that
        // state behind for recovery to replay.
        fail::inject("ingest.seal")?;
        state.wal.seal()?;
        let rows = std::mem::take(&mut state.staging);
        let delta = build_delta(self.inner.parser.schema(), &self.inner.attrs, &rows)?;
        self.inner.metrics.sealed.fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .wal_bytes
            .store(state.wal.bytes(), Ordering::Relaxed);
        self.send(Msg::Delta(Box::new(delta)))
    }

    fn send(&self, msg: Msg) -> Result<(), IngestError> {
        match self.inner.tx.lock().as_ref() {
            Some(tx) => tx.send(msg).map_err(|_| IngestError::Closed),
            None => Err(IngestError::Closed),
        }
    }

    /// Seal pending rows and block until the compactor has merged and
    /// published everything submitted before this call. After `flush`,
    /// a fresh snapshot reflects every accepted row.
    ///
    /// # Errors
    /// Seal failures, or [`IngestError::Closed`] after shutdown.
    pub fn flush(&self) -> Result<(), IngestError> {
        self.seal_now()?;
        let (ack_tx, ack_rx) = channel::bounded::<()>(1);
        self.send(Msg::Barrier(ack_tx))?;
        ack_rx.recv().map_err(|_| IngestError::Closed)
    }

    /// Current counters, including the published store generation.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            rows_total: self.inner.metrics.rows.load(Ordering::Relaxed),
            segments_sealed_total: self.inner.metrics.sealed.load(Ordering::Relaxed),
            compactions_total: self.inner.metrics.compactions.load(Ordering::Relaxed),
            merge_failures_total: self.inner.metrics.merge_failures.load(Ordering::Relaxed),
            store_generation: self.inner.shared.generation(),
            wal_bytes: self.inner.metrics.wal_bytes.load(Ordering::Relaxed),
        }
    }

    /// The shared store this ingestor publishes into.
    pub fn shared_store(&self) -> &SharedStore {
        &self.inner.shared
    }

    /// Render the ingest Prometheus series (appended to `/metrics`).
    pub fn render_metrics(&self) -> String {
        let stats = self.stats();
        format!(
            "# TYPE om_ingest_rows_total counter\n\
             om_ingest_rows_total {}\n\
             # TYPE om_ingest_segments_sealed_total counter\n\
             om_ingest_segments_sealed_total {}\n\
             # TYPE om_compactions_total counter\n\
             om_compactions_total {}\n\
             # TYPE om_ingest_merge_failures_total counter\n\
             om_ingest_merge_failures_total {}\n\
             # TYPE om_store_generation gauge\n\
             om_store_generation {}\n\
             # TYPE om_wal_bytes gauge\n\
             om_wal_bytes {}\n",
            stats.rows_total,
            stats.segments_sealed_total,
            stats.compactions_total,
            stats.merge_failures_total,
            stats.store_generation,
            stats.wal_bytes
        )
    }

    /// Stop accepting rows and join the compactor after it drains its
    /// queue. Staged-but-unsealed rows stay in the WAL for the next
    /// start. Idempotent.
    pub fn shutdown(&self) {
        self.inner.tx.lock().take();
        // Take the handle out, then join: an `if let` on the lock call
        // would keep the guard alive across the join (scrutinee
        // temporaries live for the whole body), serializing anyone who
        // touches the handle slot behind a thread exit.
        let handle = self.inner.compactor.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.tx.lock().take();
        let handle = self.compactor.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}
