//! Typed errors for the ingestion pipeline.

use om_cube::CubeError;
use om_data::DataError;
use om_fault::FaultError;

/// Everything that can go wrong between a submitted row and a published
/// store generation.
#[derive(Debug)]
pub enum IngestError {
    /// A submitted row failed validation (unknown label, wrong field
    /// count, unparseable numeric). `row` is 1-based within the batch.
    /// The whole batch is rejected: either every row is durable or none.
    BadRow { row: usize, reason: String },
    /// The serving schema cannot accept live rows (e.g. an attribute is
    /// still continuous, or the store is lazy).
    Schema(String),
    /// Write-ahead log I/O failure.
    Io(std::io::Error),
    /// Structural WAL corruption beyond a recoverable torn tail.
    Wal(String),
    /// Delta dataset assembly failed.
    Data(DataError),
    /// Delta cube build or merge failed.
    Cube(CubeError),
    /// An injected fault (chaos builds) or tripped budget.
    Fault(FaultError),
    /// The ingestor was shut down; no more rows are accepted.
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::BadRow { row, reason } => write!(f, "bad row {row}: {reason}"),
            IngestError::Schema(msg) => write!(f, "schema: {msg}"),
            IngestError::Io(e) => write!(f, "wal io: {e}"),
            IngestError::Wal(msg) => write!(f, "wal: {msg}"),
            IngestError::Data(e) => write!(f, "delta data: {e}"),
            IngestError::Cube(e) => write!(f, "delta cube: {e}"),
            IngestError::Fault(e) => write!(f, "fault: {e}"),
            IngestError::Closed => write!(f, "ingestor is shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<DataError> for IngestError {
    fn from(e: DataError) -> Self {
        IngestError::Data(e)
    }
}

impl From<CubeError> for IngestError {
    fn from(e: CubeError) -> Self {
        IngestError::Cube(e)
    }
}

impl From<FaultError> for IngestError {
    fn from(e: FaultError) -> Self {
        IngestError::Fault(e)
    }
}

impl IngestError {
    /// True for client-caused rejections (HTTP 400 territory), false for
    /// internal failures (HTTP 500 territory).
    pub fn is_bad_request(&self) -> bool {
        matches!(self, IngestError::BadRow { .. })
    }
}
