//! Live incremental ingestion for the Opportunity Map store.
//!
//! The paper's pipeline is batch-offline: "more than 200 GB of data
//! every month", cubes generated "off-line, e.g., in the evening"
//! (Section III-B). This crate turns that nightly rebuild into a
//! continuously-updating store, exploiting the additivity the merge
//! algebra in `om-cube` already proves: `cube(A ∪ B) = cube(A) +
//! cube(B)` for disjoint record batches.
//!
//! Four pieces (see `docs/ingest.md` for the full design):
//!
//! * [`wal`] — a length+CRC-framed, segmented write-ahead log; a row is
//!   durable the moment its append returns.
//! * [`row`] — validation of live rows against the serving schema,
//!   binning numerics through the offline build's cut points.
//! * [`IngestHandle`] — the staging buffer and seal protocol: every
//!   `seal_rows` rows, the WAL rotates and the batch becomes a *delta*
//!   [`om_cube::CubeStore`].
//! * the compactor — a background thread merging deltas into the master
//!   store and publishing immutable generations through
//!   [`om_cube::SharedStore`], so queries never see a torn store.

// Request-path crate: panics here become 500s or worker deaths, so
// unwrap/expect are lint-visible outside unit tests (om-lint's
// panic-path check enforces the same rule with suppression reasons).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
mod ingest;
pub mod row;
pub mod wal;

pub use error::IngestError;
pub use ingest::{IngestConfig, IngestHandle, IngestStats};
pub use row::RowParser;
