//! Bulk categorical datasets for the scale-up experiments (Figs. 9–11).
//!
//! The paper's performance evaluation sweeps the number of attributes
//! (40–160) at 2 million records, and the number of records (2–8 million,
//! by duplication) at 160 attributes. This module generates datasets of
//! arbitrary width/height with realistic value cardinalities and a mildly
//! class-correlated signal so the cubes are not degenerate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use om_data::{Attribute, Column, Dataset, Domain, Schema, ValueId};

/// Configuration for [`generate_scaleup`].
#[derive(Debug, Clone)]
pub struct ScaleUpConfig {
    /// Number of non-class attributes.
    pub n_attrs: usize,
    /// Number of records.
    pub n_records: usize,
    /// Values per attribute cycle through `min_values..=max_values`.
    pub min_values: usize,
    pub max_values: usize,
    /// Number of classes (>= 2); class 0 is the skewed majority.
    pub n_classes: usize,
    /// Probability of the majority class.
    pub majority_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleUpConfig {
    fn default() -> Self {
        Self {
            n_attrs: 40,
            n_records: 100_000,
            min_values: 3,
            max_values: 8,
            n_classes: 3,
            majority_share: 0.95,
            seed: 7,
        }
    }
}

/// Generate a wide categorical dataset per `config`.
///
/// Attribute `i` has `min_values + (i % span)` values. The class is drawn
/// first (skewed), then each attribute value is drawn with a slight
/// class-dependent tilt so attribute/class associations are non-trivial.
///
/// # Panics
/// Panics on degenerate configuration (no attributes, `max < min`, fewer
/// than two classes, or a majority share outside `(0,1)`).
pub fn generate_scaleup(config: &ScaleUpConfig) -> Dataset {
    assert!(config.n_attrs >= 1, "need at least one attribute");
    assert!(
        config.max_values >= config.min_values && config.min_values >= 2,
        "value cardinality range must satisfy 2 <= min <= max"
    );
    assert!(config.n_classes >= 2, "need at least two classes");
    assert!(
        config.majority_share > 0.0 && config.majority_share < 1.0,
        "majority share must be in (0,1)"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let span = config.max_values - config.min_values + 1;
    let n = config.n_records;

    // Class column first.
    let minority_share = (1.0 - config.majority_share) / (config.n_classes - 1) as f64;
    let mut class_col: Vec<ValueId> = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let c = if u < config.majority_share {
            0
        } else {
            1 + ((u - config.majority_share) / minority_share) as usize
        }
        .min(config.n_classes - 1);
        class_col.push(c as ValueId);
    }

    let mut attributes: Vec<Attribute> = Vec::with_capacity(config.n_attrs + 1);
    let mut columns: Vec<Column> = Vec::with_capacity(config.n_attrs + 1);
    for a in 0..config.n_attrs {
        let k = config.min_values + (a % span);
        let labels: Vec<String> = (0..k).map(|v| format!("v{v}")).collect();
        let mut col: Vec<ValueId> = Vec::with_capacity(n);
        // Mild class tilt: minority-class records prefer value (a mod k).
        let hot = (a % k) as ValueId;
        for &c in &class_col {
            let v = if c != 0 && rng.gen::<f64>() < 0.3 {
                hot
            } else {
                rng.gen_range(0..k) as ValueId
            };
            col.push(v);
        }
        attributes.push(Attribute::categorical(
            format!("A{a:03}"),
            Domain::from_labels(labels),
        ));
        columns.push(Column::Categorical(col));
    }

    let class_idx = attributes.len();
    let class_labels: Vec<String> = (0..config.n_classes).map(|c| format!("c{c}")).collect();
    attributes.push(Attribute::categorical(
        "Class",
        Domain::from_labels(class_labels),
    ));
    columns.push(Column::Categorical(class_col));

    let schema = Schema::new(attributes, class_idx).expect("generated schema is valid");
    Dataset::from_columns(schema, columns).expect("generated columns match schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 10,
            n_records: 1_000,
            ..ScaleUpConfig::default()
        });
        assert_eq!(ds.n_rows(), 1_000);
        assert_eq!(ds.schema().n_attributes(), 11);
        assert!(ds.all_categorical());
    }

    #[test]
    fn cardinalities_cycle() {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 8,
            n_records: 100,
            min_values: 3,
            max_values: 5,
            ..ScaleUpConfig::default()
        });
        let cards: Vec<usize> = (0..8)
            .map(|i| ds.schema().attribute(i).cardinality())
            .collect();
        assert_eq!(cards, vec![3, 4, 5, 3, 4, 5, 3, 4]);
    }

    #[test]
    fn majority_class_dominates() {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 50_000,
            majority_share: 0.9,
            ..ScaleUpConfig::default()
        });
        let counts = ds.class_counts();
        let total: u64 = counts.iter().sum();
        let share = counts[0] as f64 / total as f64;
        assert!((share - 0.9).abs() < 0.01, "majority share {share}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic() {
        let cfg = ScaleUpConfig {
            n_attrs: 6,
            n_records: 500,
            ..ScaleUpConfig::default()
        };
        assert_eq!(generate_scaleup(&cfg), generate_scaleup(&cfg));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        generate_scaleup(&ScaleUpConfig {
            n_classes: 1,
            ..ScaleUpConfig::default()
        });
    }
}
