//! Synthetic workload generation.
//!
//! The paper's evaluation uses proprietary Motorola cellular call logs
//! (Section I: >600 attributes, >200 GB/month; Section V-B: a 41-attribute
//! extract; Section V-C: a 160-attribute, 2M-record extract). Those traces
//! are not available, so this crate generates the closest synthetic
//! equivalent:
//!
//! * [`call_log`] — cellular call records whose class (ended-ok / dropped /
//!   setup-fail) follows a logistic model over the attributes, with
//!   **planted effects** ([`effects`]) such as the paper's running example
//!   "phone 2 drops far more often in the morning". Because the effects are
//!   planted, the qualitative case study of Section V-B becomes a
//!   quantitative *recovery* experiment: the comparator should rank the
//!   planted attribute first.
//! * [`scaleup`] — bulk categorical datasets of arbitrary width/height for
//!   the Figs. 9–11 performance experiments.
//! * [`domains`] — two further engineering domains (network diagnostics,
//!   manufacturing quality) supporting the paper's generality claim
//!   ("used in … more than 30 data sets in Motorola").
//! * [`ground_truth`] — machine-checkable descriptions of what was planted.

pub mod call_log;
pub mod domains;
pub mod effects;
pub mod ground_truth;
pub mod scaleup;

pub use call_log::{generate_call_log, paper_scenario, CallLogConfig};
pub use effects::{Effect, EffectTarget};
pub use ground_truth::GroundTruth;
pub use scaleup::{generate_scaleup, ScaleUpConfig};
