//! Additional engineering domains.
//!
//! The paper stresses that Opportunity Map "is general and is not specific
//! to a particular application" (Section I). These generators provide two
//! further diagnostic-mining domains used by the examples:
//!
//! * **network diagnostics** — compare time periods instead of products
//!   (the paper's Section III-C closing example: "calls in the morning tend
//!   to drop much more frequently than in the afternoon … it may be
//!   discovered that the network equipment is not stable in the morning due
//!   to high call volumes");
//! * **manufacturing quality** — compare production lines on defect rates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use om_data::{Attribute, Column, Dataset, Domain, Schema, ValueId};

use crate::effects::{logit, sigmoid};
use crate::ground_truth::GroundTruth;

/// Network-diagnostics scenario: the class of interest is `congested`;
/// mornings are much worse than afternoons, and the *cause* is planted as
/// a `morning × CallVolume = high` interaction — the paper's story that
/// "the network equipment is not stable in the morning due to high call
/// volumes". A mild volume effect common to all periods (the Fig. 2(A)
/// situation) is also present and must not dominate.
///
/// Comparing `TimeOfDay = morning` vs `afternoon` on class `congested`
/// should rank `CallVolume` first with top value `high`.
///
/// Note a deliberately *excluded* design: if morning congestion were
/// driven purely by a different volume *mix* (same conditional rates),
/// the measure of Section IV would correctly score every attribute 0 —
/// it detects conditional-rate excesses, not compositional shifts.
pub fn network_diagnostics(n_records: usize, seed: u64) -> (Dataset, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let times = ["morning", "afternoon", "evening"];
    let vendors = ["vendorA", "vendorB", "vendorC"];
    let backhauls = ["fiber", "microwave", "copper"];
    let volumes = ["low", "medium", "high"];
    let regions = ["north", "south", "east", "west"];

    let n = n_records;
    let mut time_c: Vec<ValueId> = Vec::with_capacity(n);
    let mut vendor_c: Vec<ValueId> = Vec::with_capacity(n);
    let mut backhaul_c: Vec<ValueId> = Vec::with_capacity(n);
    let mut volume_c: Vec<ValueId> = Vec::with_capacity(n);
    let mut region_c: Vec<ValueId> = Vec::with_capacity(n);
    let mut class_c: Vec<ValueId> = Vec::with_capacity(n);

    let base = logit(0.03);
    for _ in 0..n {
        let time = rng.gen_range(0..times.len()) as ValueId;
        // Volume is slightly morning-skewed but present everywhere.
        let volume = if time == 0 {
            match rng.gen::<f64>() {
                u if u < 0.35 => 2,
                u if u < 0.70 => 1,
                _ => 0,
            }
        } else {
            match rng.gen::<f64>() {
                u if u < 0.20 => 2,
                u if u < 0.55 => 1,
                _ => 0,
            }
        } as ValueId;
        let vendor = rng.gen_range(0..vendors.len()) as ValueId;
        let backhaul = rng.gen_range(0..backhauls.len()) as ValueId;
        let region = rng.gen_range(0..regions.len()) as ValueId;

        // A mild volume effect common to every period, a small vendor
        // effect, and the planted cause: mornings fall over under high
        // volume (interaction).
        let mut lo = base;
        if volume == 2 {
            lo += 0.5;
        } else if volume == 1 {
            lo += 0.2;
        }
        if vendor == 1 {
            lo += 0.3;
        }
        if time == 0 && volume == 2 {
            lo += 2.2;
        }
        let p = sigmoid(lo);
        let class = if rng.gen::<f64>() < p { 1 } else { 0 } as ValueId;

        time_c.push(time);
        vendor_c.push(vendor);
        backhaul_c.push(backhaul);
        volume_c.push(volume);
        region_c.push(region);
        class_c.push(class);
    }

    let attributes = vec![
        Attribute::categorical("TimeOfDay", Domain::from_labels(times)),
        Attribute::categorical("Vendor", Domain::from_labels(vendors)),
        Attribute::categorical("Backhaul", Domain::from_labels(backhauls)),
        Attribute::categorical("CallVolume", Domain::from_labels(volumes)),
        Attribute::categorical("Region", Domain::from_labels(regions)),
        Attribute::categorical("Status", Domain::from_labels(["normal", "congested"])),
    ];
    let schema = Schema::new(attributes, 5).expect("valid schema");
    let ds = Dataset::from_columns(
        schema,
        vec![
            Column::Categorical(time_c),
            Column::Categorical(vendor_c),
            Column::Categorical(backhaul_c),
            Column::Categorical(volume_c),
            Column::Categorical(region_c),
            Column::Categorical(class_c),
        ],
    )
    .expect("valid columns");

    let truth = GroundTruth {
        compare_attr: "TimeOfDay".into(),
        baseline_value: "afternoon".into(),
        target_value: "morning".into(),
        target_class: "congested".into(),
        expected_top_attr: "CallVolume".into(),
        expected_top_value: "high".into(),
        uninformative_attrs: vec!["Vendor".into(), "Backhaul".into(), "Region".into()],
        property_attrs: vec![],
    };
    (ds, truth)
}

/// Manufacturing-quality scenario: `line2` has a higher defect rate than
/// `line1`, and the excess is concentrated on `Supplier = supplierX`
/// (line 2 sources a bad component batch). Comparing `line1` vs `line2`
/// on class `defect` should rank `Supplier` first. `Shift` affects both
/// lines equally (uninformative).
pub fn manufacturing_quality(n_records: usize, seed: u64) -> (Dataset, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let lines = ["line1", "line2", "line3"];
    let shifts = ["day", "swing", "night"];
    let suppliers = ["supplierX", "supplierY", "supplierZ"];
    let machines = ["m1", "m2", "m3", "m4"];
    let operators = ["op1", "op2", "op3", "op4", "op5"];

    let n = n_records;
    let mut cols: Vec<Vec<ValueId>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
    let mut class_c: Vec<ValueId> = Vec::with_capacity(n);
    let base = logit(0.02);
    for _ in 0..n {
        let line = rng.gen_range(0..lines.len()) as ValueId;
        let shift = rng.gen_range(0..shifts.len()) as ValueId;
        // Line 2 uses supplierX far more often.
        let supplier = if line == 1 {
            if rng.gen::<f64>() < 0.6 {
                0
            } else {
                rng.gen_range(1..3)
            }
        } else if rng.gen::<f64>() < 0.15 {
            0
        } else {
            rng.gen_range(1..3)
        } as ValueId;
        let machine = rng.gen_range(0..machines.len()) as ValueId;
        let operator = rng.gen_range(0..operators.len()) as ValueId;

        let mut lo = base;
        // The planted cause: supplierX parts fail, but only on line2's
        // calibration (interaction), plus a night-shift effect common to
        // all lines (uninformative for the line1-vs-line2 comparison).
        if supplier == 0 && line == 1 {
            lo += 2.5;
        }
        if shift == 2 {
            lo += 0.7;
        }
        let p = sigmoid(lo);
        let class = if rng.gen::<f64>() < p { 1 } else { 0 } as ValueId;

        cols[0].push(line);
        cols[1].push(shift);
        cols[2].push(supplier);
        cols[3].push(machine);
        cols[4].push(operator);
        class_c.push(class);
    }

    let attributes = vec![
        Attribute::categorical("Line", Domain::from_labels(lines)),
        Attribute::categorical("Shift", Domain::from_labels(shifts)),
        Attribute::categorical("Supplier", Domain::from_labels(suppliers)),
        Attribute::categorical("Machine", Domain::from_labels(machines)),
        Attribute::categorical("Operator", Domain::from_labels(operators)),
        Attribute::categorical("Outcome", Domain::from_labels(["pass", "defect"])),
    ];
    let schema = Schema::new(attributes, 5).expect("valid schema");
    let mut columns: Vec<Column> = cols.into_iter().map(Column::Categorical).collect();
    columns.push(Column::Categorical(class_c));
    let ds = Dataset::from_columns(schema, columns).expect("valid columns");

    let truth = GroundTruth {
        compare_attr: "Line".into(),
        baseline_value: "line1".into(),
        target_value: "line2".into(),
        target_class: "defect".into(),
        expected_top_attr: "Supplier".into(),
        expected_top_value: "supplierX".into(),
        uninformative_attrs: vec!["Shift".into()],
        property_attrs: vec![],
    };
    (ds, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_shape_and_skew() {
        let (ds, truth) = network_diagnostics(20_000, 3);
        assert_eq!(ds.n_rows(), 20_000);
        assert_eq!(ds.schema().class().name(), "Status");
        let counts = ds.class_counts();
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > 0);
        assert_eq!(truth.expected_top_attr, "CallVolume");
    }

    #[test]
    fn network_morning_is_worse() {
        let (ds, _) = network_diagnostics(50_000, 5);
        let s = ds.schema();
        let time = s.attr_index("TimeOfDay").unwrap();
        let times = ds.column(time).as_categorical().unwrap();
        let classes = ds.class_values();
        let rate = |tv: ValueId| {
            let mut n = 0u64;
            let mut c = 0u64;
            for i in 0..ds.n_rows() {
                if times[i] == tv {
                    n += 1;
                    c += (classes[i] == 1) as u64;
                }
            }
            c as f64 / n.max(1) as f64
        };
        assert!(rate(0) > 1.5 * rate(1), "morning {} afternoon {}", rate(0), rate(1));
    }

    #[test]
    fn manufacturing_line2_is_worse() {
        let (ds, _) = manufacturing_quality(50_000, 11);
        let s = ds.schema();
        let line = s.attr_index("Line").unwrap();
        let lines = ds.column(line).as_categorical().unwrap();
        let classes = ds.class_values();
        let rate = |lv: ValueId| {
            let mut n = 0u64;
            let mut c = 0u64;
            for i in 0..ds.n_rows() {
                if lines[i] == lv {
                    n += 1;
                    c += (classes[i] == 1) as u64;
                }
            }
            c as f64 / n.max(1) as f64
        };
        assert!(rate(1) > 2.0 * rate(0), "line2 {} line1 {}", rate(1), rate(0));
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(network_diagnostics(1000, 9).0, network_diagnostics(1000, 9).0);
        assert_eq!(
            manufacturing_quality(1000, 9).0,
            manufacturing_quality(1000, 9).0
        );
    }
}
