//! Planted causal effects for synthetic data.
//!
//! An [`Effect`] shifts the log-odds of one class for records matching a
//! single attribute value or a conjunction of two values. The paper's
//! running example — "in the morning … phone 1 performs much worse than
//! phone 2" (Section I) — is an [`EffectTarget::Interaction`] between
//! `PhoneModel` and `TimeOfCall`.

/// What subset of records an effect applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EffectTarget {
    /// Records where `attr == value`.
    Value { attr: String, value: String },
    /// Records where both conditions hold (a two-way interaction).
    Interaction {
        attr_a: String,
        value_a: String,
        attr_b: String,
        value_b: String,
    },
    /// Records where every condition holds (arbitrary-order interaction;
    /// used to plant nested causes for drill-down experiments).
    Conjunction(Vec<(String, String)>),
}

/// A planted shift of `log_odds` for `class` on matching records.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    pub target: EffectTarget,
    /// Class label whose log-odds is shifted.
    pub class: String,
    /// Additive log-odds shift (positive makes the class more likely).
    pub log_odds: f64,
}

impl Effect {
    /// Main effect: `attr == value` shifts `class` by `log_odds`.
    pub fn value(
        attr: impl Into<String>,
        value: impl Into<String>,
        class: impl Into<String>,
        log_odds: f64,
    ) -> Self {
        Self {
            target: EffectTarget::Value {
                attr: attr.into(),
                value: value.into(),
            },
            class: class.into(),
            log_odds,
        }
    }

    /// Interaction effect: both conditions must hold.
    pub fn interaction(
        attr_a: impl Into<String>,
        value_a: impl Into<String>,
        attr_b: impl Into<String>,
        value_b: impl Into<String>,
        class: impl Into<String>,
        log_odds: f64,
    ) -> Self {
        Self {
            target: EffectTarget::Interaction {
                attr_a: attr_a.into(),
                value_a: value_a.into(),
                attr_b: attr_b.into(),
                value_b: value_b.into(),
            },
            class: class.into(),
            log_odds,
        }
    }

    /// Conjunction effect over any number of conditions.
    pub fn conjunction<I, S>(conditions: I, class: impl Into<String>, log_odds: f64) -> Self
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        Self {
            target: EffectTarget::Conjunction(
                conditions
                    .into_iter()
                    .map(|(a, v)| (a.into(), v.into()))
                    .collect(),
            ),
            class: class.into(),
            log_odds,
        }
    }

    /// Whether the effect applies to a record described by
    /// `(attr name, value label)` lookups.
    pub fn matches(&self, lookup: &dyn Fn(&str) -> Option<String>) -> bool {
        match &self.target {
            EffectTarget::Value { attr, value } => {
                lookup(attr).as_deref() == Some(value.as_str())
            }
            EffectTarget::Interaction {
                attr_a,
                value_a,
                attr_b,
                value_b,
            } => {
                lookup(attr_a).as_deref() == Some(value_a.as_str())
                    && lookup(attr_b).as_deref() == Some(value_b.as_str())
            }
            EffectTarget::Conjunction(conds) => conds
                .iter()
                .all(|(a, v)| lookup(a).as_deref() == Some(v.as_str())),
        }
    }
}

/// Convert a probability to log-odds.
pub fn logit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "logit requires p in (0,1), got {p}");
    (p / (1.0 - p)).ln()
}

/// Convert log-odds back to a probability.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logit_sigmoid_round_trip() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn value_effect_matches() {
        let e = Effect::value("Phone", "ph2", "drop", 1.0);
        let lookup = |a: &str| -> Option<String> {
            (a == "Phone").then(|| "ph2".to_string())
        };
        assert!(e.matches(&lookup));
        let lookup = |a: &str| -> Option<String> {
            (a == "Phone").then(|| "ph1".to_string())
        };
        assert!(!e.matches(&lookup));
    }

    #[test]
    fn interaction_requires_both() {
        let e = Effect::interaction("Phone", "ph2", "Time", "morning", "drop", 2.0);
        let both = |a: &str| -> Option<String> {
            match a {
                "Phone" => Some("ph2".into()),
                "Time" => Some("morning".into()),
                _ => None,
            }
        };
        let only_one = |a: &str| -> Option<String> {
            match a {
                "Phone" => Some("ph2".into()),
                "Time" => Some("evening".into()),
                _ => None,
            }
        };
        assert!(e.matches(&both));
        assert!(!e.matches(&only_one));
    }

    #[test]
    #[should_panic(expected = "logit requires")]
    fn logit_rejects_boundary() {
        logit(1.0);
    }
}
