//! Cellular call-log generation with planted effects.
//!
//! Mirrors the structure of the paper's main application: one record per
//! call, a `CallDisposition` class with heavily skewed outcomes
//! (`ended-ok` dominates; `dropped` and `setup-failed` are the rare,
//! interesting classes), a phone-model attribute, a time-of-call attribute,
//! and both categorical and continuous context attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use om_data::{Attribute, Column, Dataset, Domain, Schema, ValueId};

use crate::effects::{logit, sigmoid, Effect, EffectTarget};
use crate::ground_truth::GroundTruth;

/// Class labels, in domain order.
pub const CLASS_LABELS: [&str; 3] = ["ended-ok", "dropped", "setup-failed"];

/// Configuration for [`generate_call_log`].
#[derive(Debug, Clone)]
pub struct CallLogConfig {
    /// Number of call records.
    pub n_records: usize,
    /// Number of phone models (`ph1`, `ph2`, …).
    pub n_phone_models: usize,
    /// Number of additional uninformative categorical attributes
    /// (`Extra01`, …) with 3–7 values each.
    pub n_extra_attrs: usize,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Baseline probability of `dropped`.
    pub base_drop: f64,
    /// Baseline probability of `setup-failed`.
    pub base_setup_fail: f64,
    /// Log-odds added to `dropped` per 10 dBm of signal below −75 dBm
    /// (gives the discretizer a real continuous effect to find).
    pub signal_effect: f64,
    /// Planted categorical effects.
    pub effects: Vec<Effect>,
    /// Include the `PhoneHardwareVersion` attribute, which is a pure
    /// function of the phone model — the paper's example of a *property
    /// attribute* (Section IV-C).
    pub include_hardware_version: bool,
}

impl Default for CallLogConfig {
    fn default() -> Self {
        Self {
            n_records: 20_000,
            n_phone_models: 6,
            n_extra_attrs: 4,
            seed: DEFAULT_SEED,
            base_drop: 0.02,
            base_setup_fail: 0.01,
            signal_effect: 0.25,
            effects: Vec::new(),
            include_hardware_version: true,
        }
    }
}

/// Arbitrary but fixed default seed.
pub const DEFAULT_SEED: u64 = 0x0fac_ade5;

/// Compiled form of an effect: attribute column indices + value ids.
enum CompiledEffect {
    Value {
        col: usize,
        value: ValueId,
        class: usize,
        log_odds: f64,
    },
    Interaction {
        col_a: usize,
        value_a: ValueId,
        col_b: usize,
        value_b: ValueId,
        class: usize,
        log_odds: f64,
    },
    Conjunction {
        conditions: Vec<(usize, ValueId)>,
        class: usize,
        log_odds: f64,
    },
}

struct CatSpec {
    name: &'static str,
    labels: Vec<String>,
    /// Sampling weights (uniform if empty).
    weights: Vec<f64>,
}

/// Generate a call-log dataset from `config`.
///
/// # Panics
/// Panics if an effect references an unknown attribute/value/class, or if
/// base rates are not in `(0, 1)`.
pub fn generate_call_log(config: &CallLogConfig) -> Dataset {
    assert!(config.n_phone_models >= 1, "need at least one phone model");
    assert!(
        config.base_drop > 0.0 && config.base_drop < 1.0,
        "base_drop must be in (0,1)"
    );
    assert!(
        config.base_setup_fail > 0.0 && config.base_setup_fail < 1.0,
        "base_setup_fail must be in (0,1)"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);

    // ---- categorical attribute specs -------------------------------------
    let mut specs: Vec<CatSpec> = vec![
        CatSpec {
            name: "PhoneModel",
            labels: (1..=config.n_phone_models)
                .map(|i| format!("ph{i}"))
                .collect(),
            weights: vec![],
        },
        CatSpec {
            name: "TimeOfCall",
            labels: ["morning", "afternoon", "evening", "night"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            weights: vec![0.30, 0.35, 0.25, 0.10],
        },
        CatSpec {
            name: "LocationType",
            labels: ["urban", "suburban", "rural", "highway"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            weights: vec![0.40, 0.30, 0.20, 0.10],
        },
        CatSpec {
            name: "NetworkLoad",
            labels: ["low", "medium", "high"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            weights: vec![0.3, 0.5, 0.2],
        },
        CatSpec {
            name: "MovementSpeed",
            labels: ["stationary", "walking", "driving"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            weights: vec![0.5, 0.3, 0.2],
        },
    ];
    // Extra noise attributes keep names stable across configs.
    let extra_names: Vec<String> = (1..=config.n_extra_attrs)
        .map(|i| format!("Extra{i:02}"))
        .collect();
    for (i, _name) in extra_names.iter().enumerate() {
        let n_vals = 3 + (i % 5);
        specs.push(CatSpec {
            name: Box::leak(extra_names[i].clone().into_boxed_str()),
            labels: (0..n_vals).map(|v| format!("v{v}")).collect(),
            weights: vec![],
        });
    }

    // ---- sample categorical columns ---------------------------------------
    let n = config.n_records;
    let mut cat_cols: Vec<Vec<ValueId>> = Vec::with_capacity(specs.len());
    for spec in &specs {
        let k = spec.labels.len();
        let mut col = Vec::with_capacity(n);
        if spec.weights.is_empty() {
            for _ in 0..n {
                col.push(rng.gen_range(0..k) as ValueId);
            }
        } else {
            debug_assert_eq!(spec.weights.len(), k);
            let total: f64 = spec.weights.iter().sum();
            for _ in 0..n {
                let mut u = rng.gen::<f64>() * total;
                let mut picked = k - 1;
                for (j, &w) in spec.weights.iter().enumerate() {
                    if u < w {
                        picked = j;
                        break;
                    }
                    u -= w;
                }
                col.push(picked as ValueId);
            }
        }
        cat_cols.push(col);
    }

    // Hardware version is a pure function of the phone model: odd-numbered
    // models use hw-v1, even-numbered hw-v2 (so ph1 vs ph2 is exactly the
    // paper's property-attribute situation).
    let hw_col: Option<Vec<ValueId>> = config.include_hardware_version.then(|| {
        cat_cols[0]
            .iter()
            .map(|&m| (m % 2) as ValueId)
            .collect()
    });

    // ---- continuous columns ------------------------------------------------
    let mut signal = Vec::with_capacity(n);
    let mut battery = Vec::with_capacity(n);
    for _ in 0..n {
        // Approximate normal via sum of uniforms (Irwin–Hall, 12 terms).
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        signal.push((-75.0 + 12.0 * z).clamp(-110.0, -45.0));
        battery.push(rng.gen_range(1.0..100.0));
    }

    // ---- compile effects ----------------------------------------------------
    let attr_col = |name: &str| -> usize {
        specs
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("effect references unknown attribute {name:?}"))
    };
    let value_id = |col: usize, label: &str| -> ValueId {
        specs[col]
            .labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| {
                panic!(
                    "effect references unknown value {label:?} of {:?}",
                    specs[col].name
                )
            }) as ValueId
    };
    let class_id = |label: &str| -> usize {
        CLASS_LABELS
            .iter()
            .position(|l| *l == label)
            .unwrap_or_else(|| panic!("effect references unknown class {label:?}"))
    };
    let compiled: Vec<CompiledEffect> = config
        .effects
        .iter()
        .map(|e| match &e.target {
            EffectTarget::Value { attr, value } => {
                let col = attr_col(attr);
                CompiledEffect::Value {
                    col,
                    value: value_id(col, value),
                    class: class_id(&e.class),
                    log_odds: e.log_odds,
                }
            }
            EffectTarget::Interaction {
                attr_a,
                value_a,
                attr_b,
                value_b,
            } => {
                let col_a = attr_col(attr_a);
                let col_b = attr_col(attr_b);
                CompiledEffect::Interaction {
                    col_a,
                    value_a: value_id(col_a, value_a),
                    col_b,
                    value_b: value_id(col_b, value_b),
                    class: class_id(&e.class),
                    log_odds: e.log_odds,
                }
            }
            EffectTarget::Conjunction(conds) => {
                let conditions = conds
                    .iter()
                    .map(|(a, v)| {
                        let col = attr_col(a);
                        (col, value_id(col, v))
                    })
                    .collect();
                CompiledEffect::Conjunction {
                    conditions,
                    class: class_id(&e.class),
                    log_odds: e.log_odds,
                }
            }
        })
        .collect();

    // ---- sample classes ------------------------------------------------------
    let base_logit = [logit(config.base_drop), logit(config.base_setup_fail)];
    let mut class_col: Vec<ValueId> = Vec::with_capacity(n);
    for r in 0..n {
        // log-odds for dropped (index 0) and setup-failed (index 1).
        let mut lo = base_logit;
        lo[0] += config.signal_effect * ((-75.0 - signal[r]) / 10.0);
        for ce in &compiled {
            match *ce {
                CompiledEffect::Value {
                    col,
                    value,
                    class,
                    log_odds,
                } => {
                    if cat_cols[col][r] == value && class >= 1 {
                        lo[class - 1] += log_odds;
                    }
                }
                CompiledEffect::Interaction {
                    col_a,
                    value_a,
                    col_b,
                    value_b,
                    class,
                    log_odds,
                } => {
                    if cat_cols[col_a][r] == value_a
                        && cat_cols[col_b][r] == value_b
                        && class >= 1
                    {
                        lo[class - 1] += log_odds;
                    }
                }
                CompiledEffect::Conjunction {
                    ref conditions,
                    class,
                    log_odds,
                } => {
                    if class >= 1
                        && conditions.iter().all(|&(col, v)| cat_cols[col][r] == v)
                    {
                        lo[class - 1] += log_odds;
                    }
                }
            }
        }
        let mut p_drop = sigmoid(lo[0]);
        let mut p_setup = sigmoid(lo[1]);
        // Keep a healthy share of successful calls even under huge effects.
        let sum = p_drop + p_setup;
        if sum > 0.95 {
            p_drop *= 0.95 / sum;
            p_setup *= 0.95 / sum;
        }
        let u: f64 = rng.gen();
        let class = if u < p_drop {
            1 // dropped
        } else if u < p_drop + p_setup {
            2 // setup-failed
        } else {
            0 // ended-ok
        };
        class_col.push(class as ValueId);
    }

    // ---- assemble the dataset -------------------------------------------------
    let mut attributes: Vec<Attribute> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    for (spec, col) in specs.iter().zip(cat_cols) {
        attributes.push(Attribute::categorical(
            spec.name,
            Domain::from_labels(spec.labels.iter().cloned()),
        ));
        columns.push(Column::Categorical(col));
    }
    if let Some(hw) = hw_col {
        attributes.push(Attribute::categorical(
            "PhoneHardwareVersion",
            Domain::from_labels(["hw-v1", "hw-v2"]),
        ));
        columns.push(Column::Categorical(hw));
    }
    attributes.push(Attribute::continuous("SignalStrength"));
    columns.push(Column::Continuous(signal));
    attributes.push(Attribute::continuous("BatteryLevel"));
    columns.push(Column::Continuous(battery));

    let class_idx = attributes.len();
    attributes.push(Attribute::categorical(
        "CallDisposition",
        Domain::from_labels(CLASS_LABELS),
    ));
    columns.push(Column::Categorical(class_col));

    let schema = Schema::new(attributes, class_idx).expect("generated schema is valid");
    Dataset::from_columns(schema, columns).expect("generated columns match schema")
}

/// The paper's running scenario, ready for the comparator:
///
/// * `ph2` is *overall* somewhat worse than `ph1` (main effect), and
/// * `ph2` is *dramatically* worse **in the morning** (interaction) — the
///   situation of Fig. 2(B), so `TimeOfCall` is the attribute the
///   comparator must surface;
/// * `NetworkLoad = high` raises drops *for every phone equally* — the
///   situation of Fig. 2(A), so `NetworkLoad` must **not** be surfaced;
/// * `PhoneHardwareVersion` is a pure function of the phone model — the
///   property attribute of Fig. 8 / Section IV-C.
///
/// Returns the dataset together with the [`GroundTruth`] describing what a
/// correct analysis should find.
pub fn paper_scenario(n_records: usize, seed: u64) -> (Dataset, GroundTruth) {
    let config = CallLogConfig {
        n_records,
        seed,
        effects: vec![
            Effect::value("PhoneModel", "ph2", "dropped", 0.35),
            Effect::interaction(
                "PhoneModel",
                "ph2",
                "TimeOfCall",
                "morning",
                "dropped",
                2.2,
            ),
            Effect::value("NetworkLoad", "high", "dropped", 0.8),
        ],
        ..CallLogConfig::default()
    };
    let ds = generate_call_log(&config);
    let truth = GroundTruth {
        compare_attr: "PhoneModel".into(),
        baseline_value: "ph1".into(),
        target_value: "ph2".into(),
        target_class: "dropped".into(),
        expected_top_attr: "TimeOfCall".into(),
        expected_top_value: "morning".into(),
        uninformative_attrs: vec!["NetworkLoad".into()],
        property_attrs: vec!["PhoneHardwareVersion".into()],
    };
    (ds, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let config = CallLogConfig {
            n_records: 5_000,
            n_extra_attrs: 3,
            ..CallLogConfig::default()
        };
        let ds = generate_call_log(&config);
        assert_eq!(ds.n_rows(), 5_000);
        let s = ds.schema();
        // 5 core + 3 extra + hardware + 2 continuous + class
        assert_eq!(s.n_attributes(), 5 + 3 + 1 + 2 + 1);
        assert_eq!(s.class().name(), "CallDisposition");
        assert_eq!(s.n_classes(), 3);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = CallLogConfig {
            n_records: 2_000,
            ..CallLogConfig::default()
        };
        let a = generate_call_log(&config);
        let b = generate_call_log(&config);
        assert_eq!(a, b);
        let c = generate_call_log(&CallLogConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_skewed_toward_success() {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 30_000,
            ..CallLogConfig::default()
        });
        let counts = ds.class_counts();
        let total: u64 = counts.iter().sum();
        // ended-ok must dominate, but failures must exist.
        assert!(counts[0] as f64 / total as f64 > 0.85);
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn planted_interaction_shows_in_raw_rates() {
        let (ds, _truth) = paper_scenario(120_000, 42);
        let s = ds.schema();
        let phone = s.attr_index("PhoneModel").unwrap();
        let time = s.attr_index("TimeOfCall").unwrap();
        let ph1 = s.attribute(phone).domain().get("ph1").unwrap();
        let ph2 = s.attribute(phone).domain().get("ph2").unwrap();
        let morning = s.attribute(time).domain().get("morning").unwrap();
        let evening = s.attribute(time).domain().get("evening").unwrap();
        let dropped = s.class().domain().get("dropped").unwrap();

        let rate = |pv, tv| {
            let phones = ds.column(phone).as_categorical().unwrap();
            let times = ds.column(time).as_categorical().unwrap();
            let classes = ds.class_values();
            let mut n = 0u64;
            let mut d = 0u64;
            for i in 0..ds.n_rows() {
                if phones[i] == pv && times[i] == tv {
                    n += 1;
                    if classes[i] == dropped {
                        d += 1;
                    }
                }
            }
            d as f64 / n.max(1) as f64
        };
        let ph2_morning = rate(ph2, morning);
        let ph1_morning = rate(ph1, morning);
        let ph2_evening = rate(ph2, evening);
        // The interaction must be visible: ph2 mornings far worse than both
        // ph1 mornings and ph2 evenings.
        assert!(
            ph2_morning > 2.5 * ph1_morning,
            "ph2 morning {ph2_morning} vs ph1 morning {ph1_morning}"
        );
        assert!(
            ph2_morning > 2.5 * ph2_evening,
            "ph2 morning {ph2_morning} vs ph2 evening {ph2_evening}"
        );
    }

    #[test]
    fn hardware_version_tracks_phone_model() {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 1_000,
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let phone = ds
            .column(s.attr_index("PhoneModel").unwrap())
            .as_categorical()
            .unwrap();
        let hw = ds
            .column(s.attr_index("PhoneHardwareVersion").unwrap())
            .as_categorical()
            .unwrap();
        for (p, h) in phone.iter().zip(hw) {
            assert_eq!(p % 2, *h);
        }
    }

    #[test]
    fn hardware_version_optional() {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 100,
            include_hardware_version: false,
            ..CallLogConfig::default()
        });
        assert!(ds.schema().attr_index("PhoneHardwareVersion").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_effect_attribute_panics() {
        let config = CallLogConfig {
            n_records: 10,
            effects: vec![Effect::value("Bogus", "x", "dropped", 1.0)],
            ..CallLogConfig::default()
        };
        generate_call_log(&config);
    }

    #[test]
    #[should_panic(expected = "unknown class")]
    fn unknown_effect_class_panics() {
        let config = CallLogConfig {
            n_records: 10,
            effects: vec![Effect::value("PhoneModel", "ph1", "exploded", 1.0)],
            ..CallLogConfig::default()
        };
        generate_call_log(&config);
    }
}
