//! Machine-checkable descriptions of planted structure.

/// What a correct Opportunity Map analysis of a planted dataset should
/// discover. Used by integration tests and the recovery experiment to turn
/// the paper's qualitative case study (Section V-B) into a quantitative
/// check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Attribute whose two values define the compared sub-populations
    /// (the paper's `PhoneModel`).
    pub compare_attr: String,
    /// The "good" value (lower confidence on the target class; `ph1`).
    pub baseline_value: String,
    /// The "bad" value (higher confidence; `ph2`).
    pub target_value: String,
    /// The class of interest (`dropped`).
    pub target_class: String,
    /// The attribute the comparator must rank first (`TimeOfCall`).
    pub expected_top_attr: String,
    /// The value of that attribute carrying the planted excess (`morning`).
    pub expected_top_value: String,
    /// Attributes that shift *both* sub-populations equally (the Fig. 2(A)
    /// situation) and therefore must NOT rank above the planted attribute.
    pub uninformative_attrs: Vec<String>,
    /// Attributes expected to be flagged as property attributes
    /// (Section IV-C) rather than ranked.
    pub property_attrs: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_compare() {
        let t = GroundTruth {
            compare_attr: "PhoneModel".into(),
            baseline_value: "ph1".into(),
            target_value: "ph2".into(),
            target_class: "dropped".into(),
            expected_top_attr: "TimeOfCall".into(),
            expected_top_value: "morning".into(),
            uninformative_attrs: vec!["NetworkLoad".into()],
            property_attrs: vec!["PhoneHardwareVersion".into()],
        };
        assert_eq!(t.clone(), t);
        assert!(t.uninformative_attrs.contains(&"NetworkLoad".to_string()));
    }
}
