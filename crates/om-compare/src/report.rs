//! Plain-text rendering of comparison results.

use std::fmt::Write as _;

use crate::rank::ComparisonResult;

/// Render a comparison result as a human-readable report: the two input
/// rules, the attribute ranking with top contributing values, and the
/// property-attribute list.
pub fn render(result: &ComparisonResult, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Comparison on {}:", result.attr_name);
    let _ = writeln!(
        out,
        "  Rule 1: {}={} -> {}   cf1 = {:.3}%  (n = {})",
        result.attr_name,
        result.value_1_label,
        result.class_label,
        result.cf1 * 100.0,
        result.n1
    );
    let _ = writeln!(
        out,
        "  Rule 2: {}={} -> {}   cf2 = {:.3}%  (n = {})",
        result.attr_name,
        result.value_2_label,
        result.class_label,
        result.cf2 * 100.0,
        result.n2
    );
    if result.swapped {
        let _ = writeln!(out, "  (values swapped so that cf1 <= cf2)");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<4} {:<24} {:>12} {:>8}  top contributing values",
        "rank", "attribute", "M", "M/max"
    );
    for (i, s) in result.ranked.iter().take(top_n).enumerate() {
        let tops: Vec<String> = s
            .top_values()
            .into_iter()
            .filter(|c| c.w > 0.0)
            .take(3)
            .map(|c| format!("{} (W={:.1})", c.label, c.w))
            .collect();
        let _ = writeln!(
            out,
            "  {:<4} {:<24} {:>12.2} {:>7.1}%  {}",
            i + 1,
            s.attr_name,
            s.score,
            s.normalized * 100.0,
            if tops.is_empty() {
                "-".to_owned()
            } else {
                tops.join(", ")
            }
        );
    }
    if result.ranked.len() > top_n {
        let _ = writeln!(out, "  ... {} more attributes", result.ranked.len() - top_n);
    }
    if !result.property_attrs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  Property attributes (separate list, Section IV-C):");
        for s in &result.property_attrs {
            let _ = writeln!(
                out,
                "    {:<24} P = {:>3}, T = {:>3}, P/(P+T) = {:.2}",
                s.attr_name,
                s.property.p,
                s.property.t,
                s.property.ratio()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{Comparator, ComparisonSpec};
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_synth::paper_scenario;

    #[test]
    fn report_contains_key_sections() {
        let (ds, truth) = paper_scenario(40_000, 5);
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let result = Comparator::new(&store).compare(&spec).unwrap();
        let text = render(&result, 5);
        assert!(text.contains("Rule 1: PhoneModel=ph1"), "{text}");
        assert!(text.contains("Rule 2: PhoneModel=ph2"), "{text}");
        assert!(text.contains("TimeOfCall"), "{text}");
        assert!(text.contains("Property attributes"), "{text}");
        assert!(text.contains("PhoneHardwareVersion"), "{text}");
    }

    #[test]
    fn truncation_note_when_many_attrs() {
        let (ds, truth) = paper_scenario(40_000, 5);
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: 0,
            value_2: 1,
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let result = Comparator::new(&store).compare(&spec).unwrap();
        let text = render(&result, 1);
        assert!(text.contains("more attributes"), "{text}");
    }
}
