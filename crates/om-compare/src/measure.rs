//! The interestingness measure of Section IV-A.
//!
//! For a candidate attribute `A_i` with values `v_1 … v_m`, each value `k`
//! contributes
//!
//! ```text
//! F_k = rcf_2k − rcf_1k · (cf_2 / cf_1)        (Eq. 1 + Section IV-B)
//! W_k = F_k · N_2k   if F_k > 0, else 0        (Eq. 2)
//! M_i = Σ_k W_k                                 (Eq. 3)
//! ```
//!
//! `cf_1k (cf_2/cf_1)` is the *expected* confidence of `v_k` in the bad
//! sub-population if it were merely proportionally worse (the situation of
//! Fig. 2(A)/Fig. 4(A), which must score zero); `F_k` is the confidence
//! beyond that expectation, and `F_k · N_2k` converts it to an actual
//! record count. Empty baseline cells take `cf_1k = 0` (the paper:
//! "in such a case the attribute can be ranked very high because
//! cf_1k = 0" — which is why property detection exists, in
//! [`crate::property`]).

use crate::interval::IntervalMethod;
use crate::property::PropertyInfo;

/// Per-value class counts of one sub-population for one attribute:
/// `n[k] = N_jk` (records with value `k`), `x[k]` (those of class `c_a`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPopCounts {
    pub n: Vec<u64>,
    pub x: Vec<u64>,
}

impl SubPopCounts {
    /// Validate internal consistency.
    ///
    /// # Panics
    /// Panics if lengths differ or any `x[k] > n[k]`.
    pub fn new(n: Vec<u64>, x: Vec<u64>) -> Self {
        assert_eq!(n.len(), x.len(), "n and x must have equal length");
        assert!(
            n.iter().zip(&x).all(|(&n, &x)| x <= n),
            "class counts cannot exceed totals"
        );
        Self { n, x }
    }

    /// Number of attribute values covered.
    pub fn n_values(&self) -> usize {
        self.n.len()
    }
}

/// The audit trail for one attribute value `v_k`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueContribution {
    /// Value id within the attribute.
    pub value: u32,
    /// Value label.
    pub label: String,
    /// `N_1k`, `N_2k`: records with this value in each sub-population.
    pub n1: u64,
    pub n2: u64,
    /// Class-`c_a` counts.
    pub x1: u64,
    pub x2: u64,
    /// Raw confidences (`None` when the cell is empty).
    pub cf1: Option<f64>,
    pub cf2: Option<f64>,
    /// Revised confidences after the interval adjustment.
    pub rcf1: f64,
    pub rcf2: f64,
    /// `F_k` (may be negative; clamped only inside `W_k`).
    pub f: f64,
    /// `W_k = max(F_k, 0) · N_2k`.
    pub w: f64,
}

impl ValueContribution {
    /// Two-proportion z-test of this value's raw confidences between the
    /// two sub-populations — a plain "are these two bars different?"
    /// check, reported alongside the measure in the views. Returns the
    /// two-sided p-value (1.0 when either side is empty).
    pub fn excess_p_value(&self) -> f64 {
        om_stats::two_proportion_z(self.x2, self.n2, self.x1, self.n1).p_value
    }
}

/// The score of one candidate attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrScore {
    /// Schema index of the attribute.
    pub attr: usize,
    pub attr_name: String,
    /// `M_i` (Eq. 3). Always `>= 0`.
    pub score: f64,
    /// `M_i / (cf_2 · |D_2|)`: the score divided by its theoretical
    /// maximum (Section IV-A's boundary case), in `[0, 1]`.
    pub normalized: f64,
    /// Per-value breakdown, in value order.
    pub contributions: Vec<ValueContribution>,
    /// Property-attribute statistics (Section IV-C).
    pub property: PropertyInfo,
}

impl AttrScore {
    /// Values sorted by contribution `W_k`, descending — "where the user
    /// should focus his/her attention".
    pub fn top_values(&self) -> Vec<&ValueContribution> {
        let mut v: Vec<&ValueContribution> = self.contributions.iter().collect();
        v.sort_by(|a, b| b.w.partial_cmp(&a.w).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// Compute the measure for one attribute from the two sub-populations'
/// per-value counts.
///
/// `cf1`, `cf2` are the overall confidences of the two input rules
/// (`cf1 <= cf2` after the caller's normalization, `cf1 > 0`);
/// `class_total_2` is `cf_2 · |D_2|` — the number of class-`c_a` records
/// in the bad sub-population, used for normalization.
///
/// # Panics
/// Panics if the two sub-populations cover different value counts,
/// `labels` mismatches, or `cf1 <= 0`.
#[allow(clippy::too_many_arguments)] // the arguments mirror the formula's inputs
pub fn score_attribute(
    attr: usize,
    attr_name: &str,
    labels: &[String],
    d1: &SubPopCounts,
    d2: &SubPopCounts,
    cf1: f64,
    cf2: f64,
    method: IntervalMethod,
) -> AttrScore {
    assert_eq!(
        d1.n_values(),
        d2.n_values(),
        "sub-populations must cover the same value set"
    );
    assert_eq!(labels.len(), d1.n_values(), "labels must match values");
    assert!(cf1 > 0.0, "baseline confidence cf1 must be positive");

    let ratio = cf2 / cf1;
    let mut contributions = Vec::with_capacity(labels.len());
    let mut score = 0.0;
    for (k, label) in labels.iter().enumerate() {
        let (n1, x1) = (d1.n[k], d1.x[k]);
        let (n2, x2) = (d2.n[k], d2.x[k]);
        let cf1k = (n1 > 0).then(|| x1 as f64 / n1 as f64);
        let cf2k = (n2 > 0).then(|| x2 as f64 / n2 as f64);
        // Empty cells enter the formula as confidence 0 (paper, Sec. IV-C).
        let rcf1 = method.revise_up(x1, n1, cf1k.unwrap_or(0.0));
        let rcf2 = method.revise_down(x2, n2, cf2k.unwrap_or(0.0));
        let f = rcf2 - rcf1 * ratio;
        let w = if f > 0.0 { f * n2 as f64 } else { 0.0 };
        score += w;
        contributions.push(ValueContribution {
            value: k as u32,
            label: label.clone(),
            n1,
            n2,
            x1,
            x2,
            cf1: cf1k,
            cf2: cf2k,
            rcf1,
            rcf2,
            f,
            w,
        });
    }

    let class_total_2: u64 = d2.x.iter().sum();
    let normalized = if class_total_2 > 0 {
        (score / class_total_2 as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };

    AttrScore {
        attr,
        attr_name: attr_name.to_owned(),
        score,
        normalized,
        property: PropertyInfo::from_counts(&d1.n, &d2.n),
        contributions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    /// Fig. 4(A): ph1 drops at 2% and ph2 at 4% *for every value* —
    /// completely expected, M must be exactly 0 (without CI adjustment).
    #[test]
    fn boundary_minimum_proportional_situation() {
        // Three time-of-day values, 10_000 records each per phone.
        let d1 = SubPopCounts::new(vec![10_000; 3], vec![200; 3]); // 2% each
        let d2 = SubPopCounts::new(vec![10_000; 3], vec![400; 3]); // 4% each
        let s = score_attribute(
            1,
            "TimeOfCall",
            &labels(3),
            &d1,
            &d2,
            0.02,
            0.04,
            IntervalMethod::None,
        );
        assert_eq!(s.score, 0.0, "proportional situation must score 0");
        assert_eq!(s.normalized, 0.0);
        for c in &s.contributions {
            assert!(c.f.abs() < 1e-12);
            assert_eq!(c.w, 0.0);
        }
    }

    /// Fig. 4(B): all of ph2's drops concentrate on one value at 100%
    /// confidence, where ph1 is at its lowest — the maximum situation.
    /// M must equal cf_2 · |D_2| = the number of dropped ph2 records,
    /// so the normalized score is 1.
    #[test]
    fn boundary_maximum_concentrated_situation() {
        // D2: 30_000 records, 1_200 drops (cf2 = 4%), all drops in the
        // evening where every call drops (N2_evening = 1_200, 100%).
        let d2 = SubPopCounts::new(vec![14_400, 14_400, 1_200], vec![0, 0, 1_200]);
        // D1: cf1 = 2% overall; evening is its *lowest* drop-rate value
        // (paper: "this attribute value also has the lowest confidence for
        // class c_a in D_1") — make it 0 for the exact extreme.
        let d1 = SubPopCounts::new(vec![10_000, 10_000, 10_000], vec![350, 250, 0]);
        let cf1 = 600.0 / 30_000.0;
        let cf2 = 1_200.0 / 30_000.0;
        let s = score_attribute(
            1,
            "TimeOfCall",
            &labels(3),
            &d1,
            &d2,
            cf1,
            cf2,
            IntervalMethod::None,
        );
        // The evening cell contributes (1.0 − 0·ratio) · 1_200 = 1_200 and
        // nothing else can contribute (other cells have cf2k = 0).
        assert!((s.score - 1_200.0).abs() < 1e-9, "score {}", s.score);
        assert!((s.normalized - 1.0).abs() < 1e-12);
    }

    /// The interesting situation of Fig. 2(B): same evening rates, morning
    /// much worse for ph2 — must score strictly above the proportional
    /// situation and isolate the morning value.
    #[test]
    fn interesting_situation_isolates_the_morning() {
        let d1 = SubPopCounts::new(vec![10_000; 3], vec![200, 200, 200]);
        // ph2: morning terrible (10%), afternoon/evening same as ph1 (2%).
        let d2 = SubPopCounts::new(vec![10_000; 3], vec![1_000, 200, 200]);
        let cf1 = 0.02;
        let cf2 = 1_400.0 / 30_000.0;
        let s = score_attribute(
            1,
            "TimeOfCall",
            &labels(3),
            &d1,
            &d2,
            cf1,
            cf2,
            IntervalMethod::None,
        );
        assert!(s.score > 0.0);
        let top = s.top_values();
        assert_eq!(top[0].label, "v0", "morning must dominate");
        assert!(top[0].w > 0.9 * s.score);
    }

    #[test]
    fn score_is_never_negative() {
        // Reversed situation: ph2 better everywhere than expected.
        let d1 = SubPopCounts::new(vec![1_000; 2], vec![100, 100]);
        let d2 = SubPopCounts::new(vec![1_000; 2], vec![110, 110]);
        // cf2/cf1 = 2 expected, but actual cf2k/cf1k ≈ 1.1 ⇒ all F_k < 0.
        let s = score_attribute(
            0,
            "A",
            &labels(2),
            &d1,
            &d2,
            0.10,
            0.20,
            IntervalMethod::None,
        );
        assert_eq!(s.score, 0.0);
        assert!(s.contributions.iter().all(|c| c.f < 0.0));
    }

    #[test]
    fn ci_adjustment_shrinks_scores() {
        let d1 = SubPopCounts::new(vec![500; 3], vec![10, 10, 10]);
        let d2 = SubPopCounts::new(vec![500; 3], vec![100, 10, 10]);
        let cf1 = 30.0 / 1_500.0;
        let cf2 = 120.0 / 1_500.0;
        let raw = score_attribute(0, "A", &labels(3), &d1, &d2, cf1, cf2, IntervalMethod::None);
        let adj = score_attribute(
            0,
            "A",
            &labels(3),
            &d1,
            &d2,
            cf1,
            cf2,
            IntervalMethod::paper_default(),
        );
        assert!(adj.score < raw.score, "CI adjustment must be pessimistic");
        assert!(adj.score > 0.0, "strong signal survives the adjustment");
    }

    #[test]
    fn empty_baseline_cell_ranks_high_pre_property_filter() {
        // v1 never occurs in D1 but carries D2's drops: paper notes these
        // rank very high (then get diverted by property detection).
        let d1 = SubPopCounts::new(vec![1_000, 0], vec![20, 0]);
        let d2 = SubPopCounts::new(vec![0, 1_000], vec![0, 40]);
        let s = score_attribute(
            0,
            "HwVersion",
            &labels(2),
            &d1,
            &d2,
            0.02,
            0.04,
            IntervalMethod::None,
        );
        assert!(s.score > 0.0);
        assert!(s.property.is_property(0.9), "fully disjoint usage");
    }

    #[test]
    fn zero_class_in_d2_scores_zero() {
        let d1 = SubPopCounts::new(vec![100; 2], vec![5, 5]);
        let d2 = SubPopCounts::new(vec![100; 2], vec![0, 0]);
        let s = score_attribute(
            0,
            "A",
            &labels(2),
            &d1,
            &d2,
            0.05,
            0.10,
            IntervalMethod::None,
        );
        assert_eq!(s.score, 0.0);
        assert_eq!(s.normalized, 0.0);
    }

    #[test]
    fn normalized_bounded_by_one() {
        // Even pathological inputs can't exceed the theoretical max.
        let d1 = SubPopCounts::new(vec![10, 10], vec![1, 0]);
        let d2 = SubPopCounts::new(vec![5, 5], vec![5, 5]);
        let s = score_attribute(
            0,
            "A",
            &labels(2),
            &d1,
            &d2,
            0.05,
            1.0,
            IntervalMethod::None,
        );
        assert!(s.normalized <= 1.0);
        assert!(s.score >= 0.0);
    }

    #[test]
    #[should_panic(expected = "cf1 must be positive")]
    fn rejects_zero_baseline_confidence() {
        let d = SubPopCounts::new(vec![10], vec![0]);
        score_attribute(0, "A", &labels(1), &d, &d, 0.0, 0.1, IntervalMethod::None);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn subpop_counts_validated() {
        SubPopCounts::new(vec![1, 2], vec![1]);
    }

    #[test]
    #[should_panic(expected = "cannot exceed totals")]
    fn subpop_counts_class_bounded() {
        SubPopCounts::new(vec![1], vec![2]);
    }
}

#[cfg(test)]
mod significance_tests {
    use super::*;

    #[test]
    fn excess_p_value_tracks_the_gap() {
        let d1 = SubPopCounts::new(vec![5_000; 2], vec![100, 100]); // 2%
        let d2 = SubPopCounts::new(vec![5_000; 2], vec![500, 105]); // 10% / 2.1%
        let s = score_attribute(
            0,
            "A",
            &["hot".into(), "cold".into()],
            &d1,
            &d2,
            0.02,
            0.0605,
            IntervalMethod::None,
        );
        let hot = &s.contributions[0];
        let cold = &s.contributions[1];
        assert!(hot.excess_p_value() < 1e-6, "p = {}", hot.excess_p_value());
        assert!(cold.excess_p_value() > 0.1, "p = {}", cold.excess_p_value());
    }

    #[test]
    fn empty_sides_are_vacuous() {
        let c = ValueContribution {
            value: 0,
            label: "x".into(),
            n1: 0,
            n2: 0,
            x1: 0,
            x2: 0,
            cf1: None,
            cf2: None,
            rcf1: 0.0,
            rcf2: 0.0,
            f: 0.0,
            w: 0.0,
        };
        assert_eq!(c.excess_p_value(), 1.0);
    }
}
