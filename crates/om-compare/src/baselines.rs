//! Baseline attribute rankers for the recovery experiment.
//!
//! The paper's related work argues that ranking *rules* by generic
//! interestingness measures "represent\[s\] some artifacts of the data
//! rather than any useful patterns" and that the comparison problem is
//! different from plain attribute/class association. These baselines make
//! that argument testable: each ranks the same candidate attributes for
//! the same comparison spec, and `exp_recovery` measures how often each
//! puts the planted cause first.

use om_cube::CubeStore;
use om_stats::{chi2_independence, info_gain};

use crate::measure::SubPopCounts;
use crate::rank::{attr_name, subpop_counts, CompareConfig, CompareError, Comparator, ComparisonSpec};

/// A ranked attribute: schema index, display name, score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAttr {
    pub attr: usize,
    pub attr_name: String,
    pub score: f64,
}

/// An attribute ranker: given a comparison spec, order the candidate
/// attributes by how well they explain the difference.
pub trait AttributeRanker {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Rank all non-selected attributes, best first.
    ///
    /// # Errors
    /// Propagates spec/cube failures.
    fn rank(
        &self,
        store: &CubeStore,
        spec: &ComparisonSpec,
    ) -> Result<Vec<RankedAttr>, CompareError>;
}

/// The paper's measure (Section IV), via the full [`Comparator`]. Property
/// attributes are excluded (they live in the separate list).
pub struct OmRanker(pub CompareConfig);

impl AttributeRanker for OmRanker {
    fn name(&self) -> &'static str {
        "om-measure"
    }

    fn rank(
        &self,
        store: &CubeStore,
        spec: &ComparisonSpec,
    ) -> Result<Vec<RankedAttr>, CompareError> {
        let result = Comparator::with_config(store, self.0.clone()).compare(spec)?;
        Ok(result
            .ranked
            .into_iter()
            .map(|s| RankedAttr {
                attr: s.attr,
                attr_name: s.attr_name,
                score: s.score,
            })
            .collect())
    }
}

/// Shared plumbing: iterate candidate attributes with their sub-population
/// counts, apply `score`, sort descending.
fn rank_by<F>(
    store: &CubeStore,
    spec: &ComparisonSpec,
    score: F,
) -> Result<Vec<RankedAttr>, CompareError>
where
    F: Fn(&SubPopCounts, &SubPopCounts) -> f64,
{
    let mut out = Vec::new();
    for &other in store.attrs() {
        if other == spec.attr {
            continue;
        }
        let (_, d1, d2) = subpop_counts(
            store,
            spec.attr,
            other,
            spec.value_1,
            spec.value_2,
            spec.class,
        )?;
        out.push(RankedAttr {
            attr: other,
            attr_name: attr_name(store, other)?,
            score: score(&d1, &d2),
        });
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(out)
}

/// Chi-square of (sub-population × attribute value) among the records of
/// the class of interest: "are the failures distributed differently?".
pub struct ChiSquareRanker;

impl AttributeRanker for ChiSquareRanker {
    fn name(&self) -> &'static str {
        "chi-square"
    }

    fn rank(
        &self,
        store: &CubeStore,
        spec: &ComparisonSpec,
    ) -> Result<Vec<RankedAttr>, CompareError> {
        rank_by(store, spec, |d1, d2| {
            let table = vec![d1.x.clone(), d2.x.clone()];
            chi2_independence(&table).statistic
        })
    }
}

/// Information gain of the attribute for predicting the class *within the
/// bad sub-population only* — a classifier's view, blind to the baseline,
/// so common causes (the Fig. 2(A) situation) fool it.
pub struct InfoGainRanker;

impl AttributeRanker for InfoGainRanker {
    fn name(&self) -> &'static str {
        "info-gain-d2"
    }

    fn rank(
        &self,
        store: &CubeStore,
        spec: &ComparisonSpec,
    ) -> Result<Vec<RankedAttr>, CompareError> {
        rank_by(store, spec, |_d1, d2| {
            let parts: Vec<Vec<u64>> = d2
                .n
                .iter()
                .zip(&d2.x)
                .map(|(&n, &x)| vec![x, n - x])
                .collect();
            info_gain(&parts)
        })
    }
}

/// Sum of absolute confidence differences weighted by the bad
/// sub-population size: `Σ_k |cf_2k − cf_1k| · N_2k` — no expected-ratio
/// correction, so the proportional situation scores high too.
pub struct AbsConfDiffRanker;

impl AttributeRanker for AbsConfDiffRanker {
    fn name(&self) -> &'static str {
        "abs-conf-diff"
    }

    fn rank(
        &self,
        store: &CubeStore,
        spec: &ComparisonSpec,
    ) -> Result<Vec<RankedAttr>, CompareError> {
        rank_by(store, spec, |d1, d2| {
            let mut s = 0.0;
            for k in 0..d1.n_values() {
                let cf1 = if d1.n[k] > 0 {
                    d1.x[k] as f64 / d1.n[k] as f64
                } else {
                    0.0
                };
                let cf2 = if d2.n[k] > 0 {
                    d2.x[k] as f64 / d2.n[k] as f64
                } else {
                    0.0
                };
                s += (cf2 - cf1).abs() * d2.n[k] as f64;
            }
            s
        })
    }
}

/// All rankers, the paper's measure first.
pub fn all_rankers() -> Vec<Box<dyn AttributeRanker>> {
    vec![
        Box::new(OmRanker(CompareConfig::default())),
        Box::new(ChiSquareRanker),
        Box::new(InfoGainRanker),
        Box::new(AbsConfDiffRanker),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::StoreBuildOptions;
    use om_synth::paper_scenario;

    fn setup() -> (CubeStore, ComparisonSpec) {
        let (ds, truth) = paper_scenario(60_000, 11);
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        (store, spec)
    }

    #[test]
    fn all_rankers_produce_full_orderings() {
        let (store, spec) = setup();
        let n_candidates = store.attrs().len() - 1;
        for ranker in all_rankers() {
            let ranking = ranker.rank(&store, &spec).unwrap();
            assert!(
                ranking.len() <= n_candidates,
                "{} returned too many attributes",
                ranker.name()
            );
            assert!(!ranking.is_empty(), "{} returned nothing", ranker.name());
            for w in ranking.windows(2) {
                assert!(
                    w[0].score >= w[1].score,
                    "{} not sorted descending",
                    ranker.name()
                );
            }
        }
    }

    #[test]
    fn om_ranker_puts_planted_cause_first() {
        let (store, spec) = setup();
        let ranking = OmRanker(CompareConfig::default())
            .rank(&store, &spec)
            .unwrap();
        assert_eq!(ranking[0].attr_name, "TimeOfCall", "{ranking:?}");
    }

    #[test]
    fn info_gain_misses_the_context() {
        // InfoGain-within-D2 ranks NetworkLoad (a common cause) at least as
        // high as the comparator would — demonstrating why the measure
        // needs the baseline sub-population. We only assert that the two
        // rankers disagree on something, keeping the strong claim for the
        // statistical recovery experiment.
        let (store, spec) = setup();
        let om = OmRanker(CompareConfig::default())
            .rank(&store, &spec)
            .unwrap();
        let ig = InfoGainRanker.rank(&store, &spec).unwrap();
        let om_names: Vec<_> = om.iter().map(|r| &r.attr_name).collect();
        let ig_names: Vec<_> = ig.iter().map(|r| &r.attr_name).collect();
        assert_ne!(om_names, ig_names, "rankers should disagree somewhere");
    }
}
