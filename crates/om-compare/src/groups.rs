//! Group comparison: two *sets* of values instead of two single values.
//!
//! Section III-C notes that "in the application, many pairs of phones need
//! to be compared"; practitioners also asked to compare families of
//! products (e.g. all phones of one generation vs the next). A group
//! comparison merges the sub-populations `D_1 = ∪_v {A = v, v ∈ G_1}` and
//! `D_2` likewise, then applies the identical Section IV measure — counts
//! add, so everything downstream is unchanged.

use om_cube::olap::slice;
use om_cube::CubeStore;
use om_data::ValueId;

use crate::measure::{score_attribute, AttrScore, SubPopCounts};
use crate::rank::{attr_name, CompareConfig, CompareError, ComparisonResult};

/// A comparison between two disjoint groups of values of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Schema index of the attribute.
    pub attr: usize,
    /// First value group.
    pub group_1: Vec<ValueId>,
    /// Second value group.
    pub group_2: Vec<ValueId>,
    /// The class of interest.
    pub class: ValueId,
}

impl GroupSpec {
    /// Validate shape: both groups non-empty and disjoint, no duplicates.
    ///
    /// # Errors
    /// Returns an [`CompareError::InvalidSpec`] describing the violation.
    pub fn validate(&self) -> Result<(), CompareError> {
        if self.group_1.is_empty() || self.group_2.is_empty() {
            return Err(CompareError::InvalidSpec(
                "both value groups must be non-empty".into(),
            ));
        }
        let mut all: Vec<ValueId> = self
            .group_1
            .iter()
            .chain(&self.group_2)
            .copied()
            .collect();
        all.sort_unstable();
        if all.windows(2).any(|w| w[0] == w[1]) {
            return Err(CompareError::InvalidSpec(
                "value groups must be disjoint and free of duplicates".into(),
            ));
        }
        Ok(())
    }
}

/// Per-value counts of a merged sub-population for `other`, from the pair
/// cube.
fn group_counts(
    store: &CubeStore,
    sel: usize,
    other: usize,
    group: &[ValueId],
    class: ValueId,
) -> Result<(Vec<String>, SubPopCounts), CompareError> {
    let pair = store.pair(sel, other)?;
    let sel_dim = pair
        .dims()
        .iter()
        .position(|d| d.attr_index == sel)
        .expect("pair cube contains the selected attribute");
    let labels = pair.dims()[1 - sel_dim].labels.clone();
    let card = labels.len();
    let mut n = vec![0u64; card];
    let mut x = vec![0u64; card];
    for &v in group {
        let sliced = slice(&pair, sel_dim, v)?;
        for k in 0..card as ValueId {
            n[k as usize] += sliced.cell_total(&[k])?;
            x[k as usize] += sliced.count(&[k], class)?;
        }
    }
    Ok((labels, SubPopCounts::new(n, x)))
}

/// Run a group comparison. Returns the same [`ComparisonResult`] shape as
/// the single-value comparator; the `value_*_label` fields hold rendered
/// group labels like `{ph1, ph3}`.
///
/// # Errors
/// See [`CompareError`].
pub fn compare_groups(
    store: &CubeStore,
    spec: &GroupSpec,
    config: &CompareConfig,
) -> Result<ComparisonResult, CompareError> {
    spec.validate()?;
    let one = store.one_dim(spec.attr)?;
    let dim = &one.dims()[0];
    let card = dim.cardinality() as ValueId;
    for &v in spec.group_1.iter().chain(&spec.group_2) {
        if v >= card {
            return Err(CompareError::InvalidSpec(format!(
                "value id {v} out of range for attribute {:?}",
                dim.name
            )));
        }
    }
    if spec.class as usize >= one.n_classes() {
        return Err(CompareError::InvalidSpec(format!(
            "class id {} out of range",
            spec.class
        )));
    }

    // Merged base statistics.
    let sum = |group: &[ValueId]| -> Result<(u64, u64), CompareError> {
        let mut n = 0;
        let mut x = 0;
        for &v in group {
            n += one.cell_total(&[v])?;
            x += one.count(&[v], spec.class)?;
        }
        Ok((n, x))
    };
    let (mut n1, mut x1) = sum(&spec.group_1)?;
    let (mut n2, mut x2) = sum(&spec.group_2)?;
    let conf = |x: u64, n: u64| if n == 0 { 0.0 } else { x as f64 / n as f64 };
    let (mut g1, mut g2) = (spec.group_1.clone(), spec.group_2.clone());
    let mut swapped = false;
    if conf(x1, n1) > conf(x2, n2) {
        std::mem::swap(&mut n1, &mut n2);
        std::mem::swap(&mut x1, &mut x2);
        std::mem::swap(&mut g1, &mut g2);
        swapped = true;
    }
    for (n, which) in [(n1, &g1), (n2, &g2)] {
        if n < config.min_sub_population {
            return Err(CompareError::InsufficientSupport {
                value_label: group_label(dim, which),
                count: n,
                required: config.min_sub_population,
            });
        }
    }
    let cf1 = conf(x1, n1);
    let cf2 = conf(x2, n2);
    if cf1 <= 0.0 {
        return Err(CompareError::ZeroBaselineConfidence);
    }

    let mut ranked: Vec<AttrScore> = Vec::new();
    let mut property_attrs: Vec<AttrScore> = Vec::new();
    for &other in store.attrs() {
        if other == spec.attr {
            continue;
        }
        let (labels, d1) = group_counts(store, spec.attr, other, &g1, spec.class)?;
        let (_, d2) = group_counts(store, spec.attr, other, &g2, spec.class)?;
        let name = attr_name(store, other)?;
        let score =
            score_attribute(other, &name, &labels, &d1, &d2, cf1, cf2, config.interval);
        if score.property.is_property(config.property_tau) {
            property_attrs.push(score);
        } else {
            ranked.push(score);
        }
    }
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    property_attrs.sort_by(|a, b| {
        b.property
            .ratio()
            .partial_cmp(&a.property.ratio())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    Ok(ComparisonResult {
        attr: spec.attr,
        attr_name: dim.name.clone(),
        value_1: g1[0],
        value_1_label: group_label(dim, &g1),
        value_2: g2[0],
        value_2_label: group_label(dim, &g2),
        swapped,
        class: spec.class,
        class_label: one.class_labels()[spec.class as usize].clone(),
        cf1,
        cf2,
        n1,
        n2,
        ranked,
        property_attrs,
    })
}

fn group_label(dim: &om_cube::CubeDim, group: &[ValueId]) -> String {
    let names: Vec<&str> = group
        .iter()
        .map(|&v| dim.labels[v as usize].as_str())
        .collect();
    format!("{{{}}}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{Comparator, ComparisonSpec};
    use om_cube::StoreBuildOptions;
    use om_synth::{generate_call_log, CallLogConfig, Effect};

    /// Call logs where phones {2, 4} share a planted morning problem.
    fn group_scenario() -> (om_data::Dataset, GroupSpec) {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 80_000,
            seed: 31,
            effects: vec![
                Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 2.0),
                Effect::interaction("PhoneModel", "ph4", "TimeOfCall", "morning", "dropped", 2.0),
            ],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let get = |l: &str| s.attribute(attr).domain().get(l).unwrap();
        let spec = GroupSpec {
            attr,
            group_1: vec![get("ph1"), get("ph3")],
            group_2: vec![get("ph2"), get("ph4")],
            class: s.class().domain().get("dropped").unwrap(),
        };
        (ds, spec)
    }

    #[test]
    fn group_comparison_recovers_shared_cause() {
        let (ds, spec) = group_scenario();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let result = compare_groups(&store, &spec, &CompareConfig::default()).unwrap();
        assert_eq!(result.top().unwrap().attr_name, "TimeOfCall");
        assert_eq!(result.top().unwrap().top_values()[0].label, "morning");
        assert!(result.value_2_label.contains("ph2"));
        assert!(result.value_2_label.contains("ph4"));
    }

    #[test]
    fn singleton_groups_match_single_value_comparator() {
        let (ds, spec) = group_scenario();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let single = Comparator::new(&store)
            .compare(&ComparisonSpec {
                attr: spec.attr,
                value_1: spec.group_1[0],
                value_2: spec.group_2[0],
                class: spec.class,
            })
            .unwrap();
        let grouped = compare_groups(
            &store,
            &GroupSpec {
                group_1: vec![spec.group_1[0]],
                group_2: vec![spec.group_2[0]],
                ..spec.clone()
            },
            &CompareConfig::default(),
        )
        .unwrap();
        assert_eq!(single.cf1, grouped.cf1);
        assert_eq!(single.cf2, grouped.cf2);
        assert_eq!(
            single.ranked.iter().map(|s| (s.attr, s.score)).collect::<Vec<_>>(),
            grouped.ranked.iter().map(|s| (s.attr, s.score)).collect::<Vec<_>>(),
            "singleton group comparison must equal the single-value comparator"
        );
    }

    #[test]
    fn validation_rejects_bad_groups() {
        let (ds, spec) = group_scenario();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let cfg = CompareConfig::default();
        // Empty group.
        let r = compare_groups(
            &store,
            &GroupSpec { group_1: vec![], ..spec.clone() },
            &cfg,
        );
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
        // Overlapping groups.
        let r = compare_groups(
            &store,
            &GroupSpec {
                group_1: vec![spec.group_1[0], spec.group_2[0]],
                ..spec.clone()
            },
            &cfg,
        );
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
        // Out-of-range id.
        let r = compare_groups(
            &store,
            &GroupSpec { group_2: vec![99], ..spec },
            &cfg,
        );
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
    }

    #[test]
    fn group_swap_orients_by_merged_confidence() {
        let (ds, spec) = group_scenario();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let reversed = GroupSpec {
            group_1: spec.group_2.clone(),
            group_2: spec.group_1.clone(),
            ..spec.clone()
        };
        let a = compare_groups(&store, &spec, &CompareConfig::default()).unwrap();
        let b = compare_groups(&store, &reversed, &CompareConfig::default()).unwrap();
        assert!(!a.swapped);
        assert!(b.swapped);
        assert_eq!(a.cf2, b.cf2);
        assert_eq!(a.value_2_label, b.value_2_label);
    }
}
