//! Property-attribute detection (Section IV-C).
//!
//! An attribute is a *property attribute* when its values are (almost)
//! disjointly used by the two sub-populations — e.g. the paper's
//! `Phone-Hardware-Version`, where ph1 only ever uses version 1 and ph2
//! version 2. Such attributes score very high under the measure (the
//! baseline confidence is 0) yet are "artefacts of the data, rather than
//! true patterns". With
//!
//! * `P` = number of values used by exactly one sub-population, and
//! * `T` = number of values used by both,
//!
//! the attribute is a property attribute when `P / (P + T) ≥ τ`
//! (τ = 0.9 in the deployed system; "this parameter is not crucial as
//! property attributes are not physically removed … simply stored in
//! another list").

/// Disjoint-usage statistics of one attribute for a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyInfo {
    /// Values with `(p_1k = 0 ∧ p_2k > 0) ∨ (p_1k > 0 ∧ p_2k = 0)`.
    pub p: usize,
    /// Values with `p_1k > 0 ∧ p_2k > 0`.
    pub t: usize,
}

impl PropertyInfo {
    /// Tally `P` and `T` from the two sub-populations' per-value totals.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_counts(n1: &[u64], n2: &[u64]) -> Self {
        assert_eq!(n1.len(), n2.len(), "value counts must align");
        let mut p = 0;
        let mut t = 0;
        for (&a, &b) in n1.iter().zip(n2) {
            match (a > 0, b > 0) {
                (true, true) => t += 1,
                (true, false) | (false, true) => p += 1,
                (false, false) => {} // unused by both: carries no signal
            }
        }
        Self { p, t }
    }

    /// `P / (P + T)`; `0` when the attribute is unused by both
    /// sub-populations.
    pub fn ratio(&self) -> f64 {
        let denom = self.p + self.t;
        if denom == 0 {
            return 0.0;
        }
        self.p as f64 / denom as f64
    }

    /// Whether the attribute is a property attribute at threshold `tau`.
    pub fn is_property(&self, tau: f64) -> bool {
        self.ratio() >= tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_disjoint_is_property() {
        // ph1 uses only v0, ph2 only v1 (the paper's hardware example).
        let info = PropertyInfo::from_counts(&[100, 0], &[0, 200]);
        assert_eq!((info.p, info.t), (2, 0));
        assert_eq!(info.ratio(), 1.0);
        assert!(info.is_property(0.9));
    }

    #[test]
    fn fully_shared_is_not_property() {
        let info = PropertyInfo::from_counts(&[10, 20, 30], &[5, 5, 5]);
        assert_eq!((info.p, info.t), (0, 3));
        assert_eq!(info.ratio(), 0.0);
        assert!(!info.is_property(0.9));
    }

    #[test]
    fn partially_disjoint_below_threshold() {
        // 1 disjoint of 4 informative values: ratio 0.25.
        let info = PropertyInfo::from_counts(&[10, 10, 10, 0], &[5, 5, 5, 7]);
        assert_eq!((info.p, info.t), (1, 3));
        assert!((info.ratio() - 0.25).abs() < 1e-12);
        assert!(!info.is_property(0.9));
        assert!(info.is_property(0.25));
    }

    #[test]
    fn unused_values_ignored() {
        // Two values used by neither sub-population don't bias the ratio.
        let info = PropertyInfo::from_counts(&[10, 0, 0, 0], &[0, 20, 0, 0]);
        assert_eq!((info.p, info.t), (2, 0));
        assert_eq!(info.ratio(), 1.0);
    }

    #[test]
    fn empty_attribute_is_not_property() {
        let info = PropertyInfo::from_counts(&[0, 0], &[0, 0]);
        assert_eq!(info.ratio(), 0.0);
        assert!(!info.is_property(0.9));
    }

    #[test]
    fn tau_monotonicity() {
        let info = PropertyInfo::from_counts(&[10, 0, 0], &[0, 5, 5]);
        // ratio = 1.0; property at every tau <= 1.
        for tau in [0.0, 0.5, 0.9, 1.0] {
            assert!(info.is_property(tau));
        }
        let half = PropertyInfo::from_counts(&[10, 0], &[10, 5]);
        assert!((half.ratio() - 0.5).abs() < 1e-12);
        assert!(half.is_property(0.5));
        assert!(!half.is_property(0.51));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        PropertyInfo::from_counts(&[1], &[1, 2]);
    }
}
