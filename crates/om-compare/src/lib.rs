//! **The paper's primary contribution**: automated comparison of two
//! sub-populations over rule cubes (Sections III-C and IV).
//!
//! Given two values `v_i`, `v_j` of one attribute and a class of interest
//! `c_a` — e.g. two phone models and the `dropped` class — the comparator
//! ranks every *other* attribute by how well it distinguishes the two
//! sub-populations `D_1 = {d | A(d) = v_i}` and `D_2 = {d | A(d) = v_j}`
//! with respect to `c_a`:
//!
//! * [`measure`] — the interestingness measure of Section IV-A:
//!   `M_i = Σ_k W_k`, `W_k = F_k · N_2k` when `F_k > 0` else `0`, with
//!   `F_k = rcf_2k − rcf_1k · (cf_2 / cf_1)` — the *excess* of the bad
//!   sub-population's confidence over what the overall ratio predicts;
//! * [`interval`] — the confidence-interval adjustment of Section IV-B
//!   (`rcf_1k = cf_1k + e_1k`, `rcf_2k = cf_2k − e_2k`, Wald margins at a
//!   configurable level; Wilson available as an ablation);
//! * [`property`] — property-attribute detection of Section IV-C
//!   (`P / (P + T) ≥ τ`, τ = 0.9 in the deployed system); property
//!   attributes are diverted to a separate list, not ranked;
//! * [`rank`] — the driver: reads **only rule cubes** (the paper:
//!   "the computation time is not affected by the original data set
//!   size"), producing a [`rank::ComparisonResult`];
//! * [`baselines`] — alternative attribute rankers (chi-square,
//!   information gain, absolute confidence difference) used by the
//!   recovery experiment to show why the paper's measure is the right one;
//! * [`report`] — plain-text rendering of results.

pub mod baselines;
pub mod drill;
pub mod groups;
pub mod interval;
pub mod json;
pub mod measure;
pub mod property;
pub mod rank;
pub mod report;

pub use drill::{
    candidate_attrs, candidate_attrs_in, drill_down, drill_down_budgeted, drill_down_via,
    drill_down_with, DrillConfig, DrillLevel, DrillPopulation, SelectorPopulation,
};
pub use groups::{compare_groups, GroupSpec};
pub use interval::IntervalMethod;
pub use measure::{score_attribute, AttrScore, SubPopCounts, ValueContribution};
pub use property::PropertyInfo;
pub use rank::{
    assemble, attr_name, counts_for_class, normalize, score_candidate, subpop_counts,
    subpop_slices, BaseStats, CompareConfig, CompareError, Comparator, ComparisonResult,
    ComparisonSpec, NormalizedSpec,
};
