//! The comparison driver (the algorithm of Fig. 3).
//!
//! ```text
//! for each A_i in {A_2 … A_n}:  M_i ← M(D_1, D_2, A_i)
//! rank A_2 … A_n by M_i
//! ```
//!
//! The driver reads **only rule cubes** from the [`CubeStore`] — never the
//! raw records — which is why the paper's Fig. 9 comparison time depends
//! on the number of attributes but "is not affected by the original data
//! set size".

use std::fmt;

use om_cube::olap::slice;
use om_cube::{CubeError, CubeStore, RuleCube};
use om_data::ValueId;
use om_fault::{fail, Budget, FaultError};

use crate::interval::IntervalMethod;
use crate::measure::{score_attribute, AttrScore, SubPopCounts};

/// The user's selection: one attribute, two of its values, and the class
/// of interest (Section III-C's input rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComparisonSpec {
    /// Schema index of the selected attribute (e.g. `PhoneModel`).
    pub attr: usize,
    /// First value (e.g. `ph1`).
    pub value_1: ValueId,
    /// Second value (e.g. `ph2`).
    pub value_2: ValueId,
    /// The class of interest `c_a` (e.g. `dropped`).
    pub class: ValueId,
}

/// Comparator configuration.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Interval adjustment (Section IV-B); the paper ships Wald at 0.95.
    pub interval: IntervalMethod,
    /// Property-attribute threshold τ (Section IV-C); 0.9 in the paper.
    pub property_tau: f64,
    /// Minimum records per sub-population — the paper assumes "both
    /// supports are large enough for meaningful analysis (which is decided
    /// by the user)".
    pub min_sub_population: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            interval: IntervalMethod::paper_default(),
            property_tau: 0.9,
            min_sub_population: 30,
        }
    }
}

/// Errors from the comparator.
#[derive(Debug)]
pub enum CompareError {
    /// The underlying cube store failed.
    Cube(CubeError),
    /// The spec was malformed (unknown attribute/value/class, v1 == v2).
    InvalidSpec(String),
    /// A sub-population is smaller than `min_sub_population`.
    InsufficientSupport {
        value_label: String,
        count: u64,
        required: u64,
    },
    /// The lower of the two rule confidences is zero; the measure's
    /// expected-confidence ratio `cf_2 / cf_1` is undefined.
    ZeroBaselineConfidence,
    /// The comparison ran out of budget or was cancelled mid-flight.
    Fault(FaultError),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Cube(e) => write!(f, "cube error: {e}"),
            CompareError::InvalidSpec(msg) => write!(f, "invalid comparison spec: {msg}"),
            CompareError::InsufficientSupport {
                value_label,
                count,
                required,
            } => write!(
                f,
                "sub-population {value_label:?} has {count} records, fewer than the required {required}"
            ),
            CompareError::ZeroBaselineConfidence => write!(
                f,
                "the class of interest never occurs in the lower sub-population; the expected-confidence ratio is undefined"
            ),
            CompareError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompareError {}

impl From<CubeError> for CompareError {
    fn from(e: CubeError) -> Self {
        match e {
            // Keep faults recognizable at every layer: a deadline that
            // tripped inside a cube walk is still a deadline.
            CubeError::Fault(f) => CompareError::Fault(f),
            other => CompareError::Cube(other),
        }
    }
}

impl From<FaultError> for CompareError {
    fn from(e: FaultError) -> Self {
        CompareError::Fault(e)
    }
}

/// The full output of one comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// Schema index of the compared attribute.
    pub attr: usize,
    pub attr_name: String,
    /// The *good* (lower-confidence) value after normalization.
    pub value_1: ValueId,
    pub value_1_label: String,
    /// The *bad* (higher-confidence) value.
    pub value_2: ValueId,
    pub value_2_label: String,
    /// Whether the input values were swapped to enforce `cf1 <= cf2`.
    pub swapped: bool,
    pub class: ValueId,
    pub class_label: String,
    /// Overall rule confidences and sub-population sizes.
    pub cf1: f64,
    pub cf2: f64,
    pub n1: u64,
    pub n2: u64,
    /// Non-property attributes, ranked by `M_i` descending.
    pub ranked: Vec<AttrScore>,
    /// Property attributes, "automatically detected and put in a separate
    /// list", sorted by disjointness ratio.
    pub property_attrs: Vec<AttrScore>,
}

impl ComparisonResult {
    /// The top-ranked attribute, if any non-property attribute scored.
    pub fn top(&self) -> Option<&AttrScore> {
        self.ranked.first()
    }

    /// Rank (0-based) of the attribute named `name` in the ranked list.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.ranked.iter().position(|s| s.attr_name == name)
    }
}

/// The comparator: ranks attributes by the Section IV measure, reading
/// only rule cubes.
///
/// ```
/// use om_compare::{Comparator, ComparisonSpec};
/// use om_cube::{CubeStore, StoreBuildOptions};
/// use om_synth::paper_scenario;
///
/// let (ds, truth) = paper_scenario(20_000, 1);
/// let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
/// let s = ds.schema();
/// let attr = s.attr_index("PhoneModel").unwrap();
/// let spec = ComparisonSpec {
///     attr,
///     value_1: s.attribute(attr).domain().get("ph1").unwrap(),
///     value_2: s.attribute(attr).domain().get("ph2").unwrap(),
///     class: s.class().domain().get("dropped").unwrap(),
/// };
/// let result = Comparator::new(&store).compare(&spec).unwrap();
/// assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
/// ```
pub struct Comparator<'a> {
    store: &'a CubeStore,
    config: CompareConfig,
}

impl<'a> Comparator<'a> {
    /// A comparator with the paper's deployed configuration.
    pub fn new(store: &'a CubeStore) -> Self {
        Self {
            store,
            config: CompareConfig::default(),
        }
    }

    /// A comparator with an explicit configuration.
    pub fn with_config(store: &'a CubeStore, config: CompareConfig) -> Self {
        Self { store, config }
    }

    pub fn config(&self) -> &CompareConfig {
        &self.config
    }

    /// Run the comparison of Fig. 3 for `spec`.
    ///
    /// # Errors
    /// See [`CompareError`].
    pub fn compare(&self, spec: &ComparisonSpec) -> Result<ComparisonResult, CompareError> {
        self.compare_budgeted(spec, &Budget::unlimited())
    }

    /// [`compare`](Self::compare) under a cooperative [`Budget`]: the
    /// deadline is checked once per compared attribute (the unit of work
    /// Fig. 9 scales in), so an expensive comparison stops within one
    /// attribute's worth of work past its budget.
    ///
    /// # Errors
    /// See [`CompareError`]; [`CompareError::Fault`] when the budget
    /// expires or the request is cancelled.
    pub fn compare_budgeted(
        &self,
        spec: &ComparisonSpec,
        budget: &Budget,
    ) -> Result<ComparisonResult, CompareError> {
        budget.check()?;
        let norm = normalize(self.store, &self.config, spec)?;
        let mut scores = Vec::with_capacity(self.store.attrs().len().saturating_sub(1));
        for &other in self.store.attrs() {
            if other == norm.spec.attr {
                continue;
            }
            budget.check()?;
            scores.push(score_candidate(self.store, &self.config, &norm, other)?);
        }
        Ok(assemble(norm, scores, &self.config))
    }
}

/// Base rule statistics of the two compared sub-populations, gathered
/// once per comparison from the selected attribute's 2-D cube.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseStats {
    pub attr_name: String,
    pub v1_label: String,
    pub v2_label: String,
    pub class_label: String,
    pub cf1: f64,
    pub cf2: f64,
    pub n1: u64,
    pub n2: u64,
}

/// A validated comparison oriented so `cf1 <= cf2`: the shared input of
/// every per-attribute scoring step.
///
/// [`normalize`] → N × [`score_candidate`] → [`assemble`] is the exact
/// pipeline [`Comparator::compare_budgeted`] runs serially; execution
/// layers (om-exec) shard the middle stage across workers and reuse the
/// outer two unchanged, so parallel output is byte-identical to serial
/// by construction rather than by re-implementation.
#[derive(Debug, Clone)]
pub struct NormalizedSpec {
    /// The oriented spec: `value_1` is the lower-confidence value.
    pub spec: ComparisonSpec,
    /// Whether the input values were swapped to enforce `cf1 <= cf2`.
    pub swapped: bool,
    /// Base statistics backing every `F_k` computation.
    pub base: BaseStats,
}

/// Validate `spec` against `store`, orient it so `cf1 <= cf2`, and gather
/// the base rule statistics.
///
/// # Errors
/// [`CompareError::InvalidSpec`], [`CompareError::InsufficientSupport`]
/// or [`CompareError::ZeroBaselineConfidence`] on a spec the measure is
/// undefined for; [`CompareError::Cube`] if the store lacks the cubes.
pub fn normalize(
    store: &CubeStore,
    config: &CompareConfig,
    spec: &ComparisonSpec,
) -> Result<NormalizedSpec, CompareError> {
    if spec.value_1 == spec.value_2 {
        return Err(CompareError::InvalidSpec(
            "the two compared values must differ".into(),
        ));
    }
    let one = store.one_dim(spec.attr)?;
    let dim = &one.dims()[0];
    let card = dim.cardinality() as ValueId;
    for v in [spec.value_1, spec.value_2] {
        if v >= card {
            return Err(CompareError::InvalidSpec(format!(
                "value id {v} out of range for attribute {:?} (cardinality {card})",
                dim.name
            )));
        }
    }
    if spec.class as usize >= one.n_classes() {
        return Err(CompareError::InvalidSpec(format!(
            "class id {} out of range ({} classes)",
            spec.class,
            one.n_classes()
        )));
    }

    let stats = |v: ValueId| -> Result<(u64, u64), CompareError> {
        let n = one.cell_total(&[v])?;
        let x = one.count(&[v], spec.class)?;
        Ok((n, x))
    };
    let (mut n1, mut x1) = stats(spec.value_1)?;
    let (mut n2, mut x2) = stats(spec.value_2)?;
    let (mut v1, mut v2) = (spec.value_1, spec.value_2);
    let conf = |x: u64, n: u64| if n == 0 { 0.0 } else { x as f64 / n as f64 };
    let mut swapped = false;
    if conf(x1, n1) > conf(x2, n2) {
        std::mem::swap(&mut n1, &mut n2);
        std::mem::swap(&mut x1, &mut x2);
        std::mem::swap(&mut v1, &mut v2);
        swapped = true;
    }
    for (v, n) in [(v1, n1), (v2, n2)] {
        if n < config.min_sub_population {
            return Err(CompareError::InsufficientSupport {
                value_label: dim.labels[v as usize].clone(),
                count: n,
                required: config.min_sub_population,
            });
        }
    }
    let cf1 = conf(x1, n1);
    let cf2 = conf(x2, n2);
    if cf1 <= 0.0 {
        return Err(CompareError::ZeroBaselineConfidence);
    }
    Ok(NormalizedSpec {
        spec: ComparisonSpec {
            attr: spec.attr,
            value_1: v1,
            value_2: v2,
            class: spec.class,
        },
        swapped,
        base: BaseStats {
            attr_name: dim.name.clone(),
            v1_label: dim.labels[v1 as usize].clone(),
            v2_label: dim.labels[v2 as usize].clone(),
            class_label: one.class_labels()[spec.class as usize].clone(),
            cf1,
            cf2,
            n1,
            n2,
        },
    })
}

/// Score one candidate attribute against a normalized spec — the
/// per-attribute unit of work of Fig. 3's loop, and the unit Fig. 9
/// scales in. Reads only rule cubes and writes nothing, so shards can
/// run it concurrently against one pinned store.
///
/// # Errors
/// [`CompareError::Cube`] if the store lacks the pair cube;
/// [`CompareError::Fault`] from an armed `compare.attr` failpoint.
pub fn score_candidate(
    store: &CubeStore,
    config: &CompareConfig,
    norm: &NormalizedSpec,
    other: usize,
) -> Result<AttrScore, CompareError> {
    fail::inject("compare.attr")?;
    let spec = &norm.spec;
    let (labels, d1, d2) =
        subpop_counts(store, spec.attr, other, spec.value_1, spec.value_2, spec.class)?;
    let name = attr_name(store, other)?;
    Ok(score_attribute(
        other,
        &name,
        &labels,
        &d1,
        &d2,
        norm.base.cf1,
        norm.base.cf2,
        config.interval,
    ))
}

/// Partition scored attributes into the ranked and property lists and
/// apply the canonical sort orders.
///
/// `scores` must arrive in store-attribute order (the order
/// `store.attrs()` yields): both sorts are stable, so ties keep their
/// input order and serial vs sharded execution produce byte-identical
/// results if and only if the pre-sort order matches.
pub fn assemble(
    norm: NormalizedSpec,
    scores: Vec<AttrScore>,
    config: &CompareConfig,
) -> ComparisonResult {
    let mut ranked: Vec<AttrScore> = Vec::new();
    let mut property_attrs: Vec<AttrScore> = Vec::new();
    for score in scores {
        if score.property.is_property(config.property_tau) {
            property_attrs.push(score);
        } else {
            ranked.push(score);
        }
    }

    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    property_attrs.sort_by(|a, b| {
        b.property
            .ratio()
            .partial_cmp(&a.property.ratio())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    ComparisonResult {
        attr: norm.spec.attr,
        attr_name: norm.base.attr_name,
        value_1: norm.spec.value_1,
        value_1_label: norm.base.v1_label,
        value_2: norm.spec.value_2,
        value_2_label: norm.base.v2_label,
        swapped: norm.swapped,
        class: norm.spec.class,
        class_label: norm.base.class_label,
        cf1: norm.base.cf1,
        cf2: norm.base.cf2,
        n1: norm.base.n1,
        n2: norm.base.n2,
        ranked,
        property_attrs,
    }
}

/// Name of attribute `attr` as recorded in its 2-D cube.
///
/// # Errors
/// [`CubeError`] if the store has no cube for `attr`.
pub fn attr_name(store: &CubeStore, attr: usize) -> Result<String, CubeError> {
    Ok(store.one_dim(attr)?.dims()[0].name.clone())
}

/// Extract the per-value counts of both sub-populations for `other` from
/// the 3-D cube `(sel, other, class)` — two slice operations, exactly the
/// manual workflow of Section III-C, automated.
///
/// # Errors
/// [`CompareError::Cube`] if the pair cube is missing or malformed.
pub fn subpop_counts(
    store: &CubeStore,
    sel: usize,
    other: usize,
    v1: ValueId,
    v2: ValueId,
    class: ValueId,
) -> Result<(Vec<String>, SubPopCounts, SubPopCounts), CompareError> {
    let (labels, d1, d2) = subpop_slices(store, sel, other, v1, v2)?;
    Ok((
        labels,
        counts_for_class(&d1, class)?,
        counts_for_class(&d2, class)?,
    ))
}

/// The two sub-population slices of the pair cube `(sel, other)`, before
/// any class is chosen. Batch plans whose items share a base population
/// fetch these once per candidate attribute and extract per-class counts
/// with [`counts_for_class`] — one cube pass serving many comparisons.
///
/// # Errors
/// [`CompareError::Cube`] if the pair cube is missing or malformed.
pub fn subpop_slices(
    store: &CubeStore,
    sel: usize,
    other: usize,
    v1: ValueId,
    v2: ValueId,
) -> Result<(Vec<String>, RuleCube, RuleCube), CompareError> {
    let pair = store.pair(sel, other)?;
    // A store assembled from a corrupt or hand-built artifact can hold a
    // pair cube that doesn't mention `sel`; this path is reachable from
    // network input, so it must not panic.
    let sel_dim = pair
        .dims()
        .iter()
        .position(|d| d.attr_index == sel)
        .ok_or_else(|| {
            CompareError::Cube(CubeError::Invalid(format!(
                "pair cube ({sel}, {other}) lacks the selected attribute dimension"
            )))
        })?;
    let labels = pair.dims()[1 - sel_dim].labels.clone();
    let d1 = slice(&pair, sel_dim, v1)?;
    let d2 = slice(&pair, sel_dim, v2)?;
    Ok((labels, d1, d2))
}

/// Per-value `(N_k, x_k)` counts of one sub-population slice for `class`.
///
/// # Errors
/// [`CompareError::Cube`] on an out-of-range class.
pub fn counts_for_class(cube: &RuleCube, class: ValueId) -> Result<SubPopCounts, CompareError> {
    let card = cube.dims()[0].cardinality();
    let mut n = Vec::with_capacity(card);
    let mut x = Vec::with_capacity(card);
    for k in 0..card as ValueId {
        n.push(cube.cell_total(&[k])?);
        x.push(cube.count(&[k], class)?);
    }
    Ok(SubPopCounts::new(n, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::StoreBuildOptions;
    use om_synth::paper_scenario;

    fn scenario() -> (om_data::Dataset, om_synth::GroundTruth, CubeStore) {
        let (mut ds, truth) = paper_scenario(60_000, 7);
        om_discretize_for_test(&mut ds);
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        (ds, truth, store)
    }

    /// Drop the continuous attributes (keep the test focused on the
    /// comparator; full-pipeline discretization is covered in the
    /// integration tests).
    fn om_discretize_for_test(_ds: &mut om_data::Dataset) {
        // CubeStore::build skips continuous attributes by default.
    }

    fn spec_for(
        ds: &om_data::Dataset,
        truth: &om_synth::GroundTruth,
    ) -> ComparisonSpec {
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        ComparisonSpec {
            attr,
            value_1: s
                .attribute(attr)
                .domain()
                .get(&truth.baseline_value)
                .unwrap(),
            value_2: s
                .attribute(attr)
                .domain()
                .get(&truth.target_value)
                .unwrap(),
            class: s.class().domain().get(&truth.target_class).unwrap(),
        }
    }

    #[test]
    fn recovers_the_planted_attribute_at_rank_one() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let result = comparator.compare(&spec_for(&ds, &truth)).unwrap();
        let top = result.top().expect("has ranked attributes");
        assert_eq!(
            top.attr_name, truth.expected_top_attr,
            "ranking: {:?}",
            result
                .ranked
                .iter()
                .map(|s| (&s.attr_name, s.score))
                .collect::<Vec<_>>()
        );
        // The planted value (morning) dominates the contribution.
        assert_eq!(top.top_values()[0].label, truth.expected_top_value);
        // The common-cause attribute must not outrank the planted one.
        for u in &truth.uninformative_attrs {
            assert!(result.rank_of(u).unwrap() > 0, "{u} outranked the cause");
        }
    }

    #[test]
    fn property_attribute_diverted_to_separate_list() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let result = comparator.compare(&spec_for(&ds, &truth)).unwrap();
        for p in &truth.property_attrs {
            assert!(
                result.property_attrs.iter().any(|s| &s.attr_name == p),
                "{p} missing from the property list: {:?}",
                result
                    .property_attrs
                    .iter()
                    .map(|s| &s.attr_name)
                    .collect::<Vec<_>>()
            );
            assert!(result.rank_of(p).is_none(), "{p} must not be ranked");
        }
    }

    #[test]
    fn swaps_to_enforce_cf1_below_cf2() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let spec = spec_for(&ds, &truth);
        let reversed = ComparisonSpec {
            value_1: spec.value_2,
            value_2: spec.value_1,
            ..spec
        };
        let a = comparator.compare(&spec).unwrap();
        let b = comparator.compare(&reversed).unwrap();
        assert!(!a.swapped);
        assert!(b.swapped);
        assert_eq!(a.cf1, b.cf1);
        assert_eq!(a.value_2_label, b.value_2_label);
        assert_eq!(
            a.ranked.iter().map(|s| s.attr).collect::<Vec<_>>(),
            b.ranked.iter().map(|s| s.attr).collect::<Vec<_>>()
        );
        assert!(a.cf1 <= a.cf2);
    }

    #[test]
    fn spec_validation_errors() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let spec = spec_for(&ds, &truth);
        // Same value twice.
        let r = comparator.compare(&ComparisonSpec {
            value_2: spec.value_1,
            ..spec
        });
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
        // Bad value id.
        let r = comparator.compare(&ComparisonSpec {
            value_2: 99,
            ..spec
        });
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
        // Bad class id.
        let r = comparator.compare(&ComparisonSpec { class: 99, ..spec });
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
        // Unknown attribute.
        let r = comparator.compare(&ComparisonSpec { attr: 999, ..spec });
        assert!(matches!(r, Err(CompareError::Cube(_))));
    }

    #[test]
    fn min_support_enforced() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::with_config(
            &store,
            CompareConfig {
                min_sub_population: u64::MAX,
                ..CompareConfig::default()
            },
        );
        let r = comparator.compare(&spec_for(&ds, &truth));
        assert!(matches!(r, Err(CompareError::InsufficientSupport { .. })), "{r:?}");
    }

    #[test]
    fn expired_budget_aborts_comparison() {
        use std::time::Duration;
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let spec = spec_for(&ds, &truth);
        let spent = Budget::with_timeout(Duration::ZERO);
        let r = comparator.compare_budgeted(&spec, &spent);
        assert!(matches!(r, Err(CompareError::Fault(_))), "{r:?}");
        // The same spec under no budget still works.
        assert!(comparator.compare_budgeted(&spec, &Budget::unlimited()).is_ok());
    }

    #[test]
    fn cancellation_aborts_comparison() {
        let (ds, truth, store) = scenario();
        let comparator = Comparator::new(&store);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let r = comparator.compare_budgeted(&spec_for(&ds, &truth), &budget);
        assert!(
            matches!(r, Err(CompareError::Fault(FaultError::Cancelled))),
            "{r:?}"
        );
    }

    #[test]
    fn error_display_strings() {
        let e = CompareError::ZeroBaselineConfidence;
        assert!(e.to_string().contains("never occurs"));
        let e = CompareError::InsufficientSupport {
            value_label: "ph9".into(),
            count: 3,
            required: 30,
        };
        assert!(e.to_string().contains("ph9"));
    }
}
