//! Confidence-interval adjustment (Section IV-B).
//!
//! "If we have two rules with the confidences cf_1k = 10% and cf_2k = 12%,
//! the question is whether the two confidence values are really different
//! statistically. If we cannot show that, our interestingness results are
//! of little use." The paper shrinks the gap pessimistically before
//! computing `F_k`:
//!
//! ```text
//! rcf_1k = cf_1k + e_1k      (baseline pushed up)
//! rcf_2k = cf_2k − e_2k      (target pushed down)
//! ```
//!
//! with Wald margins `e_jk = z · sqrt(cf_jk (1 − cf_jk) / N_jk)` at the
//! configured statistical confidence level (Table I gives the z values).

use om_stats::{proportion_margin, wilson_interval};

/// Which interval construction to use for the adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalMethod {
    /// No adjustment: `rcf = cf`. The ablation showing why Section IV-B
    /// exists.
    None,
    /// The paper's Wald margin at the given confidence level.
    Wald(f64),
    /// Wilson score interval at the given level — an extension fixing
    /// Wald's zero-width interval at `cf ∈ {0, 1}` (exactly the regime
    /// property attributes live in).
    Wilson(f64),
}

impl IntervalMethod {
    /// The paper's deployed configuration (Wald at 0.95, z = 1.96).
    pub fn paper_default() -> Self {
        IntervalMethod::Wald(0.95)
    }

    /// Revised confidence for the *baseline* sub-population: pushed up to
    /// the interval's upper bound, clamped to `[0, 1]`.
    pub fn revise_up(&self, x: u64, n: u64, cf: f64) -> f64 {
        match *self {
            IntervalMethod::None => cf,
            IntervalMethod::Wald(level) => (cf + proportion_margin(cf, n, level)).min(1.0),
            IntervalMethod::Wilson(level) => wilson_interval(x, n, level).upper,
        }
    }

    /// Revised confidence for the *target* sub-population: pushed down to
    /// the interval's lower bound, clamped to `[0, 1]`.
    pub fn revise_down(&self, x: u64, n: u64, cf: f64) -> f64 {
        match *self {
            IntervalMethod::None => cf,
            IntervalMethod::Wald(level) => (cf - proportion_margin(cf, n, level)).max(0.0),
            IntervalMethod::Wilson(level) => wilson_interval(x, n, level).lower,
        }
    }

    /// The margin itself (0 for `None` and for Wilson, which is asymmetric;
    /// callers needing whisker sizes should use the revised bounds).
    pub fn wald_margin(&self, n: u64, cf: f64) -> f64 {
        match *self {
            IntervalMethod::Wald(level) => proportion_margin(cf, n, level),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let m = IntervalMethod::None;
        assert_eq!(m.revise_up(10, 100, 0.1), 0.1);
        assert_eq!(m.revise_down(10, 100, 0.1), 0.1);
    }

    #[test]
    fn wald_shrinks_the_gap() {
        let m = IntervalMethod::paper_default();
        let up = m.revise_up(100, 1000, 0.1);
        let down = m.revise_down(120, 1000, 0.12);
        assert!(up > 0.1);
        assert!(down < 0.12);
        // At N=1000 a 2-point gap is not fully erased but much reduced.
        assert!(down - up < 0.02);
    }

    #[test]
    fn wald_clamps() {
        let m = IntervalMethod::Wald(0.99);
        assert!(m.revise_up(99, 100, 0.99) <= 1.0);
        assert!(m.revise_down(1, 100, 0.01) >= 0.0);
    }

    #[test]
    fn small_n_gets_bigger_margin() {
        let m = IntervalMethod::paper_default();
        let small = m.revise_up(3, 10, 0.3) - 0.3;
        let large = m.revise_up(300, 1000, 0.3) - 0.3;
        assert!(small > large * 3.0);
    }

    #[test]
    fn wilson_nonzero_at_extremes() {
        let m = IntervalMethod::Wilson(0.95);
        // Wald gives margin 0 at cf=0; Wilson keeps skepticism.
        assert!(m.revise_up(0, 50, 0.0) > 0.01);
        assert!(m.revise_down(50, 50, 1.0) < 0.99);
        let w = IntervalMethod::Wald(0.95);
        assert_eq!(w.revise_up(0, 50, 0.0), 0.0);
    }

    #[test]
    fn empty_cells_have_no_margin() {
        let m = IntervalMethod::paper_default();
        assert_eq!(m.revise_up(0, 0, 0.0), 0.0);
        assert_eq!(m.wald_margin(0, 0.5), 0.0);
    }
}
