//! Drill-down comparison: recurse into the top finding.
//!
//! After the comparator isolates, say, `TimeOfCall = morning`, the
//! engineer's next question is "*within the morning*, what further
//! distinguishes the two phones?" — the same question one level deeper.
//! The deployed system answered it manually via restricted mining
//! (Section III-B); this module automates the loop: condition both
//! sub-populations on the finding, re-run the comparison over the
//! remaining attributes, and repeat until no attribute clears a
//! significance floor.
//!
//! Conditioning on a third attribute needs counts beyond the stored 3-D
//! cubes; the deployed system recounted from the records on demand. Here
//! the recount goes through the counting kernel instead: conditioning is
//! a bitmap AND over a [`ColumnIndex`] and each level's cubes come from
//! one shared masked scan ([`PopulationSelector::build_store_anchored`]),
//! so drilling no longer copies a single record. Counts — and therefore
//! every ranked result — are byte-identical to the record walk.

use std::sync::Arc;

use om_car::Condition;
use om_cube::{ColumnIndex, CubeStore, PopulationSelector};
use om_data::{Dataset, Schema};
use om_fault::{fail, Budget};

use crate::rank::{CompareConfig, CompareError, Comparator, ComparisonResult, ComparisonSpec};

/// One level of a drill-down: the condition added and the comparison run
/// under it.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillLevel {
    /// The conditions in force for this level (empty at the root).
    pub conditions: Vec<Condition>,
    /// Human-readable rendering of `conditions`.
    pub condition_labels: Vec<String>,
    /// The comparison under those conditions.
    pub result: ComparisonResult,
}

/// Configuration for the automated drill-down.
#[derive(Debug, Clone)]
pub struct DrillConfig {
    /// Comparator settings applied at every level.
    pub compare: CompareConfig,
    /// Stop when the top attribute's normalized score falls below this.
    pub min_normalized_score: f64,
    /// Maximum number of levels below the root.
    pub max_depth: usize,
}

impl Default for DrillConfig {
    fn default() -> Self {
        Self {
            compare: CompareConfig::default(),
            min_normalized_score: 0.05,
            max_depth: 2,
        }
    }
}

/// Run the root comparison and automatically drill into the top finding
/// at each level: condition on (top attribute = top value), rebuild cubes
/// over the conditioned records, and compare again.
///
/// Returns the levels in order (root first). The walk stops when depth is
/// exhausted, the top score falls below the floor, sub-populations get
/// too small, or no attribute remains.
///
/// # Errors
/// Fails if the *root* comparison fails; deeper failures (e.g. the
/// conditioned sub-populations became too small) end the walk cleanly.
pub fn drill_down(
    ds: &Dataset,
    spec: &ComparisonSpec,
    config: &DrillConfig,
) -> Result<Vec<DrillLevel>, CompareError> {
    drill_down_budgeted(ds, spec, config, &Budget::unlimited())
}

/// [`drill_down`] under a cooperative [`Budget`]: the deadline is checked
/// before each level's cube rebuild (the cost that scales with data size)
/// and inside each level's comparison. A budget fault at *any* depth
/// aborts the whole walk — unlike ordinary deeper failures, it means the
/// caller's time is up, not that the data ran thin.
///
/// # Errors
/// Fails if the root comparison fails, or with [`CompareError::Fault`]
/// when the budget expires or the request is cancelled.
pub fn drill_down_budgeted(
    ds: &Dataset,
    spec: &ComparisonSpec,
    config: &DrillConfig,
    budget: &Budget,
) -> Result<Vec<DrillLevel>, CompareError> {
    let compare = config.compare.clone();
    drill_down_with(ds, spec, config, budget, move |store, spec, budget| {
        Comparator::with_config(&store, compare.clone()).compare_budgeted(spec, budget)
    })
}

/// The candidate attributes a drill level ranks over: categorical,
/// non-class, keeping the selected attribute, excluding anything already
/// conditioned on. Returns fewer than 2 attributes when nothing but the
/// selection is left — the walk's natural stopping point.
pub fn candidate_attrs(ds: &Dataset, spec_attr: usize, excluded: &[usize]) -> Vec<usize> {
    candidate_attrs_in(ds.schema(), spec_attr, excluded)
}

/// [`candidate_attrs`] from a bare [`Schema`] — the candidate set is a
/// schema property (conditioning never changes the schema), which is
/// what lets a distributed walk rank without holding any records.
pub fn candidate_attrs_in(schema: &Schema, spec_attr: usize, excluded: &[usize]) -> Vec<usize> {
    schema
        .non_class_indices()
        .into_iter()
        .filter(|a| {
            schema.attribute(*a).is_categorical() && (*a == spec_attr || !excluded.contains(a))
        })
        .collect()
}

/// The population one drill walk narrows level by level.
///
/// The walk itself ([`drill_down_via`]) only needs three capabilities:
/// the (conditioning-invariant) schema, a restricted cube store over the
/// *current* sub-population, and the ability to descend one condition.
/// A single-node caller backs this with a [`Dataset`]; a distributed
/// caller backs it with shard fan-out and merged partial stores — the
/// walk's control flow (and therefore its output) is identical either
/// way.
pub trait DrillPopulation {
    /// The schema of the population (identical at every level).
    fn schema(&self) -> &Schema;

    /// Build the restricted cube store for the current sub-population
    /// over `attrs`. Returned in an [`Arc`] so an implementation that
    /// caches stores (a coordinator merging shard partials) can hand
    /// out the cached build without cloning it.
    ///
    /// # Errors
    /// [`CompareError`] when the store cannot be built; the walk
    /// propagates it (at any depth).
    fn level_store(&mut self, attrs: Vec<usize>) -> Result<Arc<CubeStore>, CompareError>;

    /// Narrow the population to `condition`. Returns `Ok(false)` when
    /// the resulting sub-population would be empty (or the condition
    /// does not apply) — the walk's clean stop.
    ///
    /// # Errors
    /// Only for infrastructure failures (a distributed population losing
    /// a shard); a plain empty sub-population is `Ok(false)`.
    fn descend(&mut self, condition: Condition) -> Result<bool, CompareError>;
}

/// Kernel-backed [`DrillPopulation`] — the one single-node way to
/// condition a drill. `descend` is a bitmap AND; each level's store is
/// one shared masked scan anchored on the compared attribute, so the
/// scan fills exactly the pair cubes the level's ranking reads.
pub struct SelectorPopulation {
    current: PopulationSelector,
    anchor: usize,
}

impl SelectorPopulation {
    /// A population at the root (unconditioned) selector. `anchor` is
    /// the compared attribute ([`ComparisonSpec::attr`]); level stores
    /// eagerly materialize exactly its pair cubes.
    pub fn new(selector: PopulationSelector, anchor: usize) -> Self {
        Self {
            current: selector,
            anchor,
        }
    }
}

impl DrillPopulation for SelectorPopulation {
    fn schema(&self) -> &Schema {
        self.current.schema()
    }

    fn level_store(&mut self, attrs: Vec<usize>) -> Result<Arc<CubeStore>, CompareError> {
        self.current
            .build_store_anchored(Some(attrs), self.anchor)
            .map(Arc::new)
            .map_err(CompareError::Cube)
    }

    fn descend(&mut self, condition: Condition) -> Result<bool, CompareError> {
        match self.current.narrow(condition.attr, condition.value) {
            Ok(sub) if sub.count() > 0 => {
                self.current = sub;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// [`drill_down_budgeted`] with the per-level comparison delegated to
/// `run_compare` — the seam an execution layer (om-exec) uses to swap the
/// serial comparator for a sharded one without duplicating the walk. The
/// store is handed over in an [`Arc`] because a parallel runner fans it
/// out to pool workers.
///
/// # Errors
/// Same contract as [`drill_down_budgeted`]: root failures and faults
/// propagate, deeper data-thinness failures end the walk cleanly.
pub fn drill_down_with<F>(
    ds: &Dataset,
    spec: &ComparisonSpec,
    config: &DrillConfig,
    budget: &Budget,
    run_compare: F,
) -> Result<Vec<DrillLevel>, CompareError>
where
    F: FnMut(Arc<CubeStore>, &ComparisonSpec, &Budget) -> Result<ComparisonResult, CompareError>,
{
    let index = Arc::new(ColumnIndex::build(ds).map_err(CompareError::Cube)?);
    let mut pop = SelectorPopulation::new(index.selector(), spec.attr);
    drill_down_via(&mut pop, spec, config, budget, run_compare)
}

/// The drill walk over any [`DrillPopulation`] — the one copy of the
/// level loop shared by the single-node path ([`drill_down_with`]) and
/// a distributed coordinator, so both produce the same levels for the
/// same counts by construction.
///
/// # Errors
/// Same contract as [`drill_down_budgeted`]: root failures and faults
/// propagate, deeper data-thinness failures end the walk cleanly.
pub fn drill_down_via<P, F>(
    pop: &mut P,
    spec: &ComparisonSpec,
    config: &DrillConfig,
    budget: &Budget,
    mut run_compare: F,
) -> Result<Vec<DrillLevel>, CompareError>
where
    P: DrillPopulation + ?Sized,
    F: FnMut(Arc<CubeStore>, &ComparisonSpec, &Budget) -> Result<ComparisonResult, CompareError>,
{
    let mut levels = Vec::new();
    let mut conditions: Vec<Condition> = Vec::new();
    let mut excluded: Vec<usize> = vec![spec.attr];

    for depth in 0..=config.max_depth {
        budget.check()?;
        fail::inject("compare.drill-level")?;
        let attrs = candidate_attrs_in(pop.schema(), spec.attr, &excluded);
        if attrs.len() < 2 {
            break; // only the selected attribute left — nothing to rank
        }
        let store = pop.level_store(attrs)?;
        let result = match run_compare(store, spec, budget) {
            Ok(r) => r,
            Err(e) if depth == 0 => return Err(e),
            Err(e @ CompareError::Fault(_)) => return Err(e),
            Err(_) => break, // conditioned data too thin — stop cleanly
        };

        let next = result.top().map(|top| {
            let value = top.top_values().first().map(|c| c.value).unwrap_or(0);
            (top.attr, top.attr_name.clone(), value, top.normalized)
        });
        levels.push(DrillLevel {
            conditions: conditions.clone(),
            condition_labels: conditions
                .iter()
                .map(|c| c.display(pop.schema()))
                .collect(),
            result,
        });

        let Some((attr, _name, value, normalized)) = next else {
            break;
        };
        if normalized < config.min_normalized_score || depth == config.max_depth {
            break;
        }
        // Condition on the finding and descend.
        let condition = Condition::new(attr, value);
        if !pop.descend(condition)? {
            break;
        }
        conditions.push(condition);
        excluded.push(attr);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_synth::{generate_call_log, CallLogConfig, Effect};

    /// Nested causes: ph2 is worse in the morning, and *within* morning
    /// calls the excess concentrates on highway driving.
    fn nested_scenario() -> (Dataset, ComparisonSpec) {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 120_000,
            seed: 77,
            effects: vec![
                Effect::interaction(
                    "PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 1.2,
                ),
                Effect::conjunction(
                    [
                        ("PhoneModel", "ph2"),
                        ("TimeOfCall", "morning"),
                        ("LocationType", "highway"),
                    ],
                    "dropped",
                    2.5,
                ),
            ],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        (ds, spec)
    }

    #[test]
    fn drill_finds_the_nested_cause() {
        let (ds, spec) = nested_scenario();
        let levels = drill_down(&ds, &spec, &DrillConfig::default()).unwrap();
        assert!(levels.len() >= 2, "expected a drill step, got {}", levels.len());
        // Root: TimeOfCall / morning.
        let root_top = levels[0].result.top().unwrap();
        assert_eq!(root_top.attr_name, "TimeOfCall");
        assert_eq!(root_top.top_values()[0].label, "morning");
        assert!(levels[0].conditions.is_empty());
        // Level 1 is conditioned on morning and surfaces LocationType.
        assert_eq!(levels[1].condition_labels, vec!["TimeOfCall=morning"]);
        let l1_top = levels[1].result.top().unwrap();
        assert_eq!(l1_top.attr_name, "LocationType", "{:?}",
            levels[1].result.ranked.iter().map(|s| (&s.attr_name, s.normalized)).collect::<Vec<_>>());
        assert_eq!(l1_top.top_values()[0].label, "highway");
    }

    #[test]
    fn drill_stops_when_nothing_left() {
        // Single flat effect: after conditioning on morning, nothing
        // should clear the score floor.
        let ds = generate_call_log(&CallLogConfig {
            n_records: 60_000,
            seed: 78,
            effects: vec![Effect::interaction(
                "PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 2.0,
            )],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let levels = drill_down(&ds, &spec, &DrillConfig::default()).unwrap();
        // Root finds morning; at most one further level, and if one was
        // produced its top score must be small (the stop condition).
        assert!(!levels.is_empty());
        assert_eq!(levels[0].result.top().unwrap().attr_name, "TimeOfCall");
        if let Some(last) = levels.get(1) {
            if let Some(top) = last.result.top() {
                assert!(
                    top.normalized < 0.25,
                    "unexpected strong nested finding: {} {:.3}",
                    top.attr_name,
                    top.normalized
                );
            }
        }
    }

    #[test]
    fn root_failure_propagates() {
        let (ds, spec) = nested_scenario();
        let bad = ComparisonSpec { value_2: 99, ..spec };
        assert!(drill_down(&ds, &bad, &DrillConfig::default()).is_err());
    }

    #[test]
    fn expired_budget_aborts_drill() {
        use om_fault::FaultError;
        use std::time::Duration;
        let (ds, spec) = nested_scenario();
        let spent = Budget::with_timeout(Duration::ZERO);
        let r = drill_down_budgeted(&ds, &spec, &DrillConfig::default(), &spent);
        assert!(
            matches!(r, Err(CompareError::Fault(FaultError::DeadlineExceeded { .. }))),
            "{r:?}"
        );
    }

    #[test]
    fn depth_zero_is_just_the_root() {
        let (ds, spec) = nested_scenario();
        let levels = drill_down(
            &ds,
            &spec,
            &DrillConfig {
                max_depth: 0,
                ..DrillConfig::default()
            },
        )
        .unwrap();
        assert_eq!(levels.len(), 1);
    }
}
