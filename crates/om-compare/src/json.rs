//! Minimal JSON serialization of comparison results (no external crates).
//!
//! The deployed system fed findings into other engineering tools; a
//! machine-readable export is the CLI-era equivalent. Only the writer is
//! provided — the library never parses JSON.

use std::fmt::Write as _;

use crate::measure::AttrScore;
use crate::rank::ComparisonResult;

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float rendering (JSON has no NaN/Infinity; clamp to null).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn attr_score_json(s: &AttrScore, out: &mut String) {
    let _ = write!(
        out,
        r#"{{"attr":{},"name":"{}","score":{},"normalized":{},"property":{{"p":{},"t":{},"ratio":{}}},"values":["#,
        s.attr,
        esc(&s.attr_name),
        num(s.score),
        num(s.normalized),
        s.property.p,
        s.property.t,
        num(s.property.ratio())
    );
    for (i, c) in s.contributions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"value":"{}","n1":{},"n2":{},"x1":{},"x2":{},"cf1":{},"cf2":{},"rcf1":{},"rcf2":{},"f":{},"w":{}}}"#,
            esc(&c.label),
            c.n1,
            c.n2,
            c.x1,
            c.x2,
            c.cf1.map_or("null".to_owned(), num),
            c.cf2.map_or("null".to_owned(), num),
            num(c.rcf1),
            num(c.rcf2),
            num(c.f),
            num(c.w)
        );
    }
    out.push_str("]}");
}

/// Serialize a full comparison result to a compact JSON document.
pub fn to_json(result: &ComparisonResult) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        r#"{{"attribute":"{}","value_1":"{}","value_2":"{}","swapped":{},"class":"{}","cf1":{},"cf2":{},"n1":{},"n2":{},"ranked":["#,
        esc(&result.attr_name),
        esc(&result.value_1_label),
        esc(&result.value_2_label),
        result.swapped,
        esc(&result.class_label),
        num(result.cf1),
        num(result.cf2),
        result.n1,
        result.n2
    );
    for (i, s) in result.ranked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        attr_score_json(s, &mut out);
    }
    out.push_str(r#"],"property_attributes":["#);
    for (i, s) in result.property_attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        attr_score_json(s, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{Comparator, ComparisonSpec};
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_synth::paper_scenario;

    fn result() -> ComparisonResult {
        let (ds, _) = paper_scenario(20_000, 12);
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        Comparator::new(&store).compare(&spec).unwrap()
    }

    /// A tiny structural validator: counts balanced braces/brackets and
    /// quotes outside of strings. Not a full parser, but catches the
    /// classic escaping/nesting mistakes.
    fn check_balanced(json: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced nesting");
        }
        assert_eq!(depth, 0, "unbalanced at end");
        assert!(!in_string, "unterminated string");
    }

    #[test]
    fn serializes_full_result() {
        let json = to_json(&result());
        check_balanced(&json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""attribute":"PhoneModel""#), "{json}");
        assert!(json.contains(r#""class":"dropped""#));
        assert!(json.contains(r#""ranked":["#));
        assert!(json.contains(r#""property_attributes":["#));
        assert!(json.contains("TimeOfCall"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn escaping_works() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn deterministic() {
        let r = result();
        assert_eq!(to_json(&r), to_json(&r));
    }
}
