//! Property-based tests for the interestingness measure: the boundary
//! claims of Section IV-A must hold over random inputs, not just the
//! paper's examples.

use om_compare::{score_attribute, IntervalMethod, SubPopCounts};
use proptest::prelude::*;

/// Random aligned sub-population counts with a usable baseline.
fn arb_subpops() -> impl Strategy<Value = (SubPopCounts, SubPopCounts)> {
    proptest::collection::vec(((1u64..2000, 0u64..2000), (1u64..2000, 0u64..2000)), 2..8)
        .prop_map(|cells| {
            let mut n1 = Vec::new();
            let mut x1 = Vec::new();
            let mut n2 = Vec::new();
            let mut x2 = Vec::new();
            for ((a_n, a_x), (b_n, b_x)) in cells {
                n1.push(a_n);
                x1.push(a_x % (a_n + 1));
                n2.push(b_n);
                x2.push(b_x % (b_n + 1));
            }
            (SubPopCounts::new(n1, x1), SubPopCounts::new(n2, x2))
        })
}

fn overall_cf(d: &SubPopCounts) -> f64 {
    let n: u64 = d.n.iter().sum();
    let x: u64 = d.x.iter().sum();
    if n == 0 {
        0.0
    } else {
        x as f64 / n as f64
    }
}

fn labels(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("v{i}")).collect()
}

proptest! {
    #[test]
    fn measure_is_nonnegative_and_normalized_bounded((d1, d2) in arb_subpops()) {
        let cf1 = overall_cf(&d1).max(1e-6);
        let cf2 = overall_cf(&d2).max(cf1);
        for method in [IntervalMethod::None, IntervalMethod::Wald(0.95), IntervalMethod::Wilson(0.95)] {
            let s = score_attribute(0, "A", &labels(d1.n_values()), &d1, &d2, cf1, cf2, method);
            prop_assert!(s.score >= 0.0);
            prop_assert!((0.0..=1.0).contains(&s.normalized), "normalized {}", s.normalized);
            prop_assert!((0.0..=1.0).contains(&s.property.ratio()));
            // W_k consistency with the score.
            let sum: f64 = s.contributions.iter().map(|c| c.w).sum();
            prop_assert!((sum - s.score).abs() < 1e-9);
        }
    }

    #[test]
    fn proportional_situations_score_zero(
        base in proptest::collection::vec((100u64..5000, 1u64..50), 2..6),
        mult in 2u64..5
    ) {
        // D2's confidence per value is exactly `mult` times D1's, built so
        // the overall ratio is also exactly `mult` — Fig. 4(A) generalized.
        let mut n1 = Vec::new();
        let mut x1 = Vec::new();
        let mut n2 = Vec::new();
        let mut x2 = Vec::new();
        for (n, x_raw) in base {
            // Keep the multiplied confidence below 1.
            let x = x_raw.min(n / (mult * 2));
            n1.push(n);
            x1.push(x);
            n2.push(n);
            x2.push(x * mult);
        }
        // Equal N per value on both sides: overall cfs scale exactly.
        let cf1 = overall_cf(&SubPopCounts::new(n1.clone(), x1.clone()));
        if cf1 == 0.0 { return Ok(()); }
        let d1 = SubPopCounts::new(n1, x1);
        let d2 = SubPopCounts::new(n2, x2);
        let cf2 = overall_cf(&d2);
        let s = score_attribute(0, "A", &labels(d1.n_values()), &d1, &d2, cf1, cf2, IntervalMethod::None);
        prop_assert!(s.score.abs() < 1e-6, "proportional situation scored {}", s.score);
    }

    #[test]
    fn concentrated_maximum_dominates((d1, d2) in arb_subpops()) {
        // Any random configuration scores at most the boundary maximum
        // cf2 * |D2| (i.e. the class-a count of D2): normalized <= 1 and
        // the concentrated construction achieves ~1.
        let cf1 = overall_cf(&d1).max(1e-6);
        let cf2 = overall_cf(&d2).max(cf1);
        let s = score_attribute(0, "A", &labels(d1.n_values()), &d1, &d2, cf1, cf2, IntervalMethod::None);
        let x2_total: u64 = d2.x.iter().sum();
        prop_assert!(s.score <= x2_total as f64 + 1e-9,
            "score {} exceeds the theoretical maximum {}", s.score, x2_total);
    }

    #[test]
    fn ci_adjustment_never_increases_score((d1, d2) in arb_subpops()) {
        let cf1 = overall_cf(&d1).max(1e-6);
        let cf2 = overall_cf(&d2).max(cf1);
        let lbl = labels(d1.n_values());
        let raw = score_attribute(0, "A", &lbl, &d1, &d2, cf1, cf2, IntervalMethod::None);
        let adj = score_attribute(0, "A", &lbl, &d1, &d2, cf1, cf2, IntervalMethod::Wald(0.95));
        prop_assert!(adj.score <= raw.score + 1e-9,
            "CI-adjusted {} > raw {}", adj.score, raw.score);
        // Stricter levels are more pessimistic still.
        let adj99 = score_attribute(0, "A", &lbl, &d1, &d2, cf1, cf2, IntervalMethod::Wald(0.99));
        prop_assert!(adj99.score <= adj.score + 1e-9);
    }
}
