//! Property tests for group comparison: merging sub-populations must be
//! exactly additive and consistent with the single-value comparator.

use om_compare::{compare_groups, CompareConfig, Comparator, ComparisonSpec, GroupSpec, IntervalMethod};
use om_cube::{CubeStore, StoreBuildOptions};
use om_data::{Cell, Dataset, DatasetBuilder};
use proptest::prelude::*;

/// Random dataset with a 4-value selector attribute, one candidate
/// attribute and 2 classes; every selector value is guaranteed ≥ 1 record
/// of each class so comparisons never hit the zero-baseline gate.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..2), 40..250).prop_map(|rows| {
        let mut b = DatasetBuilder::new()
            .categorical("Sel")
            .categorical("X")
            .class("C");
        let sl = ["s0", "s1", "s2", "s3"];
        let xl = ["x0", "x1", "x2"];
        let cl = ["c0", "c1"];
        // Guarantee coverage.
        for s in sl {
            for c in cl {
                b.push_row(&[Cell::Str(s), Cell::Str("x0"), Cell::Str(c)]).unwrap();
            }
        }
        for (s, x, c) in rows {
            b.push_row(&[
                Cell::Str(sl[s as usize]),
                Cell::Str(xl[x as usize]),
                Cell::Str(cl[c as usize]),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

fn config() -> CompareConfig {
    CompareConfig {
        interval: IntervalMethod::None,
        min_sub_population: 1,
        ..CompareConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn singleton_groups_equal_single_comparison(ds in arb_dataset()) {
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let single = Comparator::with_config(&store, config())
            .compare(&ComparisonSpec { attr: 0, value_1: 0, value_2: 1, class: 1 })
            .unwrap();
        let grouped = compare_groups(
            &store,
            &GroupSpec { attr: 0, group_1: vec![0], group_2: vec![1], class: 1 },
            &config(),
        )
        .unwrap();
        prop_assert_eq!(single.cf1, grouped.cf1);
        prop_assert_eq!(single.cf2, grouped.cf2);
        prop_assert_eq!(single.n1 + single.n2, grouped.n1 + grouped.n2);
        let a: Vec<(usize, f64)> = single.ranked.iter().map(|s| (s.attr, s.score)).collect();
        let b: Vec<(usize, f64)> = grouped.ranked.iter().map(|s| (s.attr, s.score)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_base_counts_are_sums(ds in arb_dataset()) {
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let result = compare_groups(
            &store,
            &GroupSpec { attr: 0, group_1: vec![0, 2], group_2: vec![1, 3], class: 1 },
            &config(),
        )
        .unwrap();
        // n1 + n2 covers exactly the records of the four selector values.
        let counts = ds.value_counts(0).unwrap();
        let expected: u64 = counts.iter().sum();
        prop_assert_eq!(result.n1 + result.n2, expected);
        prop_assert!(result.cf1 <= result.cf2);
    }

    #[test]
    fn group_scores_nonnegative_and_normalized(ds in arb_dataset()) {
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let result = compare_groups(
            &store,
            &GroupSpec { attr: 0, group_1: vec![0, 1], group_2: vec![2, 3], class: 0 },
            &config(),
        )
        .unwrap();
        for s in result.ranked.iter().chain(&result.property_attrs) {
            prop_assert!(s.score >= 0.0);
            prop_assert!((0.0..=1.0).contains(&s.normalized));
        }
    }
}
