//! Property test: `json::to_json` emits valid JSON for *arbitrary*
//! attribute, value and class names — including quotes, backslashes,
//! control characters and astral-plane code points — and for
//! non-finite floats.

use om_compare::json::to_json;
use om_compare::{AttrScore, ComparisonResult, PropertyInfo, ValueContribution};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON validity checker (validates, never
// builds a tree). Strict enough to reject unescaped quotes, raw control
// characters, bad escapes, trailing garbage and malformed numbers.
// ---------------------------------------------------------------------

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Checker<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got == b {
            Ok(())
        } else {
            Err(format!("expected {:?} at {}, got {:?}", b as char, self.pos, got as char))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(()),
                other => return Err(format!("bad object separator {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(()),
                other => return Err(format!("bad array separator {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => match self.bump()? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            let h = self.bump()?;
                            if !h.is_ascii_hexdigit() {
                                return Err(format!("bad \\u escape at {}", self.pos));
                            }
                        }
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                },
                b if b < 0x20 => {
                    return Err(format!("raw control byte {b:#04x} in string"));
                }
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err("number with empty fraction".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err("number with empty exponent".into());
            }
        }
        Ok(())
    }
}

/// Validate one complete JSON document.
fn assert_valid_json(doc: &str) {
    let mut checker = Checker::new(doc);
    if let Err(why) = checker.value() {
        panic!("invalid JSON ({why}): {doc}");
    }
    checker.skip_ws();
    assert!(
        checker.pos == checker.bytes.len(),
        "trailing garbage after document: {doc}"
    );
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Arbitrary Unicode strings, biased toward JSON-hostile characters.
fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(
        (0u32..6, 0u32..0x11_0000).prop_map(|(kind, cp)| match kind {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\u{1}',
            _ => char::from_u32(cp).unwrap_or('\u{FFFD}'),
        }),
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Floats including the non-finite values `num()` must clamp to null.
fn arb_float() -> impl Strategy<Value = f64> {
    (0u32..8, -1.0e9f64..1.0e9).prop_map(|(kind, x)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => x,
    })
}

fn arb_contribution() -> impl Strategy<Value = ValueContribution> {
    (
        (arb_name(), 0u32..64, 0u64..10_000, 0u64..10_000),
        (arb_float(), arb_float(), arb_float(), arb_float()),
        (0u32..3, arb_float(), 0u32..3, arb_float()),
    )
        .prop_map(
            |((label, value, n1, n2), (rcf1, rcf2, f, w), (k1, c1, k2, c2))| ValueContribution {
                value,
                label,
                n1,
                n2,
                x1: n1 / 2,
                x2: n2 / 2,
                cf1: if k1 == 0 { None } else { Some(c1) },
                cf2: if k2 == 0 { None } else { Some(c2) },
                rcf1,
                rcf2,
                f,
                w,
            },
        )
}

fn arb_score() -> impl Strategy<Value = AttrScore> {
    (
        arb_name(),
        0usize..32,
        arb_float(),
        arb_float(),
        collection::vec(arb_contribution(), 0..4),
        (0usize..8, 0usize..8),
    )
        .prop_map(|(attr_name, attr, score, normalized, contributions, (p, t))| AttrScore {
            attr,
            attr_name,
            score,
            normalized,
            contributions,
            property: PropertyInfo { p, t },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn to_json_is_always_valid_json(
        names in collection::vec(arb_name(), 4),
        ranked in collection::vec(arb_score(), 0..3),
        props in collection::vec(arb_score(), 0..2),
        cf1 in arb_float(),
        cf2 in arb_float(),
        swapped in 0u32..2,
    ) {
        let result = ComparisonResult {
            attr: 3,
            attr_name: names[0].clone(),
            value_1: 0,
            value_1_label: names[1].clone(),
            value_2: 1,
            value_2_label: names[2].clone(),
            swapped: swapped == 1,
            class: 0,
            class_label: names[3].clone(),
            cf1,
            cf2,
            n1: 123,
            n2: 456,
            ranked,
            property_attrs: props,
        };
        let doc = to_json(&result);
        assert_valid_json(&doc);
        prop_assert!(!doc.contains("NaN"));
        prop_assert!(!doc.contains("inf"));
    }
}

#[test]
fn checker_rejects_broken_documents() {
    for bad in [
        "{",
        "[1,",
        "{\"a\":}",
        "\"unterminated",
        "{\"a\":1}extra",
        "\"bad \u{1} control\"",
        "\"bad escape \\x\"",
        "01e",
        "1.",
        "--3",
    ] {
        let mut checker = Checker::new(bad);
        let complete = checker
            .value()
            .map(|()| checker.pos == checker.bytes.len());
        assert!(
            !matches!(complete, Ok(true)),
            "checker accepted invalid JSON: {bad:?}"
        );
    }
}

#[test]
fn checker_accepts_real_documents() {
    for good in [
        "null",
        "-1.5e-7",
        "[]",
        "{\"a\":[1,2,{\"b\":\"x\\u00e9\"}],\"c\":null}",
        " { \"s\" : \"\\\"quoted\\\\\" } ",
    ] {
        assert_valid_json(good);
    }
}
