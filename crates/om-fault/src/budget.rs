//! Cooperative deadlines: a budget checked cheaply inside hot loops.
//!
//! A [`Budget`] pairs an optional wall-clock deadline with a shared
//! cancellation flag. Loops call [`Budget::check`] at natural work
//! boundaries (per attribute, per drill level); extremely hot loops wrap
//! the budget in a [`Pacer`] so only one iteration in a power-of-two
//! stride pays the clock read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::FaultError;

/// A shared, clonable cancellation flag.
///
/// Cancelling is idempotent and observed by every [`Budget`] holding a
/// clone of the token via one relaxed atomic load per check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flip the flag; every holder observes it on its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A time budget plus cancellation, checked cooperatively.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Absolute deadline; `None` means no time limit.
    deadline: Option<Instant>,
    /// The configured limit (for error messages).
    limit: Duration,
    started: Instant,
    cancel: CancelToken,
}

impl Budget {
    /// A budget with no deadline and a fresh cancel token — `check`
    /// never fails on it.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            limit: Duration::MAX,
            started: Instant::now(),
            cancel: CancelToken::new(),
        }
    }

    /// A budget expiring `limit` from now.
    #[must_use]
    pub fn with_timeout(limit: Duration) -> Self {
        let started = Instant::now();
        Self {
            deadline: started.checked_add(limit),
            limit,
            started,
            cancel: CancelToken::new(),
        }
    }

    /// A budget with an optional timeout and an externally owned token
    /// (e.g. a server's shutdown flag).
    #[must_use]
    pub fn with_token(limit: Option<Duration>, cancel: CancelToken) -> Self {
        let started = Instant::now();
        Self {
            deadline: limit.and_then(|l| started.checked_add(l)),
            limit: limit.unwrap_or(Duration::MAX),
            started,
            cancel,
        }
    }

    /// Whether this budget can ever expire.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
    }

    /// A child budget expiring `limit` from now — or at this budget's
    /// own deadline, whichever comes first — sharing the parent's cancel
    /// token. This is how a batch propagates its deadline into per-item
    /// budgets: an item may narrow its share but can never outlive the
    /// batch.
    #[must_use]
    pub fn narrowed(&self, limit: Duration) -> Self {
        let started = Instant::now();
        let child_deadline = started.checked_add(limit);
        let deadline = match (self.deadline, child_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Self {
            deadline,
            limit: limit.min(self.limit),
            started,
            cancel: self.cancel.clone(),
        }
    }

    /// A clone of the cancellation token.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Time left before the deadline; `None` when unlimited.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The cooperative check: one relaxed atomic load, plus a clock read
    /// when a deadline is armed.
    ///
    /// # Errors
    /// [`FaultError::Cancelled`] if the token fired,
    /// [`FaultError::DeadlineExceeded`] past the deadline.
    #[inline]
    pub fn check(&self) -> Result<(), FaultError> {
        if self.cancel.is_cancelled() {
            return Err(FaultError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(FaultError::DeadlineExceeded {
                    limit: self.limit,
                    elapsed: now.duration_since(self.started),
                });
            }
        }
        Ok(())
    }
}

/// Strided budget checking for per-cell loops: only one call in
/// `stride` (rounded up to a power of two) pays the full check.
#[derive(Debug)]
pub struct Pacer<'a> {
    budget: &'a Budget,
    mask: u64,
    ticks: u64,
}

impl<'a> Pacer<'a> {
    /// A pacer checking roughly every `stride` ticks (`stride` is
    /// rounded up to the next power of two; 0 is treated as 1).
    #[must_use]
    pub fn new(budget: &'a Budget, stride: u64) -> Self {
        Self {
            budget,
            mask: stride.max(1).next_power_of_two() - 1,
            ticks: 0,
        }
    }

    /// Count one unit of work, checking the budget on stride boundaries.
    ///
    /// # Errors
    /// Propagates [`Budget::check`] failures.
    #[inline]
    pub fn tick(&mut self) -> Result<(), FaultError> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & self.mask == 0 {
            self.budget.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            b.check().unwrap();
        }
        assert!(!b.is_limited());
        assert!(b.remaining().is_none());
    }

    #[test]
    fn zero_timeout_fails_immediately() {
        let b = Budget::with_timeout(Duration::ZERO);
        let e = b.check().unwrap_err();
        assert!(matches!(e, FaultError::DeadlineExceeded { .. }));
        assert!(e.is_overload());
        assert!(e.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn generous_timeout_passes_then_reports_remaining() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        b.check().unwrap();
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_observed_across_clones() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        let clone = b.clone();
        clone.check().unwrap();
        token.cancel();
        assert!(matches!(b.check(), Err(FaultError::Cancelled)));
        assert!(matches!(clone.check(), Err(FaultError::Cancelled)));
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_actually_expires() {
        let b = Budget::with_timeout(Duration::from_millis(10));
        b.check().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        match b.check() {
            Err(FaultError::DeadlineExceeded { limit, elapsed }) => {
                assert_eq!(limit, Duration::from_millis(10));
                assert!(elapsed >= Duration::from_millis(10));
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn pacer_checks_on_stride_boundaries() {
        let b = Budget::with_timeout(Duration::ZERO);
        let mut pacer = Pacer::new(&b, 8);
        // Ticks 1..7 skip the check; tick 8 hits the boundary.
        for i in 1..8u64 {
            assert!(pacer.tick().is_ok(), "tick {i} should skip the check");
        }
        assert!(pacer.tick().is_err());
    }

    #[test]
    fn pacer_stride_zero_checks_every_tick() {
        let b = Budget::with_timeout(Duration::ZERO);
        let mut pacer = Pacer::new(&b, 0);
        assert!(pacer.tick().is_err());
    }
}
