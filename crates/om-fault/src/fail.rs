//! Named failpoints for deterministic chaos testing.
//!
//! Library code marks its failure seams with `fail::inject("name")?`.
//! Without the `failpoints` cargo feature the call is an inlined
//! `Ok(())` — nothing to configure, nothing to pay. With the feature on
//! (chaos test builds), tests arm actions by name:
//!
//! ```
//! use om_fault::fail::{self, Action};
//! use std::time::Duration;
//!
//! fail::configure("cube.decode", Action::Error("disk bit rot".into()));
//! # #[cfg(feature = "failpoints")]
//! # assert!(fail::inject("cube.decode").is_err());
//! fail::reset();
//! assert!(fail::inject("cube.decode").is_ok());
//! ```
//!
//! The registry is process-global (it must be visible across crate
//! boundaries), so chaos tests that arm overlapping names serialize
//! themselves. [`init_from_env`] arms failpoints from `OM_FAILPOINTS`
//! for whole-process chaos runs:
//! `OM_FAILPOINTS="cube.decode=error:rot;engine.compare=delay:50"`.

use std::time::Duration;

use crate::FaultError;

/// Every failpoint name the workspace declares, one per seam.
///
/// This is the contract between library code and the chaos suites:
/// `fail::inject` sites must use a name listed here, and tests may only
/// arm listed names (plus test-local `tests.*` names). `om-lint`'s
/// `failpoint-names` check enforces both directions, so a typo'd name
/// cannot silently arm nothing.
pub const SEAMS: &[&str] = &[
    "compare.attr",        // om-compare: per-attribute comparison work item
    "compare.drill-level", // om-compare: one drill-down level expansion
    "cube.decode",         // om-cube: cube snapshot frame decode
    "store.decode",        // om-cube: store manifest decode
    "ingest.append",       // om-ingest: WAL append fsync boundary
    "ingest.merge",        // om-ingest: delta-cube merge into the live cube
    "ingest.seal",         // om-ingest: segment seal + snapshot swap
    "engine.compare",      // om-engine: compare entry point
    "engine.drill",        // om-engine: drill-down entry point
    "engine.batch",        // om-engine: batch plan execution
    "engine.gi",           // om-engine: general-impressions scan
    "server.respond",      // om-server: response serialization boundary
    "exec.rank",           // om-exec: sharded rank worker body
    "exec.batch-group",    // om-exec: batch group dispatch
    "cluster.fetch",       // om-cluster: per-replica pinned store fetch
    "cluster.replica-retry", // om-cluster: per-attempt replica call in the retry ladder
    "cluster.ingest-replica", // om-cluster: per-replica ingest write fan-out
    "cluster.validate-prefix", // om-cluster: per-condition cluster count in prefix validation
    "server.internal-store", // om-server: shard-side /internal/store handler
    "explore.scan",        // om-explore: per-attribute candidate pool scan
    "explore.step",        // om-explore: end of one greedy selection step
    "engine.explore",      // om-engine: explore entry point
];

/// What an armed failpoint does when its seam is crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Sleep this long, then continue normally.
    Delay(Duration),
    /// Return [`FaultError::Injected`] with this message.
    Error(String),
    /// Panic with this message (exercises panic isolation).
    Panic(String),
}

/// Parse one `OM_FAILPOINTS` entry: `name=delay:<ms>`, `name=error:<msg>`
/// or `name=panic:<msg>`.
///
/// # Errors
/// Returns a description of the offending entry.
pub fn parse_entry(entry: &str) -> Result<(String, Action), String> {
    let (name, spec) = entry
        .split_once('=')
        .ok_or_else(|| format!("failpoint entry {entry:?} has no '='"))?;
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    let action = match kind {
        "delay" => Action::Delay(Duration::from_millis(
            arg.parse::<u64>()
                .map_err(|_| format!("failpoint {name:?}: bad delay {arg:?}"))?,
        )),
        "error" => Action::Error(if arg.is_empty() {
            format!("failpoint {name}")
        } else {
            arg.to_owned()
        }),
        "panic" => Action::Panic(if arg.is_empty() {
            format!("failpoint {name}")
        } else {
            arg.to_owned()
        }),
        other => return Err(format!("failpoint {name:?}: unknown action {other:?}")),
    };
    Ok((name.to_owned(), action))
}

#[cfg(feature = "failpoints")]
mod registry {
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    use super::Action;
    use crate::FaultError;

    static REGISTRY: Mutex<BTreeMap<String, Action>> = Mutex::new(BTreeMap::new());

    fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Action>> {
        // A panic injected *by* a failpoint can poison the lock; the map
        // itself is never left mid-mutation, so recover the guard.
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn configure(name: &str, action: Action) {
        lock().insert(name.to_owned(), action);
    }

    pub fn remove(name: &str) {
        lock().remove(name);
    }

    pub fn reset() {
        lock().clear();
    }

    pub fn armed() -> Vec<String> {
        lock().keys().cloned().collect()
    }

    pub fn inject(name: &str) -> Result<(), FaultError> {
        // Clone out so the delay/panic happens outside the lock.
        let action = lock().get(name).cloned();
        match action {
            None => Ok(()),
            Some(Action::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(Action::Error(msg)) => Err(FaultError::Injected(msg)),
            Some(Action::Panic(msg)) => panic!("failpoint {name}: {msg}"),
        }
    }
}

/// Arm an action for `name`. No-op without the `failpoints` feature.
pub fn configure(name: &str, action: Action) {
    #[cfg(feature = "failpoints")]
    registry::configure(name, action);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (name, action);
    }
}

/// Disarm `name`. No-op without the `failpoints` feature.
pub fn remove(name: &str) {
    #[cfg(feature = "failpoints")]
    registry::remove(name);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
    }
}

/// Disarm every failpoint. No-op without the `failpoints` feature.
pub fn reset() {
    #[cfg(feature = "failpoints")]
    registry::reset();
}

/// Names currently armed (always empty without the feature).
#[must_use]
pub fn armed() -> Vec<String> {
    #[cfg(feature = "failpoints")]
    {
        registry::armed()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        Vec::new()
    }
}

/// Arm failpoints from the `OM_FAILPOINTS` environment variable
/// (`name=action;name=action` entries). Malformed entries are reported
/// on stderr and skipped; without the `failpoints` feature nothing
/// happens at all.
pub fn init_from_env() {
    #[cfg(feature = "failpoints")]
    if let Ok(raw) = std::env::var("OM_FAILPOINTS") {
        for entry in raw.split(';').filter(|e| !e.trim().is_empty()) {
            match parse_entry(entry.trim()) {
                Ok((name, action)) => configure(&name, action),
                Err(why) => eprintln!("om-fault: ignoring {why}"),
            }
        }
    }
}

/// Cross a failure seam. Without the `failpoints` feature this is an
/// inlined `Ok(())`; with it, the armed [`Action`] (if any) fires.
///
/// # Errors
/// [`FaultError::Injected`] when an `Error` action is armed for `name`.
#[inline]
pub fn inject(name: &str) -> Result<(), FaultError> {
    #[cfg(feature = "failpoints")]
    {
        registry::inject(name)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_entries() {
        assert_eq!(
            parse_entry("a.b=delay:50").unwrap(),
            ("a.b".into(), Action::Delay(Duration::from_millis(50)))
        );
        assert_eq!(
            parse_entry("x=error:boom").unwrap(),
            ("x".into(), Action::Error("boom".into()))
        );
        assert_eq!(
            parse_entry("x=panic").unwrap(),
            ("x".into(), Action::Panic("failpoint x".into()))
        );
        assert!(parse_entry("no-equals").is_err());
        assert!(parse_entry("x=delay:abc").is_err());
        assert!(parse_entry("x=explode").is_err());
    }

    #[test]
    fn unarmed_inject_is_ok() {
        assert!(inject("tests.nothing-armed-here").is_ok());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_error_fires_and_reset_disarms() {
        let name = "tests.fail-error";
        configure(name, Action::Error("kaboom".into()));
        assert!(armed().contains(&name.to_owned()));
        match inject(name) {
            Err(FaultError::Injected(msg)) => assert_eq!(msg, "kaboom"),
            other => panic!("expected injected error, got {other:?}"),
        }
        remove(name);
        assert!(inject(name).is_ok());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_delay_sleeps() {
        let name = "tests.fail-delay";
        configure(name, Action::Delay(Duration::from_millis(30)));
        let t = std::time::Instant::now();
        inject(name).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(30));
        remove(name);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_panic_panics() {
        let name = "tests.fail-panic";
        configure(name, Action::Panic("isolated".into()));
        let caught = std::panic::catch_unwind(|| inject(name));
        assert!(caught.is_err());
        remove(name);
    }
}
