//! Robustness primitives shared by every layer of the Opportunity Map
//! system.
//!
//! The deployed Opportunity Map is an interactive diagnostic service:
//! analysts drill and compare continuously, and per-query cost is highly
//! skewed — one expensive comparison must never starve or crash the
//! service. This crate provides the two mechanisms the rest of the
//! workspace builds on:
//!
//! * [`Budget`] / [`CancelToken`] — a cooperative deadline threaded
//!   through the engine's hot loops. Checking is cheap (one atomic load,
//!   plus a clock read when a deadline is armed), and exceeding the
//!   budget surfaces as a typed [`FaultError::DeadlineExceeded`] instead
//!   of running forever.
//! * [`fail`] — named failpoints for deterministic chaos testing. With
//!   the `failpoints` feature off (the default) every hook compiles to an
//!   inlined `Ok(())`; with it on, tests inject delays, errors and panics
//!   at engine and persistence seams.

pub mod budget;
pub mod fail;

pub use budget::{Budget, CancelToken, Pacer};

use std::fmt;
use std::time::Duration;

/// A typed fault: the work was cut short, not wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The operation exceeded its time budget.
    DeadlineExceeded {
        /// The budget that was in force.
        limit: Duration,
        /// Time elapsed when the overrun was detected.
        elapsed: Duration,
    },
    /// The operation's [`CancelToken`] was cancelled.
    Cancelled,
    /// A failpoint injected this error (chaos testing only).
    Injected(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::DeadlineExceeded { limit, elapsed } => write!(
                f,
                "deadline exceeded: budget {}ms, elapsed {}ms",
                limit.as_millis(),
                elapsed.as_millis()
            ),
            FaultError::Cancelled => write!(f, "operation cancelled"),
            FaultError::Injected(why) => write!(f, "injected fault: {why}"),
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultError {
    /// Whether this fault means "retry later" (deadline/cancel) rather
    /// than "the request is poisoned" (injected error).
    #[must_use]
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            FaultError::DeadlineExceeded { .. } | FaultError::Cancelled
        )
    }
}
