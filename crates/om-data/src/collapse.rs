//! Rare-value collapsing for high-cardinality categorical attributes.
//!
//! Fig. 5's caption notes that "some attributes may have so many possible
//! values that the grid size may be inadequate to draw them all"; rule
//! cubes over such attributes are also wide and mostly noise. The usual
//! preparation step merges values below a support threshold into a single
//! `other` value, which this module implements as an in-place dataset
//! transformation (labels are preserved for surviving values).

use crate::dataset::{replace_attribute, Dataset};
use crate::error::{DataError, Result};
use crate::schema::{Attribute, Domain, ValueId};

/// Label used for the merged rare values.
pub const OTHER_LABEL: &str = "other";

/// Outcome of a collapse: the mapping from old to new value ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseInfo {
    /// `mapping[old_id] = new_id`.
    pub mapping: Vec<ValueId>,
    /// New id of the `other` bucket, if any value was collapsed.
    pub other_id: Option<ValueId>,
    /// Number of original values merged into `other`.
    pub n_collapsed: usize,
}

/// Merge all values of categorical attribute `idx` with fewer than
/// `min_count` records into one `other` value. No-op (identity mapping)
/// when nothing falls below the threshold.
///
/// # Errors
/// Fails if the attribute is the class, is continuous, or a label clash
/// with [`OTHER_LABEL`] would be ambiguous (an existing `other` value that
/// itself survives).
pub fn collapse_rare_values(
    ds: &mut Dataset,
    idx: usize,
    min_count: u64,
) -> Result<CollapseInfo> {
    if idx == ds.schema().class_index() {
        return Err(DataError::Invalid(
            "cannot collapse values of the class attribute".into(),
        ));
    }
    let counts = ds.value_counts(idx)?;
    let card = counts.len();
    let keep: Vec<bool> = counts.iter().map(|&c| c >= min_count).collect();
    let n_collapsed = keep.iter().filter(|&&k| !k).count();
    if n_collapsed == 0 {
        return Ok(CollapseInfo {
            mapping: (0..card as ValueId).collect(),
            other_id: None,
            n_collapsed: 0,
        });
    }

    let attr = ds.schema().attribute(idx);
    let old_labels = attr.domain().labels().to_vec();
    let name = attr.name().to_owned();
    if old_labels
        .iter()
        .zip(&keep)
        .any(|(l, &k)| k && l == OTHER_LABEL)
    {
        return Err(DataError::Invalid(format!(
            "attribute {name:?} already has a frequent {OTHER_LABEL:?} value; collapsing would be ambiguous"
        )));
    }

    // Build the new domain: surviving labels in original order, then `other`.
    let mut new_labels: Vec<String> = Vec::new();
    let mut mapping = vec![0 as ValueId; card];
    for (old, label) in old_labels.iter().enumerate() {
        if keep[old] {
            mapping[old] = new_labels.len() as ValueId;
            new_labels.push(label.clone());
        }
    }
    let other_id = new_labels.len() as ValueId;
    new_labels.push(OTHER_LABEL.to_owned());
    for (old, &k) in keep.iter().enumerate() {
        if !k {
            mapping[old] = other_id;
        }
    }

    let old_ids = ds.categorical(idx)?;
    let new_ids: Vec<ValueId> = old_ids.iter().map(|&v| mapping[v as usize]).collect();
    let new_attr = Attribute::categorical(name, Domain::from_labels(new_labels));
    replace_attribute(ds, idx, new_attr, crate::column::Column::Categorical(new_ids))?;
    Ok(CollapseInfo {
        mapping,
        other_id: Some(other_id),
        n_collapsed,
    })
}

/// Collapse rare values of every non-class categorical attribute.
///
/// # Errors
/// Propagates per-attribute failures.
pub fn collapse_all(ds: &mut Dataset, min_count: u64) -> Result<Vec<(usize, CollapseInfo)>> {
    let attrs: Vec<usize> = (0..ds.schema().n_attributes())
        .filter(|&i| {
            i != ds.schema().class_index() && ds.schema().attribute(i).is_categorical()
        })
        .collect();
    let mut out = Vec::with_capacity(attrs.len());
    for idx in attrs {
        let info = collapse_rare_values(ds, idx, min_count)?;
        out.push((idx, info));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Cell, DatasetBuilder};

    fn tail_heavy() -> Dataset {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for _ in 0..100 {
            b.push_row(&[Cell::Str("big1"), Cell::Str("y")]).unwrap();
        }
        for _ in 0..50 {
            b.push_row(&[Cell::Str("big2"), Cell::Str("n")]).unwrap();
        }
        for rare in ["r1", "r2", "r3"] {
            for _ in 0..2 {
                b.push_row(&[Cell::Str(rare), Cell::Str("y")]).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn rare_values_merged_into_other() {
        let mut ds = tail_heavy();
        let info = collapse_rare_values(&mut ds, 0, 10).unwrap();
        assert_eq!(info.n_collapsed, 3);
        let attr = ds.schema().attribute(0);
        assert_eq!(attr.cardinality(), 3);
        assert_eq!(attr.domain().get(OTHER_LABEL), info.other_id);
        // Counts preserved: 100 + 50 + 6.
        let counts = ds.value_counts(0).unwrap();
        assert_eq!(counts, vec![100, 50, 6]);
        // Mapping covers all old values.
        assert_eq!(info.mapping.len(), 5);
    }

    #[test]
    fn noop_when_all_frequent() {
        let mut ds = tail_heavy();
        let before = ds.clone();
        let info = collapse_rare_values(&mut ds, 0, 1).unwrap();
        assert_eq!(info.n_collapsed, 0);
        assert!(info.other_id.is_none());
        assert_eq!(ds, before);
    }

    #[test]
    fn class_attribute_rejected() {
        let mut ds = tail_heavy();
        let class_idx = ds.schema().class_index();
        assert!(collapse_rare_values(&mut ds, class_idx, 10).is_err());
    }

    #[test]
    fn surviving_other_label_rejected() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for _ in 0..50 {
            b.push_row(&[Cell::Str("other"), Cell::Str("y")]).unwrap();
        }
        b.push_row(&[Cell::Str("rare"), Cell::Str("y")]).unwrap();
        let mut ds = b.finish().unwrap();
        assert!(collapse_rare_values(&mut ds, 0, 10).is_err());
    }

    #[test]
    fn collapse_all_sweeps_attributes() {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .class("C");
        for i in 0..60 {
            let a = if i < 55 { "a_common" } else { "a_rare" };
            let bb = if i % 2 == 0 { "b0" } else { "b1" };
            b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str("y")]).unwrap();
        }
        let mut ds = b.finish().unwrap();
        let infos = collapse_all(&mut ds, 10).unwrap();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].1.n_collapsed, 1); // a_rare merged
        assert_eq!(infos[1].1.n_collapsed, 0); // B untouched
        let total: u64 = ds.value_counts(0).unwrap().iter().sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn all_rare_collapses_to_single_other() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for v in ["v1", "v2", "v3"] {
            b.push_row(&[Cell::Str(v), Cell::Str("y")]).unwrap();
        }
        let mut ds = b.finish().unwrap();
        let info = collapse_rare_values(&mut ds, 0, 10).unwrap();
        assert_eq!(info.n_collapsed, 3);
        assert_eq!(ds.schema().attribute(0).cardinality(), 1);
        assert_eq!(ds.value_counts(0).unwrap(), vec![3]);
    }
}
