//! Columnar categorical dataset substrate for the Opportunity Map
//! reproduction.
//!
//! The paper's data sets "are like any classification data set" (Section I):
//! a number of categorical or continuous attributes plus one categorical
//! class attribute (e.g. the final disposition of a cellular call). This
//! crate provides:
//!
//! * [`schema`] — attribute metadata and per-attribute value dictionaries
//!   ([`Domain`]) mapping string labels to dense `u32` ids;
//! * [`mod@column`] / [`dataset`] — cache-friendly columnar storage;
//! * [`builder`] — row-at-a-time construction with automatic interning;
//! * [`csv`] — CSV reading (with type inference) and writing;
//! * [`sample`] — the *unbalanced sampling* the paper applies before mining
//!   (Section I: "Unbalanced sampling is used before mining"), plus the
//!   record-duplication scale-up used for Fig. 11;
//! * [`persist`] — compact binary persistence built on `bytes`.

pub mod builder;
pub mod collapse;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod persist;
pub mod sample;
pub mod schema;
pub mod summary;

pub use builder::{Cell, DatasetBuilder};
pub use collapse::{collapse_all, collapse_rare_values, CollapseInfo};
pub use column::Column;
pub use dataset::Dataset;
pub use error::{DataError, Result};
pub use schema::{AttrKind, Attribute, Domain, Schema, ValueId};
