//! Sampling utilities.
//!
//! Section I of the paper: the classes are "highly skewed … Unbalanced
//! sampling is used before mining, which has been shown to work quite
//! well." [`unbalanced_sample`] implements that: the majority class is
//! down-sampled so that no class outnumbers the rarest non-empty class by
//! more than a configurable ratio. [`duplicate`] implements the
//! scale-up-by-duplication used for the Fig. 11 experiment ("To increase
//! the number of data records, we simply duplicate the data set").

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::error::{DataError, Result};

/// Uniform random sample of `n` rows without replacement.
///
/// # Errors
/// Fails if `n` exceeds the number of rows.
pub fn random_sample<R: Rng>(ds: &Dataset, n: usize, rng: &mut R) -> Result<Dataset> {
    if n > ds.n_rows() {
        return Err(DataError::Invalid(format!(
            "cannot sample {n} rows from {}",
            ds.n_rows()
        )));
    }
    let mut rows: Vec<usize> = (0..ds.n_rows()).collect();
    rows.shuffle(rng);
    rows.truncate(n);
    rows.sort_unstable();
    ds.take_rows(&rows)
}

/// Down-sample majority classes so that no class has more than
/// `max_ratio` times the records of the smallest non-empty class.
///
/// Rows of classes already within the ratio are kept untouched; rows of
/// oversized classes are sampled uniformly without replacement. Original
/// row order is preserved among kept rows.
///
/// # Errors
/// Fails if the dataset is empty or `max_ratio == 0`.
pub fn unbalanced_sample<R: Rng>(
    ds: &Dataset,
    max_ratio: u64,
    rng: &mut R,
) -> Result<Dataset> {
    if ds.is_empty() {
        return Err(DataError::Invalid("cannot rebalance an empty dataset".into()));
    }
    if max_ratio == 0 {
        return Err(DataError::Invalid("max_ratio must be >= 1".into()));
    }
    let counts = ds.class_counts();
    let min_nonzero = counts
        .iter()
        .copied()
        .filter(|&c| c > 0)
        .min()
        .expect("non-empty dataset has a non-empty class");
    let cap = min_nonzero.saturating_mul(max_ratio);

    // Bucket row indices by class, then down-sample oversized buckets.
    let n_classes = counts.len();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (r, &c) in ds.class_values().iter().enumerate() {
        buckets[c as usize].push(r);
    }
    let mut keep: Vec<usize> = Vec::new();
    for bucket in &mut buckets {
        if bucket.len() as u64 > cap {
            bucket.shuffle(rng);
            bucket.truncate(cap as usize);
        }
        keep.extend_from_slice(bucket);
    }
    keep.sort_unstable();
    ds.take_rows(&keep)
}

/// Per-class stratified sample: keep at most `per_class` rows of each class.
///
/// # Errors
/// Fails if the dataset is empty.
pub fn stratified_sample<R: Rng>(
    ds: &Dataset,
    per_class: usize,
    rng: &mut R,
) -> Result<Dataset> {
    if ds.is_empty() {
        return Err(DataError::Invalid("cannot sample an empty dataset".into()));
    }
    let n_classes = ds.schema().n_classes();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (r, &c) in ds.class_values().iter().enumerate() {
        buckets[c as usize].push(r);
    }
    let mut keep: Vec<usize> = Vec::new();
    for bucket in &mut buckets {
        if bucket.len() > per_class {
            bucket.shuffle(rng);
            bucket.truncate(per_class);
        }
        keep.extend_from_slice(bucket);
    }
    keep.sort_unstable();
    ds.take_rows(&keep)
}

/// Duplicate the dataset `factor` times (Fig. 11's scale-up method).
///
/// `factor = 1` returns a copy.
///
/// # Errors
/// Fails if `factor == 0`.
pub fn duplicate(ds: &Dataset, factor: usize) -> Result<Dataset> {
    if factor == 0 {
        return Err(DataError::Invalid("duplication factor must be >= 1".into()));
    }
    let mut out = ds.clone();
    for _ in 1..factor {
        out.append(ds)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Cell, DatasetBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed(n_major: usize, n_minor: usize) -> Dataset {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        for i in 0..n_major {
            b.push_row(&[Cell::Str(if i % 2 == 0 { "x" } else { "y" }), Cell::Str("ok")])
                .unwrap();
        }
        for _ in 0..n_minor {
            b.push_row(&[Cell::Str("x"), Cell::Str("drop")]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn unbalanced_caps_majority() {
        let ds = skewed(1000, 10);
        let mut rng = StdRng::seed_from_u64(7);
        let out = unbalanced_sample(&ds, 5, &mut rng).unwrap();
        let counts = out.class_counts();
        // Minority kept fully, majority capped at 5x minority.
        assert_eq!(counts[1], 10);
        assert_eq!(counts[0], 50);
    }

    #[test]
    fn unbalanced_noop_when_within_ratio() {
        let ds = skewed(20, 10);
        let mut rng = StdRng::seed_from_u64(7);
        let out = unbalanced_sample(&ds, 5, &mut rng).unwrap();
        assert_eq!(out.n_rows(), 30);
    }

    #[test]
    fn unbalanced_rejects_bad_args() {
        let ds = skewed(10, 5);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(unbalanced_sample(&ds, 0, &mut rng).is_err());
        let empty = skewed(0, 0);
        assert!(unbalanced_sample(&empty, 2, &mut rng).is_err());
    }

    #[test]
    fn random_sample_size_and_determinism() {
        let ds = skewed(100, 20);
        let a = random_sample(&ds, 30, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = random_sample(&ds, 30, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a.n_rows(), 30);
        assert_eq!(a, b, "same seed must give the same sample");
        assert!(random_sample(&ds, 1000, &mut StdRng::seed_from_u64(1)).is_err());
    }

    #[test]
    fn stratified_caps_each_class() {
        let ds = skewed(100, 20);
        let out = stratified_sample(&ds, 15, &mut StdRng::seed_from_u64(3)).unwrap();
        let counts = out.class_counts();
        assert_eq!(counts, vec![15, 15]);
    }

    #[test]
    fn duplicate_scales_counts_linearly() {
        let ds = skewed(10, 5);
        let out = duplicate(&ds, 4).unwrap();
        assert_eq!(out.n_rows(), 60);
        assert_eq!(out.class_counts(), vec![40, 20]);
        assert!(duplicate(&ds, 0).is_err());
        assert_eq!(duplicate(&ds, 1).unwrap(), ds);
    }
}
