//! Minimal CSV reading and writing with type inference.
//!
//! The paper's call logs arrive as flat classification tables; this module
//! lets the examples and tools load such files without external crates.
//! The dialect is deliberately simple: configurable delimiter, optional
//! double-quote quoting with `""` escapes, one header row.

use std::io::{BufRead, Write};

use crate::builder::{Cell, DatasetBuilder};
use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::AttrKind;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Name of the class column (must exist in the header).
    pub class_column: String,
    /// Columns forced to be categorical even if they parse as numbers.
    pub force_categorical: Vec<String>,
}

impl CsvOptions {
    /// Options for a class column named `class_column`.
    pub fn new(class_column: impl Into<String>) -> Self {
        Self {
            delimiter: ',',
            class_column: class_column.into(),
            force_categorical: Vec::new(),
        }
    }
}

/// Split one CSV record honoring double-quote quoting. Public because
/// live ingestion (`om-ingest`) must split uploaded rows with the exact
/// semantics of this reader — bin labels like `"[1.000, 4.000)"` contain
/// the delimiter and arrive quoted.
pub fn split_record(line: &str, delim: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    fields.push(field);
    fields
}

/// Read a CSV file into a [`Dataset`].
///
/// Column types are inferred: a column is continuous when *every* value
/// parses as `f64` (and it is not listed in
/// [`CsvOptions::force_categorical`]); otherwise categorical. The class
/// column is always categorical.
///
/// # Errors
/// Fails on I/O errors, a missing class column, or ragged rows.
pub fn read_csv<R: BufRead>(reader: R, options: &CsvOptions) -> Result<Dataset> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(DataError::Csv {
                line: 0,
                message: "empty input: no header row".into(),
            })
        }
    };
    let names = split_record(&header, options.delimiter);
    let class_pos = names
        .iter()
        .position(|n| *n == options.class_column)
        .ok_or_else(|| DataError::UnknownAttribute(options.class_column.clone()))?;

    // First pass: buffer rows and decide column kinds.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, options.delimiter);
        if fields.len() != names.len() {
            return Err(DataError::Csv {
                line: i + 2,
                message: format!(
                    "expected {} fields, found {}",
                    names.len(),
                    fields.len()
                ),
            });
        }
        rows.push(fields);
    }

    let kinds: Vec<AttrKind> = names
        .iter()
        .enumerate()
        .map(|(j, name)| {
            if j == class_pos
                || options.force_categorical.iter().any(|f| f == name)
                || rows.is_empty()
            {
                return AttrKind::Categorical;
            }
            let all_numeric = rows.iter().all(|r| r[j].parse::<f64>().is_ok());
            if all_numeric {
                AttrKind::Continuous
            } else {
                AttrKind::Categorical
            }
        })
        .collect();

    let mut builder = DatasetBuilder::new();
    for (j, name) in names.iter().enumerate() {
        builder = if j == class_pos {
            builder.class(name)
        } else if kinds[j] == AttrKind::Continuous {
            builder.continuous(name)
        } else {
            builder.categorical(name)
        };
    }
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<Cell<'_>> = row
            .iter()
            .enumerate()
            .map(|(j, v)| match kinds[j] {
                AttrKind::Continuous => Cell::Num(v.parse::<f64>().unwrap_or(f64::NAN)),
                AttrKind::Categorical => Cell::Str(v),
            })
            .collect();
        builder.push_row(&cells).map_err(|e| DataError::Csv {
            line: i + 2,
            message: e.to_string(),
        })?;
    }
    builder.finish()
}

/// Quote a field if it contains the delimiter, quotes, or newlines.
fn quote(field: &str, delim: char) -> String {
    if field.contains(delim) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write a dataset as CSV (header + one row per record).
///
/// Continuous values are written with full precision; categorical values by
/// label.
///
/// # Errors
/// Fails on I/O errors.
pub fn write_csv<W: Write>(ds: &Dataset, writer: &mut W, delimiter: char) -> Result<()> {
    let names: Vec<String> = ds
        .schema()
        .attributes()
        .iter()
        .map(|a| quote(a.name(), delimiter))
        .collect();
    writeln!(writer, "{}", names.join(&delimiter.to_string()))?;
    for r in 0..ds.n_rows() {
        let mut fields = Vec::with_capacity(names.len());
        for (j, col) in ds.columns().iter().enumerate() {
            match col {
                crate::column::Column::Categorical(ids) => {
                    let label = ds
                        .schema()
                        .attribute(j)
                        .domain()
                        .label(ids[r])
                        .unwrap_or("");
                    fields.push(quote(label, delimiter));
                }
                crate::column::Column::Continuous(vals) => {
                    fields.push(format!("{}", vals[r]));
                }
            }
        }
        writeln!(writer, "{}", fields.join(&delimiter.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
Phone,Signal,Time,Outcome
ph1,-70,morning,ok
ph2,-85.5,evening,drop
ph1,-60,morning,ok
";

    #[test]
    fn reads_with_inference() {
        let ds = read_csv(
            BufReader::new(SAMPLE.as_bytes()),
            &CsvOptions::new("Outcome"),
        )
        .unwrap();
        assert_eq!(ds.n_rows(), 3);
        let s = ds.schema();
        assert_eq!(s.class().name(), "Outcome");
        assert!(s.attribute(0).is_categorical());
        assert!(!s.attribute(1).is_categorical()); // Signal inferred continuous
        assert!(s.attribute(2).is_categorical());
        assert_eq!(ds.class_counts(), vec![2, 1]);
    }

    #[test]
    fn force_categorical_overrides_inference() {
        let mut opts = CsvOptions::new("Outcome");
        opts.force_categorical.push("Signal".into());
        let ds = read_csv(BufReader::new(SAMPLE.as_bytes()), &opts).unwrap();
        assert!(ds.schema().attribute(1).is_categorical());
        assert_eq!(ds.schema().attribute(1).cardinality(), 3);
    }

    #[test]
    fn quoted_fields_round_trip() {
        let src = "A,C\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,x\n";
        let ds = read_csv(BufReader::new(src.as_bytes()), &CsvOptions::new("C")).unwrap();
        assert_eq!(
            ds.schema().attribute(0).domain().label(0),
            Some("hello, world")
        );
        assert_eq!(ds.schema().class().domain().label(0), Some("say \"hi\""));

        let mut out = Vec::new();
        write_csv(&ds, &mut out, ',').unwrap();
        let ds2 = read_csv(
            BufReader::new(out.as_slice()),
            &CsvOptions::new("C"),
        )
        .unwrap();
        assert_eq!(ds2.n_rows(), ds.n_rows());
        assert_eq!(
            ds2.schema().attribute(0).domain().label(0),
            Some("hello, world")
        );
    }

    #[test]
    fn full_round_trip_preserves_counts() {
        let ds = read_csv(
            BufReader::new(SAMPLE.as_bytes()),
            &CsvOptions::new("Outcome"),
        )
        .unwrap();
        let mut out = Vec::new();
        write_csv(&ds, &mut out, ',').unwrap();
        let ds2 = read_csv(
            BufReader::new(out.as_slice()),
            &CsvOptions::new("Outcome"),
        )
        .unwrap();
        assert_eq!(ds2.n_rows(), 3);
        assert_eq!(ds2.class_counts(), ds.class_counts());
        assert_eq!(
            ds2.column(1).as_continuous().unwrap(),
            ds.column(1).as_continuous().unwrap()
        );
    }

    #[test]
    fn missing_class_column_fails() {
        let r = read_csv(
            BufReader::new(SAMPLE.as_bytes()),
            &CsvOptions::new("Nope"),
        );
        assert!(r.is_err());
    }

    #[test]
    fn ragged_row_fails_with_line_number() {
        let src = "A,C\nx,y\nonly-one\n";
        let err = read_csv(BufReader::new(src.as_bytes()), &CsvOptions::new("C"))
            .unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn empty_input_fails() {
        let r = read_csv(BufReader::new("".as_bytes()), &CsvOptions::new("C"));
        assert!(r.is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let src = "A,C\nx,y\n\nz,w\n";
        let ds = read_csv(BufReader::new(src.as_bytes()), &CsvOptions::new("C")).unwrap();
        assert_eq!(ds.n_rows(), 2);
    }
}
