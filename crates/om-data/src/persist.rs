//! Compact binary persistence for datasets, built on the `bytes` crate.
//!
//! The Opportunity Map system generates rule cubes "off-line, e.g., in the
//! evening" (Section V-C) and analysts work on the prepared artifacts; this
//! module provides the serialization layer for that workflow. The format is
//! a little-endian tagged layout with a magic header and version byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::{AttrKind, Attribute, Domain, Schema};

const MAGIC: &[u8; 4] = b"OMDS";
const VERSION: u8 = 1;

/// Write a length-prefixed UTF-8 string.
pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub(crate) fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DataError::Decode("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec())
        .map_err(|e| DataError::Decode(format!("invalid UTF-8: {e}")))
}

fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32_le(schema.n_attributes() as u32);
    buf.put_u32_le(schema.class_index() as u32);
    for attr in schema.attributes() {
        put_str(buf, attr.name());
        buf.put_u8(match attr.kind() {
            AttrKind::Categorical => 0,
            AttrKind::Continuous => 1,
        });
        buf.put_u32_le(attr.domain().len() as u32);
        for (_, label) in attr.domain().iter() {
            put_str(buf, label);
        }
    }
}

fn get_schema(buf: &mut Bytes) -> Result<Schema> {
    if buf.remaining() < 8 {
        return Err(DataError::Decode("truncated schema header".into()));
    }
    let n_attrs = buf.get_u32_le() as usize;
    let class_idx = buf.get_u32_le() as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let name = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(DataError::Decode("truncated attribute kind".into()));
        }
        let kind = buf.get_u8();
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated domain size".into()));
        }
        let n_labels = buf.get_u32_le() as usize;
        let mut domain = Domain::new();
        for _ in 0..n_labels {
            let label = get_str(buf)?;
            domain.intern(&label);
        }
        let attr = match kind {
            0 => Attribute::categorical(name, domain),
            1 => Attribute::continuous(name),
            k => return Err(DataError::Decode(format!("unknown attribute kind {k}"))),
        };
        attrs.push(attr);
    }
    Schema::new(attrs, class_idx)
        .map_err(|e| DataError::Decode(format!("invalid schema: {e}")))
}

/// Serialize a dataset to bytes.
pub fn encode_dataset(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + ds.n_rows() * ds.schema().n_attributes() * 4);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_schema(&mut buf, ds.schema());
    buf.put_u64_le(ds.n_rows() as u64);
    for col in ds.columns() {
        match col {
            Column::Categorical(ids) => {
                buf.put_u8(0);
                for &v in ids {
                    buf.put_u32_le(v);
                }
            }
            Column::Continuous(vals) => {
                buf.put_u8(1);
                for &v in vals {
                    buf.put_f64_le(v);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize a dataset previously produced by [`encode_dataset`].
///
/// # Errors
/// Fails on a bad magic/version or any truncation or inconsistency.
pub fn decode_dataset(mut buf: Bytes) -> Result<Dataset> {
    if buf.remaining() < 5 {
        return Err(DataError::Decode("payload too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataError::Decode("bad magic (not an OMDS payload)".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DataError::Decode(format!("unsupported version {version}")));
    }
    let schema = get_schema(&mut buf)?;
    if buf.remaining() < 8 {
        return Err(DataError::Decode("truncated row count".into()));
    }
    let n_rows = buf.get_u64_le() as usize;
    let mut columns = Vec::with_capacity(schema.n_attributes());
    for _ in 0..schema.n_attributes() {
        if !buf.has_remaining() {
            return Err(DataError::Decode("truncated column tag".into()));
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < n_rows * 4 {
                    return Err(DataError::Decode("truncated categorical column".into()));
                }
                let mut ids = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    ids.push(buf.get_u32_le());
                }
                columns.push(Column::Categorical(ids));
            }
            1 => {
                if buf.remaining() < n_rows * 8 {
                    return Err(DataError::Decode("truncated continuous column".into()));
                }
                let mut vals = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    vals.push(buf.get_f64_le());
                }
                columns.push(Column::Continuous(vals));
            }
            t => return Err(DataError::Decode(format!("unknown column tag {t}"))),
        }
    }
    Dataset::from_columns(schema, columns)
        .map_err(|e| DataError::Decode(format!("inconsistent payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Cell, DatasetBuilder};

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("Phone")
            .continuous("Signal")
            .class("Outcome");
        for (p, s, o) in [
            ("ph1", -70.0, "ok"),
            ("ph2", -90.5, "drop"),
            ("ph1", -60.0, "ok"),
        ] {
            b.push_row(&[Cell::Str(p), Cell::Num(s), Cell::Str(o)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_identity() {
        let ds = sample();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = DatasetBuilder::new().categorical("A").class("C").finish().unwrap();
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        assert_eq!(back.n_rows(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_dataset(Bytes::from_static(b"XXXX\x01rest")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let err = decode_dataset(Bytes::from_static(b"OMDS\x63")).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let full = encode_dataset(&sample());
        // Chop the payload at every length and ensure we never panic and
        // (except for the full length) always error.
        for cut in 0..full.len() {
            let r = decode_dataset(full.slice(0..cut));
            assert!(r.is_err(), "truncation at {cut} silently accepted");
        }
        assert!(decode_dataset(full).is_ok());
    }

    #[test]
    fn special_floats_survive() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        b.push_row(&[Cell::Num(f64::INFINITY), Cell::Str("a")]).unwrap();
        b.push_row(&[Cell::Num(-0.0), Cell::Str("b")]).unwrap();
        let ds = b.finish().unwrap();
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        let xs = back.column(0).as_continuous().unwrap();
        assert_eq!(xs[0], f64::INFINITY);
        assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
    }
}
