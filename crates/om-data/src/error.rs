//! Error type shared across the data substrate.

use std::fmt;

/// Errors produced while building, loading or transforming datasets.
#[derive(Debug)]
pub enum DataError {
    /// A row or operation referenced an attribute that does not exist.
    UnknownAttribute(String),
    /// A value id was out of range for an attribute's domain.
    UnknownValue { attribute: String, value: String },
    /// A row had the wrong number of cells or a cell of the wrong kind.
    SchemaMismatch(String),
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Corrupt or truncated binary persistence payload.
    Decode(String),
    /// A persistence frame's CRC32 did not match its payload.
    ChecksumMismatch {
        /// The checksum recorded in the frame.
        expected: u32,
        /// The checksum computed over the payload actually read.
        found: u32,
    },
    /// An operation's preconditions were violated (empty dataset, bad
    /// parameter, ...).
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            DataError::UnknownValue { attribute, value } => {
                write!(f, "unknown value {value:?} for attribute {attribute}")
            }
            DataError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Decode(msg) => write!(f, "decode error: {msg}"),
            DataError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: frame says {expected:#010x}, payload hashes to {found:#010x}"
            ),
            DataError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DataError::UnknownAttribute("Foo".into());
        assert_eq!(e.to_string(), "unknown attribute: Foo");
        let e = DataError::Csv { line: 3, message: "bad".into() };
        assert!(e.to_string().contains("line 3"));
        let e = DataError::UnknownValue { attribute: "A".into(), value: "x".into() };
        assert!(e.to_string().contains("\"x\""));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
