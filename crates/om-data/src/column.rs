//! Columnar value storage.

use crate::schema::ValueId;

/// One column of a dataset: either interned categorical ids or raw `f64`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Categorical(Vec<ValueId>),
    Continuous(Vec<f64>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical(v) => v.len(),
            Column::Continuous(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The categorical ids, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<&[ValueId]> {
        match self {
            Column::Categorical(v) => Some(v),
            Column::Continuous(_) => None,
        }
    }

    /// The continuous values, if this is a continuous column.
    pub fn as_continuous(&self) -> Option<&[f64]> {
        match self {
            Column::Continuous(v) => Some(v),
            Column::Categorical(_) => None,
        }
    }

    /// A new column of the same kind containing only the given rows.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn take_rows(&self, rows: &[usize]) -> Column {
        match self {
            Column::Categorical(v) => {
                Column::Categorical(rows.iter().map(|&r| v[r]).collect())
            }
            Column::Continuous(v) => {
                Column::Continuous(rows.iter().map(|&r| v[r]).collect())
            }
        }
    }

    /// Append all rows of `other` (must be the same kind).
    ///
    /// # Panics
    /// Panics on kind mismatch.
    pub fn extend_from(&mut self, other: &Column) {
        match (self, other) {
            (Column::Categorical(a), Column::Categorical(b)) => a.extend_from_slice(b),
            (Column::Continuous(a), Column::Continuous(b)) => a.extend_from_slice(b),
            _ => panic!("column kind mismatch in extend_from"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Column::Categorical(vec![0, 1, 2]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.as_categorical(), Some(&[0u32, 1, 2][..]));
        assert!(c.as_continuous().is_none());

        let c = Column::Continuous(vec![1.5]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.as_continuous(), Some(&[1.5][..]));
        assert!(c.as_categorical().is_none());
    }

    #[test]
    fn take_rows_selects_and_reorders() {
        let c = Column::Categorical(vec![10, 20, 30, 40]);
        let t = c.take_rows(&[3, 1, 1]);
        assert_eq!(t.as_categorical(), Some(&[40u32, 20, 20][..]));
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Column::Continuous(vec![1.0]);
        a.extend_from(&Column::Continuous(vec![2.0, 3.0]));
        assert_eq!(a.as_continuous(), Some(&[1.0, 2.0, 3.0][..]));
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn extend_from_rejects_mixed_kinds() {
        let mut a = Column::Continuous(vec![1.0]);
        a.extend_from(&Column::Categorical(vec![1]));
    }

    #[test]
    fn empty_column() {
        let c = Column::Categorical(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.take_rows(&[]).len(), 0);
    }
}
