//! Attribute metadata: kinds, value dictionaries, and the dataset schema.
//!
//! All categorical values are interned into per-attribute [`Domain`]
//! dictionaries so that columns store dense `u32` ids. Rule cubes (in
//! `om-cube`) index their count tensors directly with these ids, which is
//! what makes the paper's min-sup = 0 "no holes" representation cheap.

use std::collections::HashMap;

use crate::error::{DataError, Result};

/// Dense id of a categorical value within its attribute's [`Domain`].
pub type ValueId = u32;

/// A per-attribute dictionary mapping value labels to dense ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Domain {
    labels: Vec<String>,
    index: HashMap<String, ValueId>,
}

impl Domain {
    /// An empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// A domain pre-populated with `labels`, ids assigned in order.
    ///
    /// # Panics
    /// Panics if `labels` contains duplicates.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut d = Self::new();
        for l in labels {
            let l = l.into();
            assert!(!d.index.contains_key(&l), "duplicate label {l:?} in domain");
            d.intern(&l);
        }
        d
    }

    /// Id for `label`, interning it if new.
    pub fn intern(&mut self, label: &str) -> ValueId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = self.labels.len() as ValueId;
        self.labels.push(label.to_owned());
        self.index.insert(label.to_owned(), id);
        id
    }

    /// Id for `label` if present.
    pub fn get(&self, label: &str) -> Option<ValueId> {
        self.index.get(label).copied()
    }

    /// Label for `id` if in range.
    pub fn label(&self, id: ValueId) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the domain has no values.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (i as ValueId, l.as_str()))
    }

    /// All labels in id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Whether an attribute holds categorical ids or raw continuous values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    Categorical,
    Continuous,
}

/// One attribute of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
    domain: Domain,
}

impl Attribute {
    /// A categorical attribute with an (initially empty or given) domain.
    pub fn categorical(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            kind: AttrKind::Categorical,
            domain,
        }
    }

    /// A continuous attribute (empty domain; discretization assigns one).
    pub fn continuous(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: AttrKind::Continuous,
            domain: Domain::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    pub fn is_categorical(&self) -> bool {
        self.kind == AttrKind::Categorical
    }

    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    pub(crate) fn domain_mut(&mut self) -> &mut Domain {
        &mut self.domain
    }

    /// Number of distinct values (0 for continuous attributes).
    pub fn cardinality(&self) -> usize {
        self.domain.len()
    }
}

/// Dataset schema: ordered attributes plus the index of the class attribute.
///
/// The class attribute is the paper's target attribute ("one attribute
/// indicates the final disposition of the call"); it must be categorical.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    class_idx: usize,
}

impl Schema {
    /// Build a schema; `class_idx` designates the class attribute.
    ///
    /// # Errors
    /// Fails if `class_idx` is out of range, the class attribute is not
    /// categorical, or attribute names are not unique.
    pub fn new(attributes: Vec<Attribute>, class_idx: usize) -> Result<Self> {
        if class_idx >= attributes.len() {
            return Err(DataError::Invalid(format!(
                "class index {class_idx} out of range for {} attributes",
                attributes.len()
            )));
        }
        if !attributes[class_idx].is_categorical() {
            return Err(DataError::Invalid(format!(
                "class attribute {:?} must be categorical",
                attributes[class_idx].name()
            )));
        }
        let mut seen = HashMap::new();
        for (i, a) in attributes.iter().enumerate() {
            if let Some(prev) = seen.insert(a.name().to_owned(), i) {
                return Err(DataError::Invalid(format!(
                    "duplicate attribute name {:?} (positions {prev} and {i})",
                    a.name()
                )));
            }
        }
        Ok(Self {
            attributes,
            class_idx,
        })
    }

    /// All attributes, including the class.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes, including the class.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Index of the class attribute.
    pub fn class_index(&self) -> usize {
        self.class_idx
    }

    /// The class attribute.
    pub fn class(&self) -> &Attribute {
        &self.attributes[self.class_idx]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class().cardinality()
    }

    /// Attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    pub(crate) fn attribute_mut(&mut self, idx: usize) -> &mut Attribute {
        &mut self.attributes[idx]
    }

    /// Index of the attribute named `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Indices of all non-class attributes, in schema order.
    pub fn non_class_indices(&self) -> Vec<usize> {
        (0..self.attributes.len())
            .filter(|&i| i != self.class_idx)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::categorical("PhoneModel", Domain::from_labels(["ph1", "ph2"])),
                Attribute::continuous("SignalStrength"),
                Attribute::categorical("Class", Domain::from_labels(["ok", "drop"])),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn domain_interning_is_stable() {
        let mut d = Domain::new();
        let a = d.intern("morning");
        let b = d.intern("afternoon");
        let a2 = d.intern("morning");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(a), Some("morning"));
        assert_eq!(d.get("afternoon"), Some(b));
        assert_eq!(d.get("evening"), None);
        assert_eq!(d.label(99), None);
    }

    #[test]
    fn domain_iter_in_id_order() {
        let d = Domain::from_labels(["a", "b", "c"]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn domain_rejects_duplicates() {
        Domain::from_labels(["x", "x"]);
    }

    #[test]
    fn schema_accessors() {
        let s = sample_schema();
        assert_eq!(s.n_attributes(), 3);
        assert_eq!(s.class_index(), 2);
        assert_eq!(s.class().name(), "Class");
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.attr_index("PhoneModel"), Some(0));
        assert_eq!(s.attr_index("Nope"), None);
        assert_eq!(s.non_class_indices(), vec![0, 1]);
    }

    #[test]
    fn schema_rejects_continuous_class() {
        let r = Schema::new(
            vec![
                Attribute::continuous("X"),
                Attribute::categorical("C", Domain::new()),
            ],
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn schema_rejects_out_of_range_class() {
        let r = Schema::new(vec![Attribute::continuous("X")], 5);
        assert!(r.is_err());
    }

    #[test]
    fn schema_rejects_duplicate_names() {
        let r = Schema::new(
            vec![
                Attribute::categorical("A", Domain::new()),
                Attribute::categorical("A", Domain::new()),
            ],
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn attribute_kinds() {
        let s = sample_schema();
        assert!(s.attribute(0).is_categorical());
        assert!(!s.attribute(1).is_categorical());
        assert_eq!(s.attribute(0).cardinality(), 2);
        assert_eq!(s.attribute(1).cardinality(), 0);
    }
}
