//! Dataset summaries: the first thing an analyst asks of a new extract.

use std::fmt;

use crate::dataset::Dataset;
use crate::schema::AttrKind;

/// Summary of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSummary {
    pub name: String,
    pub kind: AttrKind,
    /// Distinct values (categorical only).
    pub cardinality: Option<usize>,
    /// Up to three most frequent values with counts (categorical only).
    pub top_values: Vec<(String, u64)>,
    /// Range and mean of finite values (continuous only).
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub mean: Option<f64>,
    /// NaN count (continuous only).
    pub n_missing: u64,
}

/// Summary of a whole dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    pub n_rows: usize,
    pub n_attributes: usize,
    pub class_name: String,
    /// `(label, count, share)` per class, in id order.
    pub class_distribution: Vec<(String, u64, f64)>,
    pub attributes: Vec<AttributeSummary>,
}

/// Compute the summary.
pub fn summarize(ds: &Dataset) -> DatasetSummary {
    let schema = ds.schema();
    let total = ds.n_rows() as f64;
    let class_counts = ds.class_counts();
    let class_distribution = schema
        .class()
        .domain()
        .labels()
        .iter()
        .zip(&class_counts)
        .map(|(l, &c)| (l.clone(), c, if total > 0.0 { c as f64 / total } else { 0.0 }))
        .collect();

    let attributes = (0..schema.n_attributes())
        .filter(|&i| i != schema.class_index())
        .map(|i| {
            let attr = schema.attribute(i);
            match attr.kind() {
                AttrKind::Categorical => {
                    let counts = ds.value_counts(i).expect("categorical attribute");
                    let mut pairs: Vec<(String, u64)> = attr
                        .domain()
                        .labels()
                        .iter()
                        .cloned()
                        .zip(counts)
                        .collect();
                    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    AttributeSummary {
                        name: attr.name().to_owned(),
                        kind: AttrKind::Categorical,
                        cardinality: Some(attr.cardinality()),
                        top_values: pairs.into_iter().take(3).collect(),
                        min: None,
                        max: None,
                        mean: None,
                        n_missing: 0,
                    }
                }
                AttrKind::Continuous => {
                    let values = ds.column(i).as_continuous().expect("continuous attribute");
                    let finite: Vec<f64> =
                        values.iter().copied().filter(|v| v.is_finite()).collect();
                    let n_missing = values.iter().filter(|v| v.is_nan()).count() as u64;
                    let (min, max, mean) = if finite.is_empty() {
                        (None, None, None)
                    } else {
                        (
                            finite.iter().copied().reduce(f64::min),
                            finite.iter().copied().reduce(f64::max),
                            Some(finite.iter().sum::<f64>() / finite.len() as f64),
                        )
                    };
                    AttributeSummary {
                        name: attr.name().to_owned(),
                        kind: AttrKind::Continuous,
                        cardinality: None,
                        top_values: Vec::new(),
                        min,
                        max,
                        mean,
                        n_missing,
                    }
                }
            }
        })
        .collect();

    DatasetSummary {
        n_rows: ds.n_rows(),
        n_attributes: schema.n_attributes(),
        class_name: schema.class().name().to_owned(),
        class_distribution,
        attributes,
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} records, {} attributes (class: {})",
            self.n_rows, self.n_attributes, self.class_name
        )?;
        writeln!(f, "class distribution:")?;
        for (label, count, share) in &self.class_distribution {
            writeln!(f, "  {label:<24} {count:>10}  ({:.2}%)", share * 100.0)?;
        }
        writeln!(f, "attributes:")?;
        for a in &self.attributes {
            match a.kind {
                AttrKind::Categorical => {
                    let tops: Vec<String> = a
                        .top_values
                        .iter()
                        .map(|(l, c)| format!("{l} ({c})"))
                        .collect();
                    writeln!(
                        f,
                        "  {:<24} categorical, {} values; top: {}",
                        a.name,
                        a.cardinality.unwrap_or(0),
                        tops.join(", ")
                    )?;
                }
                AttrKind::Continuous => {
                    writeln!(
                        f,
                        "  {:<24} continuous, range [{:.3}, {:.3}], mean {:.3}{}",
                        a.name,
                        a.min.unwrap_or(f64::NAN),
                        a.max.unwrap_or(f64::NAN),
                        a.mean.unwrap_or(f64::NAN),
                        if a.n_missing > 0 {
                            format!(", {} missing", a.n_missing)
                        } else {
                            String::new()
                        }
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Cell, DatasetBuilder};

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("Phone")
            .continuous("Signal")
            .class("Outcome");
        for (p, s, o) in [
            ("ph1", -70.0, "ok"),
            ("ph1", -60.0, "ok"),
            ("ph2", f64::NAN, "drop"),
            ("ph2", -90.0, "ok"),
        ] {
            b.push_row(&[Cell::Str(p), Cell::Num(s), Cell::Str(o)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn summary_contents() {
        let s = summarize(&ds());
        assert_eq!(s.n_rows, 4);
        assert_eq!(s.class_name, "Outcome");
        assert_eq!(s.class_distribution[0], ("ok".into(), 3, 0.75));
        let phone = &s.attributes[0];
        assert_eq!(phone.cardinality, Some(2));
        assert_eq!(phone.top_values[0].1, 2);
        let signal = &s.attributes[1];
        assert_eq!(signal.min, Some(-90.0));
        assert_eq!(signal.max, Some(-60.0));
        assert_eq!(signal.n_missing, 1);
        let mean = signal.mean.unwrap();
        assert!((mean - (-220.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn display_renders_everything() {
        let text = summarize(&ds()).to_string();
        assert!(text.contains("4 records"));
        assert!(text.contains("Phone"));
        assert!(text.contains("categorical, 2 values"));
        assert!(text.contains("continuous, range"));
        assert!(text.contains("1 missing"));
        assert!(text.contains("(75.00%)"));
    }

    #[test]
    fn empty_dataset_summary() {
        let ds = DatasetBuilder::new().continuous("X").class("C").finish().unwrap();
        let s = summarize(&ds);
        assert_eq!(s.n_rows, 0);
        assert!(s.attributes[0].min.is_none());
        let _ = s.to_string(); // must not panic
    }
}
