//! The in-memory dataset: a schema plus one column per attribute.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::schema::{AttrKind, Schema, ValueId};

/// A columnar dataset with a designated class attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Assemble a dataset from a schema and matching columns.
    ///
    /// # Errors
    /// Fails if column count, lengths, or kinds disagree with the schema,
    /// or a categorical column holds an id outside its domain.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.n_attributes() {
            return Err(DataError::SchemaMismatch(format!(
                "{} columns for {} attributes",
                columns.len(),
                schema.n_attributes()
            )));
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(DataError::SchemaMismatch(format!(
                    "column {i} has {} rows, expected {n_rows}",
                    col.len()
                )));
            }
            let attr = schema.attribute(i);
            match (attr.kind(), col) {
                (AttrKind::Categorical, Column::Categorical(ids)) => {
                    let card = attr.cardinality() as ValueId;
                    if let Some(&bad) = ids.iter().find(|&&v| v >= card) {
                        return Err(DataError::UnknownValue {
                            attribute: attr.name().to_owned(),
                            value: format!("id {bad} (domain size {card})"),
                        });
                    }
                }
                (AttrKind::Continuous, Column::Continuous(_)) => {}
                _ => {
                    return Err(DataError::SchemaMismatch(format!(
                        "column {i} kind does not match attribute {:?}",
                        attr.name()
                    )));
                }
            }
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of data records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Column for attribute `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The class column's value ids.
    pub fn class_values(&self) -> &[ValueId] {
        self.columns[self.schema.class_index()]
            .as_categorical()
            .expect("class attribute is categorical by construction")
    }

    /// Categorical ids of attribute `idx`.
    ///
    /// # Errors
    /// Fails if the attribute is continuous.
    pub fn categorical(&self, idx: usize) -> Result<&[ValueId]> {
        self.columns[idx].as_categorical().ok_or_else(|| {
            DataError::Invalid(format!(
                "attribute {:?} is continuous; discretize first",
                self.schema.attribute(idx).name()
            ))
        })
    }

    /// Whether every attribute is categorical (required for rule cubes).
    pub fn all_categorical(&self) -> bool {
        self.schema
            .attributes()
            .iter()
            .all(|a| a.is_categorical())
    }

    /// Count of records per class, indexed by class id.
    pub fn class_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.schema.n_classes()];
        for &c in self.class_values() {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Count of records per value of categorical attribute `idx`.
    ///
    /// # Errors
    /// Fails if the attribute is continuous.
    pub fn value_counts(&self, idx: usize) -> Result<Vec<u64>> {
        let ids = self.categorical(idx)?;
        let mut counts = vec![0u64; self.schema.attribute(idx).cardinality()];
        for &v in ids {
            counts[v as usize] += 1;
        }
        Ok(counts)
    }

    /// New dataset containing exactly the given rows (duplicates allowed,
    /// order preserved).
    ///
    /// # Errors
    /// Fails if any row index is out of range.
    pub fn take_rows(&self, rows: &[usize]) -> Result<Dataset> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.n_rows) {
            return Err(DataError::Invalid(format!(
                "row index {bad} out of range ({} rows)",
                self.n_rows
            )));
        }
        let columns = self.columns.iter().map(|c| c.take_rows(rows)).collect();
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
            n_rows: rows.len(),
        })
    }

    /// The sub-population `D_j = { d in D | A_i(d) = v }` of Section III-C.
    ///
    /// # Errors
    /// Fails if the attribute is continuous or the value id out of range.
    pub fn sub_population(&self, attr: usize, value: ValueId) -> Result<Dataset> {
        let card = self.schema.attribute(attr).cardinality() as ValueId;
        if value >= card {
            return Err(DataError::UnknownValue {
                attribute: self.schema.attribute(attr).name().to_owned(),
                value: format!("id {value} (domain size {card})"),
            });
        }
        let ids = self.categorical(attr)?;
        let rows: Vec<usize> = ids
            .iter()
            .enumerate()
            .filter_map(|(r, &v)| (v == value).then_some(r))
            .collect();
        self.take_rows(&rows)
    }

    /// Concatenate another dataset with an identical schema.
    ///
    /// # Errors
    /// Fails on schema mismatch.
    pub fn append(&mut self, other: &Dataset) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch(
                "cannot append dataset with a different schema".into(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b);
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// Replace the schema+columns of one attribute (used by discretization).
    pub(crate) fn replace_attribute(
        &mut self,
        idx: usize,
        attr: crate::schema::Attribute,
        col: Column,
    ) -> Result<()> {
        if col.len() != self.n_rows {
            return Err(DataError::SchemaMismatch(format!(
                "replacement column has {} rows, expected {}",
                col.len(),
                self.n_rows
            )));
        }
        *self.schema.attribute_mut(idx) = attr;
        self.columns[idx] = col;
        Ok(())
    }
}

/// Public hook for `om-discretize` to swap a continuous attribute for its
/// discretized categorical version without rebuilding the whole dataset.
pub fn replace_attribute(
    ds: &mut Dataset,
    idx: usize,
    attr: crate::schema::Attribute,
    col: Column,
) -> Result<()> {
    ds.replace_attribute(idx, attr, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain};

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::categorical("Phone", Domain::from_labels(["ph1", "ph2"])),
                Attribute::categorical("Time", Domain::from_labels(["am", "pm"])),
                Attribute::categorical("Class", Domain::from_labels(["ok", "drop"])),
            ],
            2,
        )
        .unwrap();
        Dataset::from_columns(
            schema,
            vec![
                Column::Categorical(vec![0, 0, 1, 1, 1]),
                Column::Categorical(vec![0, 1, 0, 1, 0]),
                Column::Categorical(vec![0, 0, 1, 0, 1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.n_rows(), 5);
        assert!(!ds.is_empty());
        assert!(ds.all_categorical());
        assert_eq!(ds.class_values(), &[0, 0, 1, 0, 1]);
        assert_eq!(ds.class_counts(), vec![3, 2]);
        assert_eq!(ds.value_counts(0).unwrap(), vec![2, 3]);
    }

    #[test]
    fn sub_population_filters() {
        let ds = toy();
        let d2 = ds.sub_population(0, 1).unwrap();
        assert_eq!(d2.n_rows(), 3);
        assert_eq!(d2.class_counts(), vec![1, 2]);
        // Sub-population keeps the full schema/domains.
        assert_eq!(d2.schema().n_classes(), 2);
    }

    #[test]
    fn sub_population_rejects_bad_value() {
        let ds = toy();
        assert!(ds.sub_population(0, 7).is_err());
    }

    #[test]
    fn take_rows_duplicates_and_bounds() {
        let ds = toy();
        let t = ds.take_rows(&[0, 0, 4]).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.class_values(), &[0, 0, 1]);
        assert!(ds.take_rows(&[99]).is_err());
    }

    #[test]
    fn append_merges_rows() {
        let mut a = toy();
        let b = toy();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 10);
        assert_eq!(a.class_counts(), vec![6, 4]);
    }

    #[test]
    fn from_columns_validates() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("A", Domain::from_labels(["x"])),
                Attribute::categorical("C", Domain::from_labels(["y"])),
            ],
            1,
        )
        .unwrap();
        // Wrong column count.
        assert!(Dataset::from_columns(schema.clone(), vec![]).is_err());
        // Length mismatch.
        assert!(Dataset::from_columns(
            schema.clone(),
            vec![
                Column::Categorical(vec![0, 0]),
                Column::Categorical(vec![0]),
            ]
        )
        .is_err());
        // Out-of-domain id.
        assert!(Dataset::from_columns(
            schema.clone(),
            vec![Column::Categorical(vec![5]), Column::Categorical(vec![0])]
        )
        .is_err());
        // Kind mismatch.
        assert!(Dataset::from_columns(
            schema,
            vec![Column::Continuous(vec![0.5]), Column::Categorical(vec![0])]
        )
        .is_err());
    }

    #[test]
    fn empty_dataset() {
        let schema = Schema::new(
            vec![Attribute::categorical("C", Domain::from_labels(["a", "b"]))],
            0,
        )
        .unwrap();
        let ds =
            Dataset::from_columns(schema, vec![Column::Categorical(vec![])]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.class_counts(), vec![0, 0]);
    }

    #[test]
    fn categorical_access_on_continuous_fails() {
        let schema = Schema::new(
            vec![
                Attribute::continuous("X"),
                Attribute::categorical("C", Domain::from_labels(["a"])),
            ],
            1,
        )
        .unwrap();
        let ds = Dataset::from_columns(
            schema,
            vec![
                Column::Continuous(vec![1.0]),
                Column::Categorical(vec![0]),
            ],
        )
        .unwrap();
        assert!(ds.categorical(0).is_err());
        assert!(!ds.all_categorical());
        assert!(ds.value_counts(0).is_err());
    }
}
