//! Row-at-a-time dataset construction with automatic value interning.

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::{AttrKind, Attribute, Schema, ValueId};

/// One cell of an input row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell<'a> {
    /// A categorical label; interned into the attribute's domain.
    Str(&'a str),
    /// A continuous value.
    Num(f64),
}

enum ColBuf {
    Cat(Vec<ValueId>),
    Cont(Vec<f64>),
}

/// Builds a [`Dataset`] row by row.
///
/// Attribute kinds are fixed up front; categorical domains grow as new
/// labels are seen. The class attribute is designated by name.
///
/// ```
/// use om_data::{Cell, DatasetBuilder};
///
/// let mut b = DatasetBuilder::new()
///     .categorical("PhoneModel")
///     .continuous("SignalStrength")
///     .class("Outcome");
/// b.push_row(&[Cell::Str("ph1"), Cell::Num(-70.0), Cell::Str("ok")]).unwrap();
/// b.push_row(&[Cell::Str("ph2"), Cell::Num(-92.0), Cell::Str("drop")]).unwrap();
/// let ds = b.finish().unwrap();
/// assert_eq!(ds.n_rows(), 2);
/// assert_eq!(ds.class_counts(), vec![1, 1]);
/// ```
pub struct DatasetBuilder {
    attrs: Vec<Attribute>,
    class_idx: Option<usize>,
    cols: Vec<ColBuf>,
}

impl DatasetBuilder {
    /// Start a builder with no attributes.
    pub fn new() -> Self {
        Self {
            attrs: Vec::new(),
            class_idx: None,
            cols: Vec::new(),
        }
    }

    /// Add a categorical attribute.
    pub fn categorical(mut self, name: &str) -> Self {
        self.attrs
            .push(Attribute::categorical(name, crate::schema::Domain::new()));
        self.cols.push(ColBuf::Cat(Vec::new()));
        self
    }

    /// Add a continuous attribute.
    pub fn continuous(mut self, name: &str) -> Self {
        self.attrs.push(Attribute::continuous(name));
        self.cols.push(ColBuf::Cont(Vec::new()));
        self
    }

    /// Add the (categorical) class attribute.
    pub fn class(mut self, name: &str) -> Self {
        self.class_idx = Some(self.attrs.len());
        self.attrs
            .push(Attribute::categorical(name, crate::schema::Domain::new()));
        self.cols.push(ColBuf::Cat(Vec::new()));
        self
    }

    /// Append one row.
    ///
    /// # Errors
    /// Fails on arity or kind mismatch.
    pub fn push_row(&mut self, cells: &[Cell<'_>]) -> Result<()> {
        if cells.len() != self.attrs.len() {
            return Err(DataError::SchemaMismatch(format!(
                "row has {} cells, schema has {} attributes",
                cells.len(),
                self.attrs.len()
            )));
        }
        for ((attr, buf), cell) in self.attrs.iter_mut().zip(&mut self.cols).zip(cells) {
            match (attr.kind(), buf, cell) {
                (AttrKind::Categorical, ColBuf::Cat(v), Cell::Str(s)) => {
                    v.push(attr.domain_mut().intern(s));
                }
                (AttrKind::Continuous, ColBuf::Cont(v), Cell::Num(x)) => v.push(*x),
                _ => {
                    return Err(DataError::SchemaMismatch(format!(
                        "cell kind does not match attribute {:?}",
                        attr.name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.cols
            .first()
            .map_or(0, |c| match c {
                ColBuf::Cat(v) => v.len(),
                ColBuf::Cont(v) => v.len(),
            })
    }

    /// Finish building.
    ///
    /// # Errors
    /// Fails if no class attribute was declared.
    pub fn finish(self) -> Result<Dataset> {
        let class_idx = self
            .class_idx
            .ok_or_else(|| DataError::Invalid("no class attribute declared".into()))?;
        let schema = Schema::new(self.attrs, class_idx)?;
        let columns = self
            .cols
            .into_iter()
            .map(|c| match c {
                ColBuf::Cat(v) => Column::Categorical(v),
                ColBuf::Cont(v) => Column::Continuous(v),
            })
            .collect();
        Dataset::from_columns(schema, columns)
    }
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_mixed_dataset() {
        let mut b = DatasetBuilder::new()
            .categorical("Phone")
            .continuous("Signal")
            .class("Outcome");
        b.push_row(&[Cell::Str("ph1"), Cell::Num(-70.0), Cell::Str("ok")])
            .unwrap();
        b.push_row(&[Cell::Str("ph2"), Cell::Num(-90.5), Cell::Str("drop")])
            .unwrap();
        b.push_row(&[Cell::Str("ph1"), Cell::Num(-60.0), Cell::Str("ok")])
            .unwrap();
        assert_eq!(b.n_rows(), 3);
        let ds = b.finish().unwrap();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.schema().class().name(), "Outcome");
        assert_eq!(ds.schema().attribute(0).cardinality(), 2);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(
            ds.column(1).as_continuous().unwrap(),
            &[-70.0, -90.5, -60.0]
        );
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        assert!(b.push_row(&[Cell::Str("x")]).is_err());
    }

    #[test]
    fn rejects_kind_mismatch() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        assert!(b
            .push_row(&[Cell::Str("oops"), Cell::Str("c")])
            .is_err());
    }

    #[test]
    fn rejects_missing_class() {
        let b = DatasetBuilder::new().categorical("A");
        assert!(b.finish().is_err());
    }

    #[test]
    fn empty_build_ok() {
        let ds = DatasetBuilder::new().categorical("A").class("C").finish();
        // Empty domains are allowed; the dataset simply has no rows.
        assert_eq!(ds.unwrap().n_rows(), 0);
    }
}
