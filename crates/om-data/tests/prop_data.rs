//! Property-based tests for the data substrate.

use om_data::csv::{read_csv, write_csv, CsvOptions};
use om_data::persist::{decode_dataset, encode_dataset};
use om_data::{Cell, Column, Dataset, DatasetBuilder};
use proptest::prelude::*;
use std::io::BufReader;

/// Strategy: a small random categorical dataset with 1 feature + class.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u8..4, 0u8..3), 0..60).prop_map(|rows| {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        let a_labels = ["a0", "a1", "a2", "a3"];
        let c_labels = ["c0", "c1", "c2"];
        for (a, c) in rows {
            b.push_row(&[
                Cell::Str(a_labels[a as usize]),
                Cell::Str(c_labels[c as usize]),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

proptest! {
    #[test]
    fn persist_round_trip(ds in arb_dataset()) {
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn csv_round_trip_preserves_structure(ds in arb_dataset()) {
        let mut out = Vec::new();
        write_csv(&ds, &mut out, ',').unwrap();
        let back = read_csv(BufReader::new(out.as_slice()), &CsvOptions::new("C")).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        // Class distribution must be identical up to relabeling; compare via sorted counts.
        let mut a = back.class_counts();
        let mut b = ds.class_counts();
        a.retain(|&c| c > 0);
        b.retain(|&c| c > 0);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn class_counts_sum_to_rows(ds in arb_dataset()) {
        let total: u64 = ds.class_counts().iter().sum();
        prop_assert_eq!(total as usize, ds.n_rows());
    }

    #[test]
    fn sub_population_partition(ds in arb_dataset()) {
        // Sub-populations over all values of attribute 0 partition the rows.
        let card = ds.schema().attribute(0).cardinality();
        let mut total = 0usize;
        for v in 0..card as u32 {
            total += ds.sub_population(0, v).unwrap().n_rows();
        }
        prop_assert_eq!(total, ds.n_rows());
    }

    #[test]
    fn take_rows_preserves_values(ds in arb_dataset(), seed in 0u64..1000) {
        if ds.n_rows() == 0 { return Ok(()); }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<usize> = (0..10).map(|_| rng.gen_range(0..ds.n_rows())).collect();
        let t = ds.take_rows(&rows).unwrap();
        let orig = ds.column(0).as_categorical().unwrap();
        let picked = t.column(0).as_categorical().unwrap();
        for (i, &r) in rows.iter().enumerate() {
            prop_assert_eq!(picked[i], orig[r]);
        }
    }

    #[test]
    fn duplicate_scales_class_counts(ds in arb_dataset(), k in 1usize..5) {
        let out = om_data::sample::duplicate(&ds, k).unwrap();
        let base = ds.class_counts();
        let scaled = out.class_counts();
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert_eq!(b * k as u64, *s);
        }
    }

    #[test]
    fn unbalanced_sample_respects_ratio(ds in arb_dataset(), ratio in 1u64..4) {
        if ds.is_empty() { return Ok(()); }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let out = om_data::sample::unbalanced_sample(&ds, ratio, &mut rng).unwrap();
        let counts = out.class_counts();
        let min_nonzero = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0);
        for &c in &counts {
            prop_assert!(c <= min_nonzero * ratio,
                "class count {} exceeds {} * ratio {}", c, min_nonzero, ratio);
        }
    }

    #[test]
    fn column_take_rows_length(ids in proptest::collection::vec(0u32..3, 0..50)) {
        let col = Column::Categorical(ids.clone());
        let take: Vec<usize> = (0..ids.len()).step_by(2).collect();
        prop_assert_eq!(col.take_rows(&take).len(), take.len());
    }
}
