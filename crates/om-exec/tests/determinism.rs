//! Determinism: sharded ranking must be byte-identical to the serial
//! comparator — same scores, same order, same JSON bytes — for any
//! dataset shape and any worker width. Runs the comparison over
//! property-generated datasets at widths 1, 2 and 8.

use std::sync::Arc;

use om_compare::{CompareConfig, Comparator, ComparisonSpec};
use om_cube::{CubeStore, StoreBuildOptions};
use om_exec::{rank_parallel, ExecConfig, Executor};
use om_fault::Budget;
use om_synth::{generate_scaleup, ScaleUpConfig};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

const WIDTHS: [usize; 3] = [1, 2, 8];

/// Run the serial comparator and every sharded width over one dataset,
/// asserting byte-identical canonical JSON.
fn assert_widths_agree(n_attrs: usize, n_records: usize, seed: u64, attr: usize) {
    let ds = generate_scaleup(&ScaleUpConfig {
        n_attrs,
        n_records,
        seed,
        ..ScaleUpConfig::default()
    });
    let schema = ds.schema();
    let attr = attr % schema.n_attributes();
    if schema.attribute(attr).cardinality() < 2 || schema.n_classes() < 2 {
        return;
    }
    let spec = ComparisonSpec {
        attr,
        value_1: 0,
        value_2: 1,
        class: 1,
    };
    let store = Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
    let config = CompareConfig::default();
    let serial = match Comparator::new(&store).compare(&spec) {
        Ok(r) => r,
        // Degenerate draws (e.g. an empty sub-population) must fail the
        // same way at every width.
        Err(serial_err) => {
            for workers in WIDTHS {
                let exec = Executor::new(&ExecConfig { workers });
                let err = rank_parallel(&exec, &store, &config, &spec, &Budget::unlimited())
                    .expect_err("serial failed, parallel must too");
                assert_eq!(
                    err.to_string(),
                    serial_err.to_string(),
                    "workers={workers}"
                );
            }
            return;
        }
    };
    let serial_bytes = om_compare::json::to_json(&serial);
    for workers in WIDTHS {
        let exec = Executor::new(&ExecConfig { workers });
        let parallel =
            rank_parallel(&exec, &store, &config, &spec, &Budget::unlimited()).unwrap();
        assert_eq!(
            om_compare::json::to_json(&parallel),
            serial_bytes,
            "workers={workers}, n_attrs={n_attrs}, n_records={n_records}, seed={seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_rank_is_byte_identical_to_serial(
        n_attrs in 3..14usize,
        n_records in 400..2_500usize,
        seed in 0..u64::MAX,
        attr in 0..14usize,
    ) {
        assert_widths_agree(n_attrs, n_records, seed, attr);
    }
}

#[test]
fn paper_scenario_is_byte_identical_across_widths() {
    let (ds, truth) = om_synth::paper_scenario(20_000, 33);
    let schema = ds.schema();
    let attr = schema.attr_index(&truth.compare_attr).unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: schema.attribute(attr).domain().get(&truth.baseline_value).unwrap(),
        value_2: schema.attribute(attr).domain().get(&truth.target_value).unwrap(),
        class: schema.class().domain().get(&truth.target_class).unwrap(),
    };
    let store = Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
    let serial = Comparator::new(&store).compare(&spec).unwrap();
    let serial_bytes = om_compare::json::to_json(&serial);
    for workers in WIDTHS {
        let exec = Executor::new(&ExecConfig { workers });
        let parallel = rank_parallel(
            &exec,
            &store,
            &CompareConfig::default(),
            &spec,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(om_compare::json::to_json(&parallel), serial_bytes, "workers={workers}");
    }
}
