//! Kernel ↔ record-walk parity: every query path that now counts
//! through the columnar kernel (`om_cube::kernel`) must stay
//! byte-identical to the record walk it replaced — compare, drill,
//! general impressions, and explore — at exec widths 1, 2 and 8, over
//! property-generated datasets.
//!
//! The record-walk side is reconstructed here exactly as the retired
//! code did it (`Dataset::sub_population` + an index-free
//! `CubeStore::build` per level), so the old counting path stays
//! checkable even though production no longer runs it.

use std::sync::Arc;

use om_car::Condition;
use om_compare::{
    drill_down_via, CompareConfig, CompareError, Comparator, ComparisonSpec, DrillConfig,
    DrillLevel, DrillPopulation, SelectorPopulation,
};
use om_cube::{ColumnIndex, CubeStore, StoreBuildOptions};
use om_data::{Dataset, Schema};
use om_exec::{rank_parallel, ExecConfig, Executor};
use om_explore::ExploreQuery;
use om_fault::Budget;
use om_gi::{
    mine_exceptions_budgeted, mine_influence_budgeted, mine_trends_budgeted, ExceptionConfig,
    TrendConfig,
};
use om_synth::{generate_scaleup, ScaleUpConfig};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn dataset(n_attrs: usize, n_records: usize, seed: u64) -> Dataset {
    generate_scaleup(&ScaleUpConfig {
        n_attrs,
        n_records,
        seed,
        ..ScaleUpConfig::default()
    })
}

/// The pre-kernel counting path: record walk, no index.
fn record_walk_store(ds: &Dataset) -> Arc<CubeStore> {
    Arc::new(
        CubeStore::build(
            ds,
            &StoreBuildOptions {
                index: false,
                ..StoreBuildOptions::default()
            },
        )
        .unwrap(),
    )
}

/// The kernel path: one shared column scan through the bitmap index.
fn kernel_store(ds: &Dataset) -> Arc<CubeStore> {
    let index = Arc::new(ColumnIndex::build(ds).unwrap());
    Arc::new(index.selector().build_store_eager(None).unwrap())
}

fn spec_for(ds: &Dataset, attr: usize) -> Option<ComparisonSpec> {
    let schema = ds.schema();
    let attr = attr % schema.n_attributes();
    if schema.attribute(attr).cardinality() < 2 || schema.n_classes() < 2 {
        return None;
    }
    Some(ComparisonSpec {
        attr,
        value_1: 0,
        value_2: 1,
        class: 1,
    })
}

/// The retired `DatasetPopulation`, reconstructed byte-for-byte: narrow
/// by materializing the sub-population, rebuild cubes per level from
/// records.
struct RecordWalkPopulation {
    current: Dataset,
}

impl DrillPopulation for RecordWalkPopulation {
    fn schema(&self) -> &Schema {
        self.current.schema()
    }

    fn level_store(&mut self, attrs: Vec<usize>) -> Result<Arc<CubeStore>, CompareError> {
        CubeStore::build(
            &self.current,
            &StoreBuildOptions {
                attrs: Some(attrs),
                n_threads: 0,
                index: false,
            },
        )
        .map(Arc::new)
        .map_err(CompareError::Cube)
    }

    fn descend(&mut self, condition: Condition) -> Result<bool, CompareError> {
        match self.current.sub_population(condition.attr, condition.value) {
            Ok(sub) if !sub.is_empty() => {
                self.current = sub;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

fn assert_same_levels(
    label: &str,
    record: &Result<Vec<DrillLevel>, CompareError>,
    kernel: Result<Vec<DrillLevel>, CompareError>,
) {
    match (record, kernel) {
        (Ok(a), Ok(b)) => assert_eq!(*a, b, "{label}"),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{label}"),
        (a, b) => panic!("{label}: record walk {a:?} but kernel {b:?}"),
    }
}

fn assert_compare_parity(n_attrs: usize, n_records: usize, seed: u64, attr: usize) {
    let ds = dataset(n_attrs, n_records, seed);
    let Some(spec) = spec_for(&ds, attr) else {
        return;
    };
    let record = record_walk_store(&ds);
    let kernel = kernel_store(&ds);
    let config = CompareConfig::default();
    match Comparator::new(&record).compare(&spec) {
        Ok(serial) => {
            let bytes = om_compare::json::to_json(&serial);
            let k = Comparator::new(&kernel).compare(&spec).unwrap();
            assert_eq!(om_compare::json::to_json(&k), bytes, "serial kernel");
            for workers in WIDTHS {
                let exec = Executor::new(&ExecConfig { workers });
                let parallel =
                    rank_parallel(&exec, &kernel, &config, &spec, &Budget::unlimited()).unwrap();
                assert_eq!(
                    om_compare::json::to_json(&parallel),
                    bytes,
                    "workers={workers}, n_attrs={n_attrs}, n_records={n_records}, seed={seed}"
                );
            }
        }
        Err(record_err) => {
            // Degenerate draws must fail identically through the kernel.
            let kernel_err = Comparator::new(&kernel)
                .compare(&spec)
                .expect_err("record walk failed, kernel must too");
            assert_eq!(kernel_err.to_string(), record_err.to_string());
        }
    }
}

fn assert_drill_parity(n_attrs: usize, n_records: usize, seed: u64, attr: usize) {
    let ds = dataset(n_attrs, n_records, seed);
    let Some(spec) = spec_for(&ds, attr) else {
        return;
    };
    let config = DrillConfig::default();
    let unlimited = Budget::unlimited();
    let mut record_pop = RecordWalkPopulation {
        current: ds.clone(),
    };
    let record = drill_down_via(
        &mut record_pop,
        &spec,
        &config,
        &unlimited,
        |store, spec, budget| {
            Comparator::with_config(&store, config.compare.clone()).compare_budgeted(spec, budget)
        },
    );

    let index = Arc::new(ColumnIndex::build(&ds).unwrap());
    let mut serial_pop = SelectorPopulation::new(index.selector(), spec.attr);
    let serial = drill_down_via(
        &mut serial_pop,
        &spec,
        &config,
        &unlimited,
        |store, spec, budget| {
            Comparator::with_config(&store, config.compare.clone()).compare_budgeted(spec, budget)
        },
    );
    assert_same_levels("serial kernel drill", &record, serial);

    for workers in WIDTHS {
        let exec = Executor::new(&ExecConfig { workers });
        let mut pop = SelectorPopulation::new(index.selector(), spec.attr);
        let wide = drill_down_via(&mut pop, &spec, &config, &unlimited, |store, spec, budget| {
            rank_parallel(&exec, &store, &config.compare, spec, budget)
        });
        assert_same_levels(&format!("kernel drill workers={workers}"), &record, wide);
    }
}

fn assert_gi_parity(n_attrs: usize, n_records: usize, seed: u64) {
    let ds = dataset(n_attrs, n_records, seed);
    let record = record_walk_store(&ds);
    let kernel = kernel_store(&ds);
    let unlimited = Budget::unlimited();
    let trend = TrendConfig::default();
    let exception = ExceptionConfig::default();
    assert_eq!(
        mine_trends_budgeted(&record, &trend, &unlimited).unwrap(),
        mine_trends_budgeted(&kernel, &trend, &unlimited).unwrap(),
    );
    assert_eq!(
        mine_exceptions_budgeted(&record, &exception, &unlimited).unwrap(),
        mine_exceptions_budgeted(&kernel, &exception, &unlimited).unwrap(),
    );
    assert_eq!(
        mine_influence_budgeted(&record, &unlimited).unwrap(),
        mine_influence_budgeted(&kernel, &unlimited).unwrap(),
    );
}

fn assert_explore_parity(n_attrs: usize, n_records: usize, seed: u64) {
    let ds = dataset(n_attrs, n_records, seed);
    let schema = ds.schema();
    // The pair-slice path (no index) against the masked kernel-scan path
    // (indexed store): sliced pools must agree cell for cell.
    let record = record_walk_store(&ds);
    let indexed = Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
    assert!(indexed.index().is_some(), "default build must carry an index");
    let slice_attr = schema.attribute(0);
    let mut queries = vec![ExploreQuery::top_k(3)];
    if !slice_attr.domain().labels().is_empty() {
        queries.push(ExploreQuery {
            slice: vec![(
                slice_attr.name().to_owned(),
                slice_attr.domain().labels()[0].clone(),
            )],
            k: 3,
            max_conditions: None,
            compare: None,
        });
    }
    let config = CompareConfig::default();
    for workers in WIDTHS {
        let exec = Executor::new(&ExecConfig { workers });
        for (qi, query) in queries.iter().enumerate() {
            let a = om_explore::explore(&exec, &record, &config, query, &Budget::unlimited());
            let b = om_explore::explore(&exec, &indexed, &config, query, &Budget::unlimited());
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "workers={workers}, query={qi}"),
                (Err(x), Err(y)) => {
                    assert_eq!(x.to_string(), y.to_string(), "workers={workers}, query={qi}");
                }
                (a, b) => panic!("workers={workers}, query={qi}: pair path {a:?}, kernel {b:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn kernel_compare_matches_record_walk(
        n_attrs in 3..12usize,
        n_records in 400..2_500usize,
        seed in 0..u64::MAX,
        attr in 0..12usize,
    ) {
        assert_compare_parity(n_attrs, n_records, seed, attr);
    }

    #[test]
    fn kernel_drill_matches_record_walk(
        n_attrs in 3..10usize,
        n_records in 400..2_000usize,
        seed in 0..u64::MAX,
        attr in 0..10usize,
    ) {
        assert_drill_parity(n_attrs, n_records, seed, attr);
    }

    #[test]
    fn kernel_gi_matches_record_walk(
        n_attrs in 3..10usize,
        n_records in 400..2_000usize,
        seed in 0..u64::MAX,
    ) {
        assert_gi_parity(n_attrs, n_records, seed);
    }

    #[test]
    fn kernel_explore_matches_pair_slices(
        n_attrs in 3..9usize,
        n_records in 400..1_600usize,
        seed in 0..u64::MAX,
    ) {
        assert_explore_parity(n_attrs, n_records, seed);
    }
}

/// The paper's own scenario, end to end: kernel drill (serial and every
/// width) equals the record walk on realistic nested effects.
#[test]
fn paper_scenario_drill_parity() {
    let (ds, truth) = om_synth::paper_scenario(20_000, 33);
    let schema = ds.schema();
    let attr = schema.attr_index(&truth.compare_attr).unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: schema
            .attribute(attr)
            .domain()
            .get(&truth.baseline_value)
            .unwrap(),
        value_2: schema
            .attribute(attr)
            .domain()
            .get(&truth.target_value)
            .unwrap(),
        class: schema.class().domain().get(&truth.target_class).unwrap(),
    };
    let config = DrillConfig::default();
    let unlimited = Budget::unlimited();
    let mut record_pop = RecordWalkPopulation {
        current: ds.clone(),
    };
    let record = drill_down_via(
        &mut record_pop,
        &spec,
        &config,
        &unlimited,
        |store, spec, budget| {
            Comparator::with_config(&store, config.compare.clone()).compare_budgeted(spec, budget)
        },
    )
    .unwrap();
    assert!(!record.is_empty());

    let index = Arc::new(ColumnIndex::build(&ds).unwrap());
    for workers in WIDTHS {
        let exec = Executor::new(&ExecConfig { workers });
        let mut pop = SelectorPopulation::new(index.selector(), spec.attr);
        let kernel = drill_down_via(&mut pop, &spec, &config, &unlimited, |store, spec, budget| {
            rank_parallel(&exec, &store, &config.compare, spec, budget)
        })
        .unwrap();
        assert_eq!(record, kernel, "workers={workers}");
    }
}
