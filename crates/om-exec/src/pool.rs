//! The persistent worker pool: om-server's pool idiom (threads blocking
//! on a crossbeam channel) generalized to arbitrary scatter/gather jobs.
//!
//! One [`Executor`] lives as long as the engine, so a request never pays
//! thread-spawn latency. The calling thread always participates — a pool
//! of width `w` holds `w - 1` threads, and width 1 holds none (pure
//! serial execution with zero synchronization).

use std::panic::{self, AssertUnwindSafe};
use std::thread::{self, JoinHandle};

use crossbeam::channel::{self, Sender};

use crate::config::ExecConfig;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent scatter/gather worker pool.
pub struct Executor {
    /// `None` only during drop (taking it disconnects the workers).
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    width: usize,
}

impl Executor {
    /// Spawn a pool of `config.effective_workers() - 1` threads (the
    /// caller is the remaining worker).
    #[must_use]
    #[allow(clippy::expect_used)]
    pub fn new(config: &ExecConfig) -> Self {
        let width = config.effective_workers().max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let handles = (1..width)
            .map(|i| {
                let rx = rx.clone();
                thread::Builder::new()
                    .name(format!("om-exec-{i}"))
                    .spawn(move || {
                        // om-lint: allow(budget-coverage) — pool workers live for the engine's lifetime; each queued job polls its own request budget
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    // om-lint: allow(panic-path) — engine-startup thread spawn; OS thread exhaustion at boot is fatal by design
                    .expect("spawn om-exec worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            width,
        }
    }

    /// A width-1 executor: no threads, every job runs inline.
    #[must_use]
    pub fn serial() -> Self {
        Self::new(&ExecConfig::serial())
    }

    /// Total workers including the calling thread.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Run every job and return their results in job order. The first
    /// job runs on the calling thread; the rest are queued to the pool
    /// (jobs may outnumber threads — the queue drains as workers free
    /// up, the caller blocking on gather). A panicking job is re-raised
    /// on the caller *after* all jobs finish, so pool threads survive
    /// (panic isolation mirrors om-server's per-request `catch_unwind`).
    #[allow(clippy::expect_used)]
    pub fn scatter<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let (done_tx, done_rx) = channel::unbounded();
        let mut jobs = jobs.into_iter();
        let Some(first) = jobs.next() else {
            return Vec::new(); // n >= 1, but running dry is a clean no-op
        };
        // `tx` is `None` only mid-drop, which no shared `&self` can
        // observe; if it ever happened, degrade to inline execution
        // rather than panic a request worker.
        let run_inline = self.handles.is_empty() || n == 1 || self.tx.is_none();
        if run_inline {
            return std::iter::once(first).chain(jobs).map(|job| job()).collect();
        }
        let Some(pool) = self.tx.as_ref() else {
            return std::iter::once(first).chain(jobs).map(|job| job()).collect();
        };
        for (i, job) in jobs.enumerate() {
            let done_tx = done_tx.clone();
            let queued = pool.send(Box::new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(job));
                // A send error means the gatherer already resumed a
                // panic and dropped the receiver; nothing to do.
                let _ = done_tx.send((i + 1, result));
            }));
            assert!(queued.is_ok(), "om-exec workers alive");
        }

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        match panic::catch_unwind(AssertUnwindSafe(first)) {
            // om-lint: allow(panic-path) — n >= 1, slots has n entries
            Ok(v) => slots[0] = Some(v),
            Err(p) => panic_payload = Some(p),
        }
        // om-lint: allow(budget-coverage) — gathers exactly n-1 completions from jobs that poll their own budgets; panics are re-raised below
        for _ in 1..n {
            // Workers never exit while `self.tx` holds the channel, and
            // job panics are caught before the send — a recv error here
            // means the pool itself is gone, which is unrecoverable.
            // om-lint: allow(panic-path) — pool invariant: workers outlive every scatter call
            let (i, result) = done_rx.recv().expect("om-exec workers alive");
            match result {
                // om-lint: allow(panic-path) — worker indices are enumerate()+1 < n
                Ok(v) => slots[i] = Some(v),
                Err(p) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic_payload {
            panic::resume_unwind(p);
        }
        slots.into_iter().flatten().collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Disconnect the channel so workers fall out of their recv loop.
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_job_order() {
        let exec = Executor::new(&ExecConfig { workers: 4 });
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = exec.scatter(jobs);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_executor_runs_inline() {
        let exec = Executor::serial();
        assert_eq!(exec.width(), 1);
        let id = std::thread::current().id();
        let jobs: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..4)
            .map(|_| {
                Box::new(move || std::thread::current().id() == id)
                    as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        assert!(exec.scatter(jobs).into_iter().all(|b| b));
    }

    #[test]
    fn panicking_job_propagates_but_pool_survives() {
        let exec = Executor::new(&ExecConfig { workers: 3 });
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard boom")),
            Box::new(|| 3),
        ];
        let r = panic::catch_unwind(AssertUnwindSafe(|| exec.scatter(jobs)));
        assert!(r.is_err());
        // The pool still works after the panic.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            (0..8u32).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(exec.scatter(jobs), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn more_jobs_than_threads_completes() {
        let exec = Executor::new(&ExecConfig { workers: 2 });
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..100usize).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(exec.scatter(jobs).len(), 100);
    }
}
