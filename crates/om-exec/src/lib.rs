//! Parallel execution layer for the comparator's hot path.
//!
//! The paper's Fig. 9 shows comparison time scaling linearly in the
//! number of attributes — each attribute's `M_i` is an independent read
//! of two rule-cube slices, which makes the loop embarrassingly
//! parallel. This crate supplies the machinery the engine routes through:
//!
//! * [`pool`] — a persistent worker pool (the om-server pool idiom:
//!   threads blocking on a crossbeam channel), shared by every request
//!   so parallel ranking never pays thread-spawn latency;
//! * [`rank`] — sharded ranking: the candidate-attribute set is split
//!   into contiguous shards, each scored against one pinned store, and
//!   the per-shard score vectors are concatenated back into store order
//!   before the canonical sort. Serial and parallel execution share the
//!   `normalize → score_candidate → assemble` stages of om-compare, so
//!   output is **byte-identical to serial by construction**;
//! * [`batch`] — shared-scan comparison batches (the COMPARE /
//!   smart-drill-down shape: one parent population, many children): items
//!   sharing a base population gather sub-population slices once per
//!   cube pass, and drill items sharing a condition-path prefix reuse
//!   both the conditioned records and the per-level comparison, with
//!   per-item budget propagation and partial results on deadline.

// Request-path crate: panics here become 500s or worker deaths, so
// unwrap/expect are lint-visible outside unit tests (om-lint's
// panic-path check enforces the same rule with suppression reasons).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod config;
pub mod pool;
pub mod rank;

pub use batch::{run_batch, BatchItem, BatchOutcome};
pub use config::ExecConfig;
pub use pool::Executor;
pub use rank::{gather_in_order, rank_parallel, StoreRef};
