//! Shared-scan comparison batches.
//!
//! The COMPARE system (Siddiqui et al.) observes that groupwise
//! comparison workloads overlap heavily: many requests read the same
//! base population. The smart-drill-down session shape (Joglekar et
//! al.) is the extreme case — one parent, many children. A batch
//! exploits both overlaps:
//!
//! * **compare items** sharing a selected attribute and value pair are
//!   grouped so each candidate attribute's pair-cube slices are fetched
//!   **once per cube pass** and re-read per class of interest, instead
//!   of once per request;
//! * **drill items** sharing a condition-path prefix reuse both the
//!   conditioned record set and the per-level comparison result, so 32
//!   children of one parent compute the parent's comparison once;
//! * each item carries an optional budget narrowing; a deadline marks
//!   the *remaining* items overloaded while completed items are still
//!   returned — partial results, never all-or-nothing.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use om_car::Condition;
use om_compare::{
    assemble, attr_name, candidate_attrs_in, counts_for_class, drill_down_via, normalize,
    score_attribute, subpop_slices, AttrScore, CompareConfig, CompareError, ComparisonResult,
    ComparisonSpec, DrillConfig, DrillLevel, NormalizedSpec, SelectorPopulation,
};
use om_cube::{ColumnIndex, PopulationSelector};
use om_data::ValueId;
use om_fault::{fail, Budget};

use crate::pool::Executor;
use crate::rank::{rank_parallel, StoreRef};

/// One unit of a comparison batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// Rank all attributes for one spec against the pinned store.
    Compare {
        spec: ComparisonSpec,
        /// Narrow this item's share of the batch budget; `None` means
        /// the batch budget applies unchanged.
        budget_ms: Option<u64>,
    },
    /// Walk a drill path over the base dataset. An empty `path` is the
    /// automated drill-down (the `/drill` behavior); a non-empty path
    /// pins the conditions level by level — level 0 is the root, level
    /// `i` is conditioned on `path[..i]` — producing up to
    /// `path.len() + 1` levels.
    Drill {
        spec: ComparisonSpec,
        path: Vec<Condition>,
        /// Narrow this item's share of the batch budget.
        budget_ms: Option<u64>,
    },
}

/// Per-item result of a batch: success, or a typed reason.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    Compare(ComparisonResult),
    Drill(Vec<DrillLevel>),
    /// The item's (or the batch's) budget ran out before this item
    /// completed; retry later.
    Overloaded { message: String },
    /// The item itself is invalid or unanswerable; retrying won't help.
    Failed { message: String },
}

impl BatchOutcome {
    /// Map a comparison failure onto its per-item outcome — overload
    /// faults are retryable, everything else is a terminal item
    /// failure. Public so a distributed coordinator mirroring the batch
    /// loop classifies errors identically.
    #[must_use]
    pub fn from_error(e: &CompareError) -> Self {
        match e {
            CompareError::Fault(f) if f.is_overload() => BatchOutcome::Overloaded {
                message: e.to_string(),
            },
            _ => BatchOutcome::Failed {
                message: e.to_string(),
            },
        }
    }
}

/// Key grouping compare items that can share one cube pass: same
/// selected attribute and same (unordered) value pair. Orientation is
/// per-item — it depends on the class of interest — so the key uses the
/// unordered pair and each item maps the shared slices to its own
/// orientation.
type GroupKey = (usize, ValueId, ValueId);

fn group_key(spec: &ComparisonSpec) -> GroupKey {
    let (lo, hi) = if spec.value_1 <= spec.value_2 {
        (spec.value_1, spec.value_2)
    } else {
        (spec.value_2, spec.value_1)
    };
    (spec.attr, lo, hi)
}

fn item_budget(batch: &Budget, budget_ms: Option<u64>) -> Budget {
    match budget_ms {
        Some(ms) => batch.narrowed(Duration::from_millis(ms)),
        None => batch.clone(),
    }
}

/// Execute a batch: compare groups are scattered across the pool (one
/// shared cube pass per group), then drill items walk their paths with
/// conditioned populations and per-level comparisons memoized across
/// items. Outcomes are returned in item order.
///
/// Every individual result is byte-identical to what the corresponding
/// single request (`compare` / fixed-path drill) would return: the
/// shared pass runs the exact `normalize → score → assemble` stages of
/// the serial comparator, merely reusing slice fetches.
pub fn run_batch<S: StoreRef>(
    exec: &Executor,
    store: &S,
    kernel: &Arc<ColumnIndex>,
    compare_config: &CompareConfig,
    drill_config: &DrillConfig,
    items: &[BatchItem],
    budget: &Budget,
) -> Vec<BatchOutcome> {
    let mut outcomes: Vec<Option<BatchOutcome>> = vec![None; items.len()];

    // ---- compare items: group by shared base population ------------
    let mut groups: HashMap<GroupKey, Vec<(usize, ComparisonSpec, Budget)>> = HashMap::new();
    let mut group_order: Vec<GroupKey> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        if let BatchItem::Compare { spec, budget_ms } = item {
            let key = group_key(spec);
            let entry = groups.entry(key).or_insert_with(|| {
                group_order.push(key);
                Vec::new()
            });
            entry.push((i, *spec, item_budget(budget, *budget_ms)));
        }
    }
    type GroupJob = Box<dyn FnOnce() -> Vec<(usize, BatchOutcome)> + Send>;
    let jobs: Vec<GroupJob> = group_order
        .into_iter()
        .filter_map(|key| groups.remove(&key))
        .map(|members| {
            let store = store.clone();
            let config = compare_config.clone();
            Box::new(move || run_compare_group(store.store(), &config, members)) as GroupJob
        })
        .collect();
    for group_outcomes in exec.scatter(jobs) {
        for (i, outcome) in group_outcomes {
            if let Some(slot) = outcomes.get_mut(i) {
                *slot = Some(outcome);
            }
        }
    }

    // ---- drill items: memoized path walk ---------------------------
    let mut memo = DrillMemo::default();
    for (i, item) in items.iter().enumerate() {
        if let BatchItem::Drill {
            spec,
            path,
            budget_ms,
        } = item
        {
            let item_budget = item_budget(budget, *budget_ms);
            let outcome = run_drill_item(
                exec,
                kernel,
                compare_config,
                drill_config,
                spec,
                path,
                &item_budget,
                &mut memo,
            );
            if let Some(slot) = outcomes.get_mut(i) {
                *slot = Some(outcome);
            }
        }
    }

    // Every item is Compare or Drill and both passes fill their slots;
    // a hole would be a batching bug, reported as a typed failure
    // rather than a panic on the request path.
    outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| BatchOutcome::Failed {
                message: "batch item produced no outcome".to_owned(),
            })
        })
        .collect()
}

/// One cube pass serving every member of a compare group. Per-candidate
/// slices are fetched once; each member extracts its own per-class
/// counts and scores from them.
fn run_compare_group(
    store: &om_cube::CubeStore,
    config: &CompareConfig,
    members: Vec<(usize, ComparisonSpec, Budget)>,
) -> Vec<(usize, BatchOutcome)> {
    if let Err(e) = fail::inject("exec.batch-group") {
        let out = BatchOutcome::from_error(&CompareError::Fault(e));
        return members.iter().map(|(i, _, _)| (*i, out.clone())).collect();
    }

    // Normalize every member first; invalid specs fail individually
    // without sinking the group.
    let mut live: Vec<(usize, NormalizedSpec, Budget, Vec<AttrScore>)> = Vec::new();
    let mut out: Vec<(usize, BatchOutcome)> = Vec::new();
    for (i, spec, item_budget) in members {
        if let Err(e) = item_budget.check() {
            out.push((i, BatchOutcome::from_error(&CompareError::Fault(e))));
            continue;
        }
        match normalize(store, config, &spec) {
            Ok(norm) => live.push((i, norm, item_budget, Vec::new())),
            Err(e) => out.push((i, BatchOutcome::from_error(&e))),
        }
    }
    let Some(sel) = live.first().map(|(_, n, _, _)| n.spec.attr) else {
        return out;
    };

    for &other in store.attrs() {
        if other == sel {
            continue;
        }
        // Every member shares the unordered pair (the group key), so the
        // first live member's spec names the slices for all of them.
        let (pair_lo, pair_hi) = match live.first() {
            Some((_, norm, _, _)) => (
                norm.spec.value_1.min(norm.spec.value_2),
                norm.spec.value_1.max(norm.spec.value_2),
            ),
            None => break,
        };
        // The shared fetch: one pair-cube access and two slices serve
        // every live member of the group.
        let fetched = subpop_slices(store, sel, other, pair_lo, pair_hi)
        .and_then(|slices| Ok((attr_name(store, other)?, slices)));
        let (name, (labels, s_lo, s_hi)) = match fetched {
            Ok(v) => v,
            Err(e) => {
                let outcome = BatchOutcome::from_error(&e);
                out.extend(live.drain(..).map(|(i, ..)| (i, outcome.clone())));
                break;
            }
        };
        let mut still_live = Vec::with_capacity(live.len());
        for (i, norm, item_budget, mut scores) in live {
            let step = (|| -> Result<AttrScore, CompareError> {
                item_budget.check()?;
                fail::inject("compare.attr")?;
                let oriented_lo = norm.spec.value_1 <= norm.spec.value_2;
                let (d1, d2) = if oriented_lo { (&s_lo, &s_hi) } else { (&s_hi, &s_lo) };
                Ok(score_attribute(
                    other,
                    &name,
                    &labels,
                    &counts_for_class(d1, norm.spec.class)?,
                    &counts_for_class(d2, norm.spec.class)?,
                    norm.base.cf1,
                    norm.base.cf2,
                    config.interval,
                ))
            })();
            match step {
                Ok(score) => {
                    scores.push(score);
                    still_live.push((i, norm, item_budget, scores));
                }
                Err(e) => out.push((i, BatchOutcome::from_error(&e))),
            }
        }
        live = still_live;
    }

    for (i, norm, _, scores) in live {
        out.push((
            i,
            BatchOutcome::Compare(assemble(norm, scores, config)),
        ));
    }
    out
}

/// Comparisons and conditioned selectors shared across a batch's
/// drill items, keyed by the exact condition-path prefix. Selectors are
/// bitmap masks over the shared kernel index — memoizing one costs a
/// compressed mask, not a copied record set.
#[derive(Default)]
struct DrillMemo {
    pops: HashMap<Vec<Condition>, PopulationSelector>,
    results: HashMap<(Vec<Condition>, ComparisonSpec), ComparisonResult>,
}

#[allow(clippy::too_many_arguments)]
fn run_drill_item(
    exec: &Executor,
    kernel: &Arc<ColumnIndex>,
    compare_config: &CompareConfig,
    drill_config: &DrillConfig,
    spec: &ComparisonSpec,
    path: &[Condition],
    budget: &Budget,
    memo: &mut DrillMemo,
) -> BatchOutcome {
    if path.is_empty() {
        // The automated walk — each level's comparison still runs
        // sharded, and the root result is shared with fixed-path items
        // through the memo. Only the unconditioned root is memoizable
        // from outside the walk (deeper levels depend on the walk's own
        // findings); it is exactly the runner's first invocation.
        let results = &mut memo.results;
        let mut at_root = true;
        let mut pop = SelectorPopulation::new(kernel.selector(), spec.attr);
        let walked = drill_down_via(&mut pop, spec, drill_config, budget, |store, spec, budget| {
            let is_root = std::mem::take(&mut at_root);
            let root_key = (Vec::new(), *spec);
            if is_root {
                if let Some(hit) = results.get(&root_key) {
                    return Ok(hit.clone());
                }
            }
            let result = rank_parallel(exec, &store, compare_config, spec, budget)?;
            if is_root {
                results.insert(root_key, result.clone());
            }
            Ok(result)
        });
        return match walked {
            Ok(levels) => BatchOutcome::Drill(levels),
            Err(e) => BatchOutcome::from_error(&e),
        };
    }

    let mut levels: Vec<DrillLevel> = Vec::new();
    for depth in 0..=path.len() {
        if let Err(e) = budget.check() {
            return BatchOutcome::from_error(&CompareError::Fault(e));
        }
        if let Err(e) = fail::inject("compare.drill-level") {
            return BatchOutcome::from_error(&CompareError::Fault(e));
        }
        let Some(prefix) = path.get(..depth) else {
            break; // depth <= path.len() by the loop bound
        };
        let current = match conditioned_selector(kernel, prefix, memo) {
            Ok(pop) => pop,
            Err(msg) => return BatchOutcome::Failed { message: msg },
        };
        let mut excluded: Vec<usize> = vec![spec.attr];
        excluded.extend(prefix.iter().map(|c| c.attr));
        let attrs = candidate_attrs_in(kernel.schema(), spec.attr, &excluded);
        if attrs.len() < 2 {
            break; // nothing left to rank under these conditions
        }
        let key = (prefix.to_vec(), *spec);
        let result = if let Some(hit) = memo.results.get(&key) {
            hit.clone()
        } else {
            let computed = current
                .build_store_anchored(Some(attrs), spec.attr)
                .map(Arc::new)
                .map_err(CompareError::Cube)
                .and_then(|store| rank_parallel(exec, &store, compare_config, spec, budget));
            match computed {
                Ok(r) => {
                    memo.results.insert(key, r.clone());
                    r
                }
                Err(e) if depth == 0 => return BatchOutcome::from_error(&e),
                Err(e @ CompareError::Fault(_)) => return BatchOutcome::from_error(&e),
                Err(_) => break, // conditioned data too thin — stop cleanly
            }
        };
        levels.push(DrillLevel {
            conditions: prefix.to_vec(),
            condition_labels: prefix.iter().map(|c| c.display(kernel.schema())).collect(),
            result,
        });
    }
    BatchOutcome::Drill(levels)
}

/// The selector satisfying `prefix` — each step a bitmap AND — built
/// incrementally and shared across every item whose path starts the same
/// way. Error messages match the retired record-walk path exactly (the
/// kernel raises the same `DataError`s), so batch outcomes stay
/// byte-identical.
fn conditioned_selector(
    kernel: &Arc<ColumnIndex>,
    prefix: &[Condition],
    memo: &mut DrillMemo,
) -> Result<PopulationSelector, String> {
    let Some((&cond, parent_prefix)) = prefix.split_last() else {
        return Ok(memo
            .pops
            .entry(Vec::new())
            .or_insert_with(|| kernel.selector())
            .clone());
    };
    if let Some(hit) = memo.pops.get(prefix) {
        return Ok(hit.clone());
    }
    let parent = conditioned_selector(kernel, parent_prefix, memo)?;
    let sub = parent
        .narrow(cond.attr, cond.value)
        .map_err(|e| format!("condition {} is invalid: {e}", cond.display(kernel.schema())))?;
    if sub.count() == 0 {
        return Err(format!(
            "condition {} selects no records",
            cond.display(kernel.schema())
        ));
    }
    memo.pops.insert(prefix.to_vec(), sub.clone());
    Ok(sub)
}
