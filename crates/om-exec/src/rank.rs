//! Sharded ranking: Fig. 3's per-attribute loop split across the pool.
//!
//! Determinism contract: [`rank_parallel`] produces output
//! **byte-identical** to [`om_compare::Comparator::compare_budgeted`]
//! for every store, spec and worker count. It holds by construction:
//! both paths run the same `normalize → score_candidate → assemble`
//! stages from om-compare; the only thing sharding changes is *which
//! thread* scores each attribute, and the per-shard score vectors are
//! concatenated back into exact store-attribute order before the stable
//! canonical sorts.

use std::sync::Arc;

use om_compare::{
    assemble, normalize, score_candidate, AttrScore, CompareConfig, CompareError, ComparisonResult,
    ComparisonSpec, NormalizedSpec,
};
use om_cube::{CubeStore, StoreSnapshot};
use om_fault::{fail, Budget};

use crate::pool::Executor;

/// A cheaply clonable, thread-shareable handle to a cube store — the
/// form a store must take to be fanned out to pool workers. Both the
/// engine's epoch snapshots and ad-hoc `Arc<CubeStore>`s qualify.
pub trait StoreRef: Clone + Send + Sync + 'static {
    /// The underlying store.
    fn store(&self) -> &CubeStore;
}

impl StoreRef for Arc<CubeStore> {
    fn store(&self) -> &CubeStore {
        self
    }
}

impl StoreRef for Arc<StoreSnapshot> {
    fn store(&self) -> &CubeStore {
        self
    }
}

/// Rank all candidate attributes for `spec`, sharding the loop across
/// `exec`'s workers. With a width-1 executor this is exactly the serial
/// comparator; wider executors split the candidate set into one
/// contiguous shard per worker.
///
/// The budget is checked once per attribute inside every shard, so an
/// expired deadline stops each shard within one attribute's worth of
/// work — same granularity as serial.
///
/// # Errors
/// See [`CompareError`]; when shards fail concurrently the error of the
/// earliest shard (lowest attribute positions) wins, matching the error
/// serial execution would have hit first.
pub fn rank_parallel<S: StoreRef>(
    exec: &Executor,
    store: &S,
    config: &CompareConfig,
    spec: &ComparisonSpec,
    budget: &Budget,
) -> Result<ComparisonResult, CompareError> {
    budget.check()?;
    fail::inject("exec.rank")?;
    let norm = normalize(store.store(), config, spec)?;
    let candidates: Vec<usize> = store
        .store()
        .attrs()
        .iter()
        .copied()
        .filter(|&a| a != norm.spec.attr)
        .collect();
    let shards = exec.width().min(candidates.len()).max(1);
    if shards <= 1 {
        let scores = score_shard(store.store(), config, &norm, &candidates, budget)?;
        return Ok(assemble(norm, scores, config));
    }

    type ShardJob = Box<dyn FnOnce() -> Result<Vec<AttrScore>, CompareError> + Send>;
    let chunk = candidates.len().div_ceil(shards);
    let jobs: Vec<ShardJob> = candidates
        .chunks(chunk)
        .map(|shard| {
            let store = store.clone();
            let config = config.clone();
            let norm = norm.clone();
            let shard = shard.to_vec();
            let budget = budget.clone();
            Box::new(move || score_shard(store.store(), &config, &norm, &shard, &budget))
                as ShardJob
        })
        .collect();

    let scores = gather_in_order(exec.scatter(jobs))?
        .into_iter()
        .flatten()
        .collect();
    Ok(assemble(norm, scores, config))
}

/// Deterministic merge of per-shard partial results: shards are gathered
/// in shard order and the **earliest** shard's error wins — the error a
/// serial execution over the concatenated shards would have reached
/// first. This is the merge rule `rank_parallel` applies to in-process
/// pool shards, exported so a distributed coordinator can apply the
/// identical rule to per-process shards.
///
/// # Errors
/// The first (lowest-index) shard error, verbatim.
pub fn gather_in_order<T, E>(
    shards: impl IntoIterator<Item = Result<T, E>>,
) -> Result<Vec<T>, E> {
    let mut out = Vec::new();
    for shard in shards {
        out.push(shard?);
    }
    Ok(out)
}

/// Score one contiguous shard of candidate attributes, in order.
fn score_shard(
    store: &CubeStore,
    config: &CompareConfig,
    norm: &NormalizedSpec,
    shard: &[usize],
    budget: &Budget,
) -> Result<Vec<AttrScore>, CompareError> {
    let mut out = Vec::with_capacity(shard.len());
    for &other in shard {
        budget.check()?;
        out.push(score_candidate(store, config, norm, other)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_compare::Comparator;
    use om_cube::StoreBuildOptions;
    use om_synth::paper_scenario;

    fn fixture() -> (Arc<CubeStore>, ComparisonSpec) {
        let (ds, truth) = paper_scenario(20_000, 11);
        let store =
            Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get(&truth.baseline_value).unwrap(),
            value_2: s.attribute(attr).domain().get(&truth.target_value).unwrap(),
            class: s.class().domain().get(&truth.target_class).unwrap(),
        };
        (store, spec)
    }

    #[test]
    fn parallel_equals_serial_across_widths() {
        let (store, spec) = fixture();
        let config = CompareConfig::default();
        let serial = Comparator::new(&store).compare(&spec).unwrap();
        for workers in [1, 2, 3, 8] {
            let exec = Executor::new(&crate::ExecConfig { workers });
            let parallel =
                rank_parallel(&exec, &store, &config, &spec, &Budget::unlimited()).unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn expired_budget_faults() {
        let (store, spec) = fixture();
        let exec = Executor::new(&crate::ExecConfig { workers: 4 });
        let spent = Budget::with_timeout(std::time::Duration::ZERO);
        let r = rank_parallel(&exec, &store, &CompareConfig::default(), &spec, &spent);
        assert!(matches!(r, Err(CompareError::Fault(_))), "{r:?}");
    }

    #[test]
    fn invalid_spec_errors_before_touching_the_pool() {
        let (store, spec) = fixture();
        let exec = Executor::serial();
        let bad = ComparisonSpec {
            value_2: spec.value_1,
            ..spec
        };
        let r = rank_parallel(
            &exec,
            &store,
            &CompareConfig::default(),
            &bad,
            &Budget::unlimited(),
        );
        assert!(matches!(r, Err(CompareError::InvalidSpec(_))));
    }
}
