//! Execution configuration: how wide the comparator is allowed to go.

/// Parallelism policy for comparator execution.
///
/// `workers == 1` is the serial path: everything runs inline on the
/// calling thread and the worker pool is never touched. `workers == 0`
/// means "all cores". Any other value caps the shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum concurrent shards per request; 0 = number of cores.
    pub workers: usize,
}

/// The serial policy, usable in `const` and `static` contexts.
pub const SERIAL: ExecConfig = ExecConfig { workers: 1 };

impl Default for ExecConfig {
    /// Default to all cores: parallel output is byte-identical to
    /// serial, so there is no correctness reason to default narrower.
    fn default() -> Self {
        Self { workers: 0 }
    }
}

impl ExecConfig {
    /// The serial policy.
    #[must_use]
    pub fn serial() -> Self {
        SERIAL
    }

    /// Whether this policy ever leaves the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.effective_workers() == 1
    }

    /// The concrete worker count: `workers`, with 0 resolved to the
    /// machine's available parallelism (at least 1).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(ExecConfig { workers: 0 }.effective_workers() >= 1);
    }

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(ExecConfig { workers: 7 }.effective_workers(), 7);
        assert!(ExecConfig::serial().is_serial());
        assert!(!ExecConfig { workers: 2 }.is_serial());
    }
}
