//! Property-based tests of the engine façade: invariants that must hold
//! for any dataset the engine accepts.

use om_data::{Cell, Dataset, DatasetBuilder};
use om_engine::{EngineConfig, OpportunityMap};
use proptest::prelude::*;

/// Random small mixed dataset with at least two classes present.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u8..3, -50.0f64..50.0, 0u8..2), 10..150).prop_map(|rows| {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .continuous("X")
            .class("C");
        let al = ["a0", "a1", "a2"];
        let cl = ["c0", "c1"];
        for (i, (a, x, c)) in rows.iter().enumerate() {
            // Force both classes to appear at least once.
            let class = if i == 0 { 0 } else if i == 1 { 1 } else { *c as usize };
            b.push_row(&[
                Cell::Str(al[*a as usize]),
                Cell::Num(*x),
                Cell::Str(cl[class]),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_builds_and_is_fully_categorical(ds in arb_dataset()) {
        let om = OpportunityMap::build(ds.clone(), EngineConfig::default()).unwrap();
        prop_assert!(om.dataset().all_categorical());
        prop_assert_eq!(om.dataset().n_rows(), ds.n_rows());
        // Cube totals match record counts.
        for &a in om.store().attrs() {
            prop_assert_eq!(om.store().one_dim(a).unwrap().total(), ds.n_rows() as u64);
        }
    }

    #[test]
    fn gi_is_total_over_attributes(ds in arb_dataset()) {
        let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
        let gi = om.run_general_impressions(om.exec_ctx(None)).unwrap();
        let n_attrs = om.store().attrs().len();
        prop_assert_eq!(gi.trends.len(), n_attrs * om.dataset().schema().n_classes());
        prop_assert_eq!(gi.influence.len(), n_attrs);
        for i in &gi.influence {
            prop_assert!(i.chi2 >= 0.0);
            prop_assert!((0.0..=1.0).contains(&i.p_value));
        }
    }

    #[test]
    fn views_never_panic(ds in arb_dataset()) {
        let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
        let overall = om.overall_view(&Default::default());
        prop_assert!(!overall.is_empty());
        let detailed = om.detailed_view("A", &Default::default()).unwrap();
        prop_assert!(detailed.contains("Detailed view"));
    }
}

#[test]
fn collapse_option_reduces_cardinality() {
    // One attribute with a long rare tail.
    let mut b = DatasetBuilder::new().categorical("A").class("C");
    for i in 0..400 {
        let a = if i < 350 {
            "common"
        } else {
            // 50 singleton-ish rare values
            match i % 10 {
                0 => "r0", 1 => "r1", 2 => "r2", 3 => "r3", 4 => "r4",
                5 => "r5", 6 => "r6", 7 => "r7", 8 => "r8", _ => "r9",
            }
        };
        b.push_row(&[Cell::Str(a), Cell::Str(if i % 2 == 0 { "y" } else { "n" })])
            .unwrap();
    }
    let ds = b.finish().unwrap();

    let plain = OpportunityMap::build(ds.clone(), EngineConfig::default()).unwrap();
    let collapsed = OpportunityMap::build(
        ds,
        EngineConfig {
            collapse_min_count: Some(20),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let card = |om: &OpportunityMap| om.dataset().schema().attribute(0).cardinality();
    assert_eq!(card(&plain), 11);
    assert_eq!(card(&collapsed), 2, "common + other");
    assert_eq!(
        collapsed.dataset().value_counts(0).unwrap().iter().sum::<u64>(),
        400
    );
}
