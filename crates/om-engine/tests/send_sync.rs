//! Static thread-safety guarantees: om-server shares one
//! `Arc<OpportunityMap>` across its worker pool, so the engine (and the
//! result types it hands out) must be `Send + Sync`. These assertions
//! fail at *compile* time if a non-thread-safe member (an `Rc`, a raw
//! pointer, a `RefCell`) ever sneaks into the engine.

use std::sync::Arc;

use om_engine::{EngineConfig, GiReport, OpportunityMap, Session};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn opportunity_map_is_send_and_sync() {
    assert_send_sync::<OpportunityMap>();
    assert_send_sync::<Arc<OpportunityMap>>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<GiReport>();
    assert_send_sync::<Session>();
}

#[test]
fn shared_engine_answers_from_many_threads() {
    let (ds, _) = om_synth::paper_scenario(10_000, 44);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let expected = om
        .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
        .unwrap();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let om = Arc::clone(&om);
            let top = expected.top().unwrap().attr_name.clone();
            std::thread::spawn(move || {
                let result = om
                    .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
                    .unwrap();
                assert_eq!(result.top().unwrap().attr_name, top);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
