//! The engine façade.

use std::fmt;
use std::sync::Arc;

use om_compare::{
    compare_groups, drill_down_budgeted, CompareConfig, CompareError, Comparator,
    ComparisonResult, ComparisonSpec, DrillConfig, DrillLevel, GroupSpec,
};
use om_car::{mine, mine_restricted, CarRule, Condition, MinerConfig};
use om_cube::{CubeError, CubeStore, CubeView, SharedStore, StoreBuildOptions, StoreSnapshot};
use om_data::{DataError, Dataset};
use om_discretize::{discretize_all, CutPoints, Method};
use om_fault::{fail, Budget, FaultError};
use om_ingest::{IngestConfig, IngestError, IngestHandle};
use om_gi::{
    mine_exceptions_budgeted, mine_influence_budgeted, mine_trends_budgeted, Exception,
    ExceptionConfig, InfluenceResult, TrendConfig, TrendResult,
};
use om_viz::compare_view::{render_top_attribute, CompareViewOptions};
use om_viz::detailed::{render_detailed, DetailedOptions};
use om_viz::overall::{render_overall, OverallOptions};

/// Engine-wide configuration: one knob per component.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Discretization method for continuous attributes (Section V-A's
    /// first component). Supervised MDL by default.
    pub discretization: Method,
    /// Cube-store build options (attribute selection, parallelism).
    pub store: StoreBuildOptions,
    /// Comparator configuration (Section IV).
    pub compare: CompareConfig,
    /// Trend miner thresholds.
    pub trend: TrendConfig,
    /// Exception miner thresholds.
    pub exception: ExceptionConfig,
    /// When set, merge values with fewer records than this into an
    /// `other` bucket before building cubes (high-cardinality hygiene;
    /// see `om_data::collapse`).
    pub collapse_min_count: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            discretization: Method::EntropyMdl,
            store: StoreBuildOptions::default(),
            compare: CompareConfig::default(),
            trend: TrendConfig::default(),
            exception: ExceptionConfig::default(),
            collapse_min_count: None,
        }
    }
}

/// Unified error type of the engine.
#[derive(Debug)]
pub enum EngineError {
    Data(DataError),
    Cube(CubeError),
    Compare(CompareError),
    /// A name lookup failed (attribute, value or class label).
    Unknown(String),
    /// The request ran out of budget, was cancelled, or hit an injected
    /// fault — work was cut short, not wrong.
    Fault(FaultError),
    /// Live ingestion failed (bad rows, WAL I/O, schema mismatch).
    Ingest(IngestError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::Cube(e) => write!(f, "cube error: {e}"),
            EngineError::Compare(e) => write!(f, "comparison error: {e}"),
            EngineError::Unknown(what) => write!(f, "unknown name: {what}"),
            EngineError::Fault(e) => write!(f, "{e}"),
            EngineError::Ingest(e) => write!(f, "ingest error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}
impl From<CubeError> for EngineError {
    fn from(e: CubeError) -> Self {
        match e {
            CubeError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Cube(other),
        }
    }
}
impl From<CompareError> for EngineError {
    fn from(e: CompareError) -> Self {
        match e {
            // Unwrap nested faults so callers (the server's status
            // mapping, the CLI's message) match on one variant.
            CompareError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Compare(other),
        }
    }
}
impl From<FaultError> for EngineError {
    fn from(e: FaultError) -> Self {
        EngineError::Fault(e)
    }
}
impl From<IngestError> for EngineError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Ingest(other),
        }
    }
}

impl EngineError {
    /// Whether this error means "the service is busy, retry later"
    /// (deadline exceeded / cancelled) rather than a fault of the request.
    #[must_use]
    pub fn is_overload(&self) -> bool {
        matches!(self, EngineError::Fault(f) if f.is_overload())
    }
}

/// The general-impressions report: trends + exceptions + influence.
#[derive(Debug, Clone)]
pub struct GiReport {
    pub trends: Vec<TrendResult>,
    pub exceptions: Vec<Exception>,
    pub influence: Vec<InfluenceResult>,
}

/// The assembled Opportunity Map system over one dataset.
///
/// The cube store lives behind a [`SharedStore`]: every query pins one
/// immutable [`StoreSnapshot`] up front, so a concurrent live-ingestion
/// compactor publishing a new generation mid-query can never produce a
/// torn read — the query finishes against the generation it started on.
pub struct OpportunityMap {
    dataset: Dataset,
    shared: SharedStore,
    config: EngineConfig,
    cuts: Vec<(usize, CutPoints)>,
}

impl OpportunityMap {
    /// Build the system: discretize all continuous attributes, then build
    /// the full cube store (the paper's offline step).
    ///
    /// # Errors
    /// Propagates discretization and cube-construction failures.
    pub fn build(mut dataset: Dataset, config: EngineConfig) -> Result<Self, EngineError> {
        if let Some(min_count) = config.collapse_min_count {
            om_data::collapse::collapse_all(&mut dataset, min_count)?;
        }
        let cuts = discretize_all(&mut dataset, &config.discretization)?;
        let store = CubeStore::build(&dataset, &config.store)?;
        Ok(Self {
            dataset,
            shared: SharedStore::new(store),
            config,
            cuts,
        })
    }

    /// The (discretized) dataset. With live ingestion running this is the
    /// *base* dataset the engine was built from; ingested rows exist only
    /// in the cube store.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Pin the current store generation. The snapshot derefs to
    /// [`CubeStore`] and stays valid (and unchanging) however long it is
    /// held, even while ingestion publishes newer generations.
    pub fn store(&self) -> Arc<StoreSnapshot> {
        self.shared.snapshot()
    }

    /// The shared store handle itself (for wiring ingestion or metrics).
    pub fn shared_store(&self) -> &SharedStore {
        &self.shared
    }

    /// The store generation currently being served.
    pub fn store_generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Start live ingestion into this engine's store: appended rows are
    /// WAL-logged under `config.wal_dir`, built into delta cubes, merged
    /// off the query path, and published as new store generations.
    /// Unmerged WAL segments from a previous run are replayed first.
    ///
    /// # Errors
    /// Fails if the schema still has continuous attributes the engine did
    /// not discretize, or on WAL I/O / replay errors.
    pub fn start_ingest(&self, config: &IngestConfig) -> Result<IngestHandle, EngineError> {
        Ok(IngestHandle::start(
            self.dataset.schema().clone(),
            &self.cuts,
            self.shared.clone(),
            config,
        )?)
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the comparator configuration (cubes are untouched; the
    /// adjustment happens at comparison time).
    pub fn with_compare_config(mut self, compare: CompareConfig) -> Self {
        self.config.compare = compare;
        self
    }

    /// Cut points chosen during discretization, per attribute index.
    pub fn cut_points(&self) -> &[(usize, CutPoints)] {
        &self.cuts
    }

    /// Resolve an attribute name.
    ///
    /// # Errors
    /// Fails if no attribute has that name.
    pub fn attr_index(&self, name: &str) -> Result<usize, EngineError> {
        self.dataset
            .schema()
            .attr_index(name)
            .ok_or_else(|| EngineError::Unknown(format!("attribute {name:?}")))
    }

    /// Resolve a value label of an attribute.
    ///
    /// # Errors
    /// Fails on unknown attribute or label.
    pub fn value_id(&self, attr: usize, label: &str) -> Result<u32, EngineError> {
        self.dataset
            .schema()
            .attribute(attr)
            .domain()
            .get(label)
            .ok_or_else(|| {
                EngineError::Unknown(format!(
                    "value {label:?} of attribute {:?}",
                    self.dataset.schema().attribute(attr).name()
                ))
            })
    }

    /// Resolve a class label.
    ///
    /// # Errors
    /// Fails on an unknown class label.
    pub fn class_id(&self, label: &str) -> Result<u32, EngineError> {
        self.dataset
            .schema()
            .class()
            .domain()
            .get(label)
            .ok_or_else(|| EngineError::Unknown(format!("class {label:?}")))
    }

    /// The overall visualization (Fig. 5).
    pub fn overall_view(&self, options: &OverallOptions) -> String {
        render_overall(&self.store(), options)
    }

    /// The detailed visualization of one attribute (Fig. 6).
    ///
    /// # Errors
    /// Fails on an unknown attribute name.
    pub fn detailed_view(
        &self,
        attr_name: &str,
        options: &DetailedOptions,
    ) -> Result<String, EngineError> {
        let attr = self.attr_index(attr_name)?;
        let cube = self.store().one_dim(attr)?;
        let view = CubeView::from_cube(&cube)?;
        Ok(render_detailed(&view, options))
    }

    /// Run the comparator on a resolved spec.
    ///
    /// # Errors
    /// See [`CompareError`].
    pub fn compare(&self, spec: &ComparisonSpec) -> Result<ComparisonResult, EngineError> {
        self.compare_budgeted(spec, &Budget::unlimited())
    }

    /// [`compare`](Self::compare) under a cooperative [`Budget`]: the
    /// comparison checks the deadline per attribute and returns
    /// [`EngineError::Fault`] instead of running past it.
    ///
    /// # Errors
    /// See [`CompareError`]; [`EngineError::Fault`] on budget overrun.
    pub fn compare_budgeted(
        &self,
        spec: &ComparisonSpec,
        budget: &Budget,
    ) -> Result<ComparisonResult, EngineError> {
        fail::inject("engine.compare")?;
        let snapshot = self.store();
        Ok(Comparator::with_config(&snapshot, self.config.compare.clone())
            .compare_budgeted(spec, budget)?)
    }

    /// Run the comparator by names: "compare ph1 vs ph2 of PhoneModel on
    /// class dropped" — the exact gesture of Section V-B's case study.
    ///
    /// # Errors
    /// Fails on unknown names or comparator errors.
    pub fn compare_by_name(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonResult, EngineError> {
        self.compare_by_name_budgeted(attr_name, value_1, value_2, class, &Budget::unlimited())
    }

    /// [`compare_by_name`](Self::compare_by_name) under a cooperative
    /// [`Budget`].
    ///
    /// # Errors
    /// Fails on unknown names, comparator errors, or
    /// [`EngineError::Fault`] on budget overrun.
    pub fn compare_by_name_budgeted(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<ComparisonResult, EngineError> {
        let attr = self.attr_index(attr_name)?;
        let spec = ComparisonSpec {
            attr,
            value_1: self.value_id(attr, value_1)?,
            value_2: self.value_id(attr, value_2)?,
            class: self.class_id(class)?,
        };
        self.compare_budgeted(&spec, budget)
    }

    /// Text rendering of a comparison's top attribute (Fig. 7).
    pub fn comparison_view(&self, result: &ComparisonResult) -> String {
        render_top_attribute(result, &CompareViewOptions::default())
    }

    /// Compare two *groups* of values of one attribute (merged
    /// sub-populations; same measure).
    ///
    /// # Errors
    /// Fails on unknown names or group-validation failures.
    pub fn compare_groups_by_name(
        &self,
        attr_name: &str,
        group_1: &[&str],
        group_2: &[&str],
        class: &str,
    ) -> Result<ComparisonResult, EngineError> {
        let attr = self.attr_index(attr_name)?;
        let resolve = |labels: &[&str]| -> Result<Vec<u32>, EngineError> {
            labels.iter().map(|l| self.value_id(attr, l)).collect()
        };
        let spec = GroupSpec {
            attr,
            group_1: resolve(group_1)?,
            group_2: resolve(group_2)?,
            class: self.class_id(class)?,
        };
        Ok(compare_groups(
            &self.store(),
            &spec,
            &self.config.compare,
        )?)
    }

    /// Automated drill-down from a named comparison: condition on each
    /// level's top finding and compare again (Section III-B's restricted
    /// analysis, automated).
    ///
    /// # Errors
    /// Fails on unknown names or if the root comparison fails.
    pub fn drill_down_by_name(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
    ) -> Result<Vec<DrillLevel>, EngineError> {
        self.drill_down_by_name_budgeted(
            attr_name,
            value_1,
            value_2,
            class,
            config,
            &Budget::unlimited(),
        )
    }

    /// [`drill_down_by_name`](Self::drill_down_by_name) under a
    /// cooperative [`Budget`]: the walk re-checks the deadline before
    /// each level's cube rebuild — the engine's most expensive
    /// interactive path.
    ///
    /// # Errors
    /// Fails on unknown names, a failed root comparison, or
    /// [`EngineError::Fault`] on budget overrun at any depth.
    pub fn drill_down_by_name_budgeted(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<DrillLevel>, EngineError> {
        fail::inject("engine.drill")?;
        let attr = self.attr_index(attr_name)?;
        let spec = ComparisonSpec {
            attr,
            value_1: self.value_id(attr, value_1)?,
            value_2: self.value_id(attr, value_2)?,
            class: self.class_id(class)?,
        };
        Ok(drill_down_budgeted(&self.dataset, &spec, config, budget)?)
    }

    /// Mine all general impressions (trends, exceptions, influence).
    pub fn general_impressions(&self) -> GiReport {
        self.general_impressions_budgeted(&Budget::unlimited())
            .expect("unlimited budget never trips")
    }

    /// [`general_impressions`](Self::general_impressions) under a
    /// cooperative [`Budget`]: each miner checks the deadline per
    /// attribute.
    ///
    /// # Errors
    /// [`EngineError::Fault`] on budget overrun.
    pub fn general_impressions_budgeted(&self, budget: &Budget) -> Result<GiReport, EngineError> {
        fail::inject("engine.gi")?;
        // One snapshot across all three miners: trends, exceptions and
        // influence must describe the same store generation.
        let snapshot = self.store();
        Ok(GiReport {
            trends: mine_trends_budgeted(&snapshot, &self.config.trend, budget)?,
            exceptions: mine_exceptions_budgeted(&snapshot, &self.config.exception, budget)?,
            influence: mine_influence_budgeted(&snapshot, budget)?,
        })
    }

    /// Render the general-impressions report as text (top `n` entries per
    /// section), including the pair-cube interaction exceptions.
    pub fn gi_report(&self, n: usize) -> String {
        use om_gi::{mine_pair_exceptions, PairExceptionConfig};
        use om_viz::gi_view;
        let gi = self.general_impressions();
        let pair = mine_pair_exceptions(&self.store(), &PairExceptionConfig::default());
        let mut out = String::new();
        out.push_str(&gi_view::render_trends(
            &gi.trends,
            false,
            om_viz::ColorMode::Plain,
        ));
        out.push('\n');
        out.push_str(&gi_view::render_exceptions(&gi.exceptions, n));
        out.push('\n');
        out.push_str(&gi_view::render_pair_exceptions(&pair, n));
        out.push('\n');
        out.push_str(&gi_view::render_influence(&gi.influence, n));
        out
    }

    /// Mine class association rules (the CAR generator component).
    ///
    /// # Errors
    /// Propagates miner validation failures.
    pub fn mine_rules(&self, config: &MinerConfig) -> Result<Vec<CarRule>, EngineError> {
        Ok(mine(&self.dataset, config)?)
    }

    /// Restricted mining with fixed conditions (Section III-B).
    ///
    /// # Errors
    /// Propagates miner validation failures.
    pub fn mine_restricted(
        &self,
        fixed: &[Condition],
        config: &MinerConfig,
    ) -> Result<Vec<CarRule>, EngineError> {
        Ok(mine_restricted(&self.dataset, fixed, config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_synth::paper_scenario;

    fn engine() -> (OpportunityMap, om_synth::GroundTruth) {
        let (ds, truth) = paper_scenario(40_000, 21);
        (
            OpportunityMap::build(ds, EngineConfig::default()).unwrap(),
            truth,
        )
    }

    #[test]
    fn build_discretizes_everything() {
        let (om, _) = engine();
        assert!(om.dataset().all_categorical());
        // SignalStrength and BatteryLevel were continuous.
        assert_eq!(om.cut_points().len(), 2);
        // The store includes the discretized attributes too.
        let sig = om.attr_index("SignalStrength").unwrap();
        assert!(om.store().one_dim(sig).is_ok());
    }

    #[test]
    fn end_to_end_case_study() {
        let (om, truth) = engine();
        let result = om
            .compare_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
            )
            .unwrap();
        assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
        let view = om.comparison_view(&result);
        assert!(view.contains(&truth.expected_top_attr));
    }

    #[test]
    fn views_render() {
        let (om, _) = engine();
        let overall = om.overall_view(&Default::default());
        assert!(overall.contains("dropped"));
        let detailed = om.detailed_view("PhoneModel", &Default::default()).unwrap();
        assert!(detailed.contains("ph1"));
        assert!(om.detailed_view("Nope", &Default::default()).is_err());
    }

    #[test]
    fn general_impressions_nonempty() {
        let (om, _) = engine();
        let gi = om.general_impressions();
        assert_eq!(
            gi.trends.len(),
            om.store().attrs().len() * om.dataset().schema().n_classes()
        );
        assert!(!gi.influence.is_empty());
        // The planted interaction produces at least one exception
        // somewhere (ph2-morning raises TimeOfCall=morning's drop rate).
        assert!(!gi.exceptions.is_empty());
    }

    #[test]
    fn rule_mining_through_engine() {
        let (om, _) = engine();
        let rules = om
            .mine_rules(&MinerConfig {
                min_support: 0.001,
                min_confidence: 0.01,
                max_conditions: 2,
                attrs: None,
            })
            .unwrap();
        assert!(!rules.is_empty());
        let phone = om.attr_index("PhoneModel").unwrap();
        let ph2 = om.value_id(phone, "ph2").unwrap();
        let restricted = om
            .mine_restricted(
                &[Condition::new(phone, ph2)],
                &MinerConfig {
                    min_support: 0.0,
                    min_confidence: 0.0,
                    max_conditions: 2,
                    attrs: None,
                },
            )
            .unwrap();
        assert!(!restricted.is_empty());
    }

    #[test]
    fn expired_budget_surfaces_as_overload_fault() {
        use std::time::Duration;
        let (om, truth) = engine();
        let spent = Budget::with_timeout(Duration::ZERO);
        let r = om.compare_by_name_budgeted(
            &truth.compare_attr,
            &truth.baseline_value,
            &truth.target_value,
            &truth.target_class,
            &spent,
        );
        match r {
            Err(e @ EngineError::Fault(FaultError::DeadlineExceeded { .. })) => {
                assert!(e.is_overload());
                assert!(e.to_string().contains("deadline exceeded"));
            }
            other => panic!("expected deadline fault, got {other:?}"),
        }
        assert!(om.general_impressions_budgeted(&spent).is_err());
        assert!(om
            .drill_down_by_name_budgeted(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                &DrillConfig::default(),
                &spent,
            )
            .is_err());
    }

    #[test]
    fn budgeted_results_match_plain_results() {
        let (om, truth) = engine();
        let plain = om
            .compare_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
            )
            .unwrap();
        let generous = Budget::with_timeout(std::time::Duration::from_secs(600));
        let budgeted = om
            .compare_by_name_budgeted(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                &generous,
            )
            .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn name_resolution_errors() {
        let (om, _) = engine();
        assert!(om.attr_index("Bogus").is_err());
        assert!(om.class_id("bogus").is_err());
        let phone = om.attr_index("PhoneModel").unwrap();
        assert!(om.value_id(phone, "ph99").is_err());
        assert!(om
            .compare_by_name("PhoneModel", "ph1", "ph99", "dropped")
            .is_err());
    }
}
