//! The engine façade.

use std::fmt;
use std::sync::{Arc, OnceLock};

use om_compare::{
    compare_groups, drill_down_via, CompareConfig, CompareError, Comparator, ComparisonResult,
    ComparisonSpec, DrillConfig, DrillLevel, GroupSpec, SelectorPopulation,
};
use om_car::{mine, mine_restricted, CarRule, Condition, MinerConfig};
use om_cube::{
    ColumnIndex, CubeError, CubeStore, CubeView, SharedStore, StoreBuildOptions, StoreSnapshot,
};
use om_data::{DataError, Dataset};
use om_discretize::{discretize_all, CutPoints, Method};
use om_exec::{rank_parallel, BatchItem, BatchOutcome, ExecConfig, Executor};
use om_explore::{ExploreError, ExploreQuery, ExploreReport};
use om_fault::{fail, Budget, FaultError};
use om_ingest::{IngestConfig, IngestError, IngestHandle};
use om_gi::{
    mine_exceptions_budgeted, mine_influence_budgeted, mine_trends_budgeted, Exception,
    ExceptionConfig, InfluenceResult, TrendConfig, TrendResult,
};
use om_viz::compare_view::{render_top_attribute, CompareViewOptions};
use om_viz::detailed::{render_detailed, DetailedOptions};
use om_viz::overall::{render_overall, OverallOptions};

/// Engine-wide configuration: one knob per component.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Discretization method for continuous attributes (Section V-A's
    /// first component). Supervised MDL by default.
    pub discretization: Method,
    /// Cube-store build options (attribute selection, parallelism).
    pub store: StoreBuildOptions,
    /// Comparator configuration (Section IV).
    pub compare: CompareConfig,
    /// Trend miner thresholds.
    pub trend: TrendConfig,
    /// Exception miner thresholds.
    pub exception: ExceptionConfig,
    /// When set, merge values with fewer records than this into an
    /// `other` bucket before building cubes (high-cardinality hygiene;
    /// see `om_data::collapse`).
    pub collapse_min_count: Option<u64>,
    /// Comparator execution policy. Serial by default; a wider policy
    /// sizes the engine's persistent worker pool and routes ranking
    /// through om-exec's sharded path (byte-identical output).
    pub exec: ExecConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            discretization: Method::EntropyMdl,
            store: StoreBuildOptions::default(),
            compare: CompareConfig::default(),
            trend: TrendConfig::default(),
            exception: ExceptionConfig::default(),
            collapse_min_count: None,
            exec: ExecConfig::serial(),
        }
    }
}

/// Per-call execution context: the one argument every query method
/// takes beyond its inputs. Collapses the old `foo`/`foo_budgeted`
/// method pairs and carries the parallelism policy.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    /// Cooperative deadline/cancellation; `None` runs unlimited.
    pub budget: Option<&'a Budget>,
    /// Parallelism policy for this call. Serial runs inline on the
    /// calling thread; anything wider routes through the engine's
    /// worker pool (whose width was fixed by [`EngineConfig::exec`] at
    /// build time). Output is byte-identical either way.
    pub exec: ExecConfig,
}

impl Default for ExecCtx<'_> {
    fn default() -> Self {
        Self {
            budget: None,
            exec: ExecConfig::serial(),
        }
    }
}

impl<'a> ExecCtx<'a> {
    /// Serial, unlimited — the old `foo()` behavior.
    #[must_use]
    pub fn serial() -> Self {
        Self::default()
    }

    /// Serial under `budget` — the old `foo_budgeted()` behavior.
    #[must_use]
    pub fn budgeted(budget: &'a Budget) -> Self {
        Self {
            budget: Some(budget),
            exec: ExecConfig::serial(),
        }
    }

    /// Replace the parallelism policy.
    #[must_use]
    pub fn with_exec(self, exec: ExecConfig) -> Self {
        Self { exec, ..self }
    }
}

/// Unified error type of the engine.
#[derive(Debug)]
pub enum EngineError {
    Data(DataError),
    Cube(CubeError),
    Compare(CompareError),
    /// A name lookup failed (attribute, value or class label).
    Unknown(String),
    /// The request ran out of budget, was cancelled, or hit an injected
    /// fault — work was cut short, not wrong.
    Fault(FaultError),
    /// Live ingestion failed (bad rows, WAL I/O, schema mismatch).
    Ingest(IngestError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::Cube(e) => write!(f, "cube error: {e}"),
            EngineError::Compare(e) => write!(f, "comparison error: {e}"),
            EngineError::Unknown(what) => write!(f, "unknown name: {what}"),
            EngineError::Fault(e) => write!(f, "{e}"),
            EngineError::Ingest(e) => write!(f, "ingest error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}
impl From<CubeError> for EngineError {
    fn from(e: CubeError) -> Self {
        match e {
            CubeError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Cube(other),
        }
    }
}
impl From<CompareError> for EngineError {
    fn from(e: CompareError) -> Self {
        match e {
            // Unwrap nested faults so callers (the server's status
            // mapping, the CLI's message) match on one variant.
            CompareError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Compare(other),
        }
    }
}
impl From<FaultError> for EngineError {
    fn from(e: FaultError) -> Self {
        EngineError::Fault(e)
    }
}
impl From<ExploreError> for EngineError {
    fn from(e: ExploreError) -> Self {
        match e {
            ExploreError::Cube(c) => EngineError::Cube(c),
            ExploreError::Unknown(m) => EngineError::Unknown(m),
            ExploreError::Invalid(m) => EngineError::Compare(CompareError::InvalidSpec(m)),
            ExploreError::Fault(f) => EngineError::Fault(f),
        }
    }
}
impl From<IngestError> for EngineError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Fault(f) => EngineError::Fault(f),
            other => EngineError::Ingest(other),
        }
    }
}

impl EngineError {
    /// Whether this error means "the service is busy, retry later"
    /// (deadline exceeded / cancelled) rather than a fault of the request.
    #[must_use]
    pub fn is_overload(&self) -> bool {
        matches!(self, EngineError::Fault(f) if f.is_overload())
    }
}

/// The general-impressions report: trends + exceptions + influence.
#[derive(Debug, Clone)]
pub struct GiReport {
    pub trends: Vec<TrendResult>,
    pub exceptions: Vec<Exception>,
    pub influence: Vec<InfluenceResult>,
}

/// The assembled Opportunity Map system over one dataset.
///
/// The cube store lives behind a [`SharedStore`]: every query pins one
/// immutable [`StoreSnapshot`] up front, so a concurrent live-ingestion
/// compactor publishing a new generation mid-query can never produce a
/// torn read — the query finishes against the generation it started on.
pub struct OpportunityMap {
    dataset: Dataset,
    shared: SharedStore,
    config: EngineConfig,
    cuts: Vec<(usize, CutPoints)>,
    /// Persistent worker pool for parallel execution, sized by
    /// [`EngineConfig::exec`]. Width 1 spawns no threads at all.
    executor: Executor,
    /// The counting kernel over the *base* dataset (the one drill-downs
    /// and batches condition on — ingested rows exist only in the cube
    /// store, exactly as with the old record walks). Seeded from the
    /// generation-0 store's index when available, built on first use
    /// otherwise.
    kernel: OnceLock<Arc<ColumnIndex>>,
}

impl OpportunityMap {
    /// Build the system: discretize all continuous attributes, then build
    /// the full cube store (the paper's offline step).
    ///
    /// # Errors
    /// Propagates discretization and cube-construction failures.
    pub fn build(mut dataset: Dataset, config: EngineConfig) -> Result<Self, EngineError> {
        if let Some(min_count) = config.collapse_min_count {
            om_data::collapse::collapse_all(&mut dataset, min_count)?;
        }
        let cuts = discretize_all(&mut dataset, &config.discretization)?;
        let store = CubeStore::build(&dataset, &config.store)?;
        let executor = Executor::new(&config.exec);
        let kernel = OnceLock::new();
        if let Some(index) = store.index() {
            let _ = kernel.set(Arc::clone(index));
        }
        Ok(Self {
            dataset,
            shared: SharedStore::new(store),
            config,
            cuts,
            executor,
            kernel,
        })
    }

    /// The counting kernel ([`ColumnIndex`]) over the base dataset —
    /// what drill-downs and batches condition sub-populations with.
    /// Built at most once for the engine's lifetime.
    ///
    /// # Errors
    /// Propagates index construction failures (first call only, and only
    /// when the store was built without one).
    pub fn kernel(&self) -> Result<&Arc<ColumnIndex>, EngineError> {
        if let Some(k) = self.kernel.get() {
            return Ok(k);
        }
        let built = Arc::new(ColumnIndex::build(&self.dataset)?);
        Ok(self.kernel.get_or_init(|| built))
    }

    /// The context a caller should run queries under: the engine's
    /// configured parallelism policy, plus an optional budget.
    #[must_use]
    pub fn exec_ctx<'a>(&self, budget: Option<&'a Budget>) -> ExecCtx<'a> {
        ExecCtx {
            budget,
            exec: self.config.exec,
        }
    }

    /// The (discretized) dataset. With live ingestion running this is the
    /// *base* dataset the engine was built from; ingested rows exist only
    /// in the cube store.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Pin the current store generation. The snapshot derefs to
    /// [`CubeStore`] and stays valid (and unchanging) however long it is
    /// held, even while ingestion publishes newer generations.
    pub fn store(&self) -> Arc<StoreSnapshot> {
        self.shared.snapshot()
    }

    /// The shared store handle itself (for wiring ingestion or metrics).
    pub fn shared_store(&self) -> &SharedStore {
        &self.shared
    }

    /// The store generation currently being served.
    pub fn store_generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Start live ingestion into this engine's store: appended rows are
    /// WAL-logged under `config.wal_dir`, built into delta cubes, merged
    /// off the query path, and published as new store generations.
    /// Unmerged WAL segments from a previous run are replayed first.
    ///
    /// # Errors
    /// Fails if the schema still has continuous attributes the engine did
    /// not discretize, or on WAL I/O / replay errors.
    pub fn start_ingest(&self, config: &IngestConfig) -> Result<IngestHandle, EngineError> {
        Ok(IngestHandle::start(
            self.dataset.schema().clone(),
            &self.cuts,
            self.shared.clone(),
            config,
        )?)
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the comparator configuration (cubes are untouched; the
    /// adjustment happens at comparison time).
    pub fn with_compare_config(mut self, compare: CompareConfig) -> Self {
        self.config.compare = compare;
        self
    }

    /// Cut points chosen during discretization, per attribute index.
    pub fn cut_points(&self) -> &[(usize, CutPoints)] {
        &self.cuts
    }

    /// Resolve an attribute name.
    ///
    /// # Errors
    /// Fails if no attribute has that name.
    pub fn attr_index(&self, name: &str) -> Result<usize, EngineError> {
        self.dataset
            .schema()
            .attr_index(name)
            .ok_or_else(|| EngineError::Unknown(format!("attribute {name:?}")))
    }

    /// Resolve a value label of an attribute.
    ///
    /// # Errors
    /// Fails on unknown attribute or label.
    pub fn value_id(&self, attr: usize, label: &str) -> Result<u32, EngineError> {
        self.dataset
            .schema()
            .attribute(attr)
            .domain()
            .get(label)
            .ok_or_else(|| {
                EngineError::Unknown(format!(
                    "value {label:?} of attribute {:?}",
                    self.dataset.schema().attribute(attr).name()
                ))
            })
    }

    /// Resolve a class label.
    ///
    /// # Errors
    /// Fails on an unknown class label.
    pub fn class_id(&self, label: &str) -> Result<u32, EngineError> {
        self.dataset
            .schema()
            .class()
            .domain()
            .get(label)
            .ok_or_else(|| EngineError::Unknown(format!("class {label:?}")))
    }

    /// The overall visualization (Fig. 5).
    pub fn overall_view(&self, options: &OverallOptions) -> String {
        render_overall(&self.store(), options)
    }

    /// The detailed visualization of one attribute (Fig. 6).
    ///
    /// # Errors
    /// Fails on an unknown attribute name.
    pub fn detailed_view(
        &self,
        attr_name: &str,
        options: &DetailedOptions,
    ) -> Result<String, EngineError> {
        let attr = self.attr_index(attr_name)?;
        let cube = self.store().one_dim(attr)?;
        let view = CubeView::from_cube(&cube)?;
        Ok(render_detailed(&view, options))
    }

    /// Resolve a named comparison ("ph1 vs ph2 of PhoneModel on class
    /// dropped") into a [`ComparisonSpec`].
    ///
    /// # Errors
    /// Fails on unknown names.
    pub fn spec_by_name(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonSpec, EngineError> {
        let attr = self.attr_index(attr_name)?;
        Ok(ComparisonSpec {
            attr,
            value_1: self.value_id(attr, value_1)?,
            value_2: self.value_id(attr, value_2)?,
            class: self.class_id(class)?,
        })
    }

    /// Resolve a named drill condition (`attr = value`).
    ///
    /// # Errors
    /// Fails on unknown names.
    pub fn condition_by_name(&self, attr_name: &str, value: &str) -> Result<Condition, EngineError> {
        let attr = self.attr_index(attr_name)?;
        Ok(Condition::new(attr, self.value_id(attr, value)?))
    }

    /// Run the comparator on a resolved spec under `ctx`: the budget (if
    /// any) is checked per attribute, and a non-serial policy shards the
    /// candidate loop across the engine's worker pool — output is
    /// byte-identical to serial either way.
    ///
    /// # Errors
    /// See [`CompareError`]; [`EngineError::Fault`] on budget overrun.
    pub fn run_compare(
        &self,
        spec: &ComparisonSpec,
        ctx: ExecCtx<'_>,
    ) -> Result<ComparisonResult, EngineError> {
        fail::inject("engine.compare")?;
        let unlimited = Budget::unlimited();
        let budget = ctx.budget.unwrap_or(&unlimited);
        let snapshot = self.store();
        if ctx.exec.is_serial() {
            Ok(Comparator::with_config(&snapshot, self.config.compare.clone())
                .compare_budgeted(spec, budget)?)
        } else {
            Ok(rank_parallel(
                &self.executor,
                &snapshot,
                &self.config.compare,
                spec,
                budget,
            )?)
        }
    }

    /// Run a smart drill-down exploration under `ctx`: budgeted greedy
    /// top-k summaries over the current snapshot, optionally chained
    /// with the comparator (`query.compare`). A non-serial policy
    /// shards candidate scoring across the engine's worker pool —
    /// output is byte-identical to serial either way.
    ///
    /// # Errors
    /// See [`ExploreError`] (mapped into [`EngineError`]);
    /// [`EngineError::Fault`] when the budget expires before any
    /// summary completes — later expiry returns a truncated report.
    pub fn run_explore(
        &self,
        query: &ExploreQuery,
        ctx: ExecCtx<'_>,
    ) -> Result<ExploreReport, EngineError> {
        fail::inject("engine.explore")?;
        let unlimited = Budget::unlimited();
        let budget = ctx.budget.unwrap_or(&unlimited);
        let snapshot = self.store();
        let serial = Executor::serial();
        let exec = if ctx.exec.is_serial() {
            &serial
        } else {
            &self.executor
        };
        Ok(om_explore::explore(
            exec,
            &snapshot,
            &self.config.compare,
            query,
            budget,
        )?)
    }

    /// [`run_compare`](Self::run_compare) by names — the exact gesture
    /// of Section V-B's case study.
    ///
    /// # Errors
    /// Fails on unknown names or comparator errors.
    pub fn run_compare_by_name(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        ctx: ExecCtx<'_>,
    ) -> Result<ComparisonResult, EngineError> {
        let spec = self.spec_by_name(attr_name, value_1, value_2, class)?;
        self.run_compare(&spec, ctx)
    }

    /// Text rendering of a comparison's top attribute (Fig. 7).
    pub fn comparison_view(&self, result: &ComparisonResult) -> String {
        render_top_attribute(result, &CompareViewOptions::default())
    }

    /// Compare two *groups* of values of one attribute (merged
    /// sub-populations; same measure).
    ///
    /// # Errors
    /// Fails on unknown names or group-validation failures.
    pub fn compare_groups_by_name(
        &self,
        attr_name: &str,
        group_1: &[&str],
        group_2: &[&str],
        class: &str,
    ) -> Result<ComparisonResult, EngineError> {
        let attr = self.attr_index(attr_name)?;
        let resolve = |labels: &[&str]| -> Result<Vec<u32>, EngineError> {
            labels.iter().map(|l| self.value_id(attr, l)).collect()
        };
        let spec = GroupSpec {
            attr,
            group_1: resolve(group_1)?,
            group_2: resolve(group_2)?,
            class: self.class_id(class)?,
        };
        Ok(compare_groups(
            &self.store(),
            &spec,
            &self.config.compare,
        )?)
    }

    /// Automated drill-down from a named comparison under `ctx`:
    /// condition on each level's top finding and compare again (Section
    /// III-B's restricted analysis, automated). The walk re-checks the
    /// deadline before each level's cube rebuild — the engine's most
    /// expensive interactive path. Under a non-serial policy each
    /// level's ranking is sharded across the pool.
    ///
    /// # Errors
    /// Fails on unknown names, a failed root comparison, or
    /// [`EngineError::Fault`] on budget overrun at any depth.
    pub fn run_drill_down_by_name(
        &self,
        attr_name: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        ctx: ExecCtx<'_>,
    ) -> Result<Vec<DrillLevel>, EngineError> {
        fail::inject("engine.drill")?;
        let spec = self.spec_by_name(attr_name, value_1, value_2, class)?;
        let unlimited = Budget::unlimited();
        let budget = ctx.budget.unwrap_or(&unlimited);
        let mut pop = SelectorPopulation::new(self.kernel()?.selector(), spec.attr);
        if ctx.exec.is_serial() {
            Ok(drill_down_via(
                &mut pop,
                &spec,
                config,
                budget,
                |store, spec, budget| {
                    Comparator::with_config(&store, config.compare.clone())
                        .compare_budgeted(spec, budget)
                },
            )?)
        } else {
            Ok(drill_down_via(
                &mut pop,
                &spec,
                config,
                budget,
                |store, spec, budget| {
                    rank_parallel(&self.executor, &store, &self.config.compare, spec, budget)
                },
            )?)
        }
    }

    /// Execute a comparison batch (see [`om_exec::run_batch`]): compare
    /// items sharing a base population share one cube pass, drill items
    /// sharing a path prefix share conditioned populations and level
    /// results, and per-item budgets yield partial results — completed
    /// items return even when later ones run out of time. Outcomes come
    /// back in item order; item failures never fail the batch.
    ///
    /// # Errors
    /// Only batch-level failures: an armed `engine.batch` failpoint or
    /// an already-expired batch budget.
    pub fn run_batch(
        &self,
        items: &[BatchItem],
        drill_config: &DrillConfig,
        ctx: ExecCtx<'_>,
    ) -> Result<Vec<BatchOutcome>, EngineError> {
        fail::inject("engine.batch")?;
        let unlimited = Budget::unlimited();
        let budget = ctx.budget.unwrap_or(&unlimited);
        budget.check()?;
        let snapshot = self.store();
        Ok(om_exec::run_batch(
            &self.executor,
            &snapshot,
            self.kernel()?,
            &self.config.compare,
            drill_config,
            items,
            budget,
        ))
    }

    /// Mine all general impressions (trends, exceptions, influence)
    /// under `ctx`: each miner checks the deadline per attribute, and a
    /// non-serial policy scatters the three miners across the pool.
    ///
    /// # Errors
    /// [`EngineError::Fault`] on budget overrun.
    pub fn run_general_impressions(&self, ctx: ExecCtx<'_>) -> Result<GiReport, EngineError> {
        fail::inject("engine.gi")?;
        let unlimited = Budget::unlimited();
        let budget = ctx.budget.unwrap_or(&unlimited);
        // One snapshot across all three miners: trends, exceptions and
        // influence must describe the same store generation.
        let snapshot = self.store();
        if ctx.exec.is_serial() {
            return Ok(GiReport {
                trends: mine_trends_budgeted(&snapshot, &self.config.trend, budget)?,
                exceptions: mine_exceptions_budgeted(&snapshot, &self.config.exception, budget)?,
                influence: mine_influence_budgeted(&snapshot, budget)?,
            });
        }

        enum GiPart {
            Trends(Vec<TrendResult>),
            Exceptions(Vec<Exception>),
            Influence(Vec<InfluenceResult>),
        }
        let job = |part: fn(&StoreSnapshot, &EngineConfig, &Budget) -> Result<GiPart, FaultError>|
         -> Box<dyn FnOnce() -> Result<GiPart, FaultError> + Send> {
            let snapshot = Arc::clone(&snapshot);
            let config = self.config.clone();
            let budget = budget.clone();
            Box::new(move || part(&snapshot, &config, &budget))
        };
        let jobs = vec![
            job(|s, c, b| Ok(GiPart::Trends(mine_trends_budgeted(s, &c.trend, b)?))),
            job(|s, c, b| Ok(GiPart::Exceptions(mine_exceptions_budgeted(s, &c.exception, b)?))),
            job(|s, _, b| Ok(GiPart::Influence(mine_influence_budgeted(s, b)?))),
        ];
        // Scatter preserves job order, so `?` surfaces errors with the
        // same priority as the serial path: trends, then exceptions,
        // then influence.
        let mut parts = self.executor.scatter(jobs).into_iter();
        let mut report = GiReport {
            trends: Vec::new(),
            exceptions: Vec::new(),
            influence: Vec::new(),
        };
        for _ in 0..3 {
            match parts.next().expect("three jobs scattered")? {
                GiPart::Trends(t) => report.trends = t,
                GiPart::Exceptions(e) => report.exceptions = e,
                GiPart::Influence(i) => report.influence = i,
            }
        }
        Ok(report)
    }

    /// Render the general-impressions report as text (top `n` entries per
    /// section), including the pair-cube interaction exceptions.
    pub fn gi_report(&self, n: usize) -> String {
        use om_gi::{mine_pair_exceptions, PairExceptionConfig};
        use om_viz::gi_view;
        let gi = self
            .run_general_impressions(self.exec_ctx(None))
            .expect("unlimited budget never trips");
        let pair = mine_pair_exceptions(&self.store(), &PairExceptionConfig::default());
        let mut out = String::new();
        out.push_str(&gi_view::render_trends(
            &gi.trends,
            false,
            om_viz::ColorMode::Plain,
        ));
        out.push('\n');
        out.push_str(&gi_view::render_exceptions(&gi.exceptions, n));
        out.push('\n');
        out.push_str(&gi_view::render_pair_exceptions(&pair, n));
        out.push('\n');
        out.push_str(&gi_view::render_influence(&gi.influence, n));
        out
    }

    /// Mine class association rules (the CAR generator component).
    ///
    /// # Errors
    /// Propagates miner validation failures.
    pub fn mine_rules(&self, config: &MinerConfig) -> Result<Vec<CarRule>, EngineError> {
        Ok(mine(&self.dataset, config)?)
    }

    /// Restricted mining with fixed conditions (Section III-B).
    ///
    /// # Errors
    /// Propagates miner validation failures.
    pub fn mine_restricted(
        &self,
        fixed: &[Condition],
        config: &MinerConfig,
    ) -> Result<Vec<CarRule>, EngineError> {
        Ok(mine_restricted(&self.dataset, fixed, config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_synth::paper_scenario;

    fn engine() -> (OpportunityMap, om_synth::GroundTruth) {
        let (ds, truth) = paper_scenario(40_000, 21);
        (
            OpportunityMap::build(ds, EngineConfig::default()).unwrap(),
            truth,
        )
    }

    #[test]
    fn build_discretizes_everything() {
        let (om, _) = engine();
        assert!(om.dataset().all_categorical());
        // SignalStrength and BatteryLevel were continuous.
        assert_eq!(om.cut_points().len(), 2);
        // The store includes the discretized attributes too.
        let sig = om.attr_index("SignalStrength").unwrap();
        assert!(om.store().one_dim(sig).is_ok());
    }

    #[test]
    fn end_to_end_case_study() {
        let (om, truth) = engine();
        let result = om
            .run_compare_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                ExecCtx::serial(),
            )
            .unwrap();
        assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
        let view = om.comparison_view(&result);
        assert!(view.contains(&truth.expected_top_attr));
    }

    #[test]
    fn parallel_engine_matches_serial_engine() {
        let (ds, truth) = paper_scenario(40_000, 21);
        let serial = OpportunityMap::build(ds.clone(), EngineConfig::default()).unwrap();
        let parallel = OpportunityMap::build(
            ds,
            EngineConfig {
                exec: ExecConfig { workers: 4 },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let names = (
            truth.compare_attr.as_str(),
            truth.baseline_value.as_str(),
            truth.target_value.as_str(),
            truth.target_class.as_str(),
        );
        let a = serial
            .run_compare_by_name(names.0, names.1, names.2, names.3, serial.exec_ctx(None))
            .unwrap();
        let b = parallel
            .run_compare_by_name(names.0, names.1, names.2, names.3, parallel.exec_ctx(None))
            .unwrap();
        assert_eq!(a, b);
        let da = serial
            .run_drill_down_by_name(
                names.0,
                names.1,
                names.2,
                names.3,
                &DrillConfig::default(),
                serial.exec_ctx(None),
            )
            .unwrap();
        let db = parallel
            .run_drill_down_by_name(
                names.0,
                names.1,
                names.2,
                names.3,
                &DrillConfig::default(),
                parallel.exec_ctx(None),
            )
            .unwrap();
        assert_eq!(da, db);
        let ga = serial.run_general_impressions(serial.exec_ctx(None)).unwrap();
        let gb = parallel
            .run_general_impressions(parallel.exec_ctx(None))
            .unwrap();
        assert_eq!(ga.trends, gb.trends);
        assert_eq!(ga.exceptions, gb.exceptions);
        assert_eq!(ga.influence, gb.influence);
    }

    #[test]
    fn batch_outcomes_arrive_in_item_order() {
        let (om, truth) = engine();
        let spec = om
            .spec_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
            )
            .unwrap();
        let bogus = ComparisonSpec {
            value_2: spec.value_1,
            ..spec
        };
        let items = vec![
            BatchItem::Compare {
                spec,
                budget_ms: None,
            },
            BatchItem::Compare {
                spec: bogus,
                budget_ms: None,
            },
            BatchItem::Drill {
                spec,
                path: Vec::new(),
                budget_ms: None,
            },
        ];
        let outcomes = om
            .run_batch(&items, &DrillConfig::default(), om.exec_ctx(None))
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        let single = om.run_compare(&spec, om.exec_ctx(None)).unwrap();
        assert!(matches!(&outcomes[0], BatchOutcome::Compare(r) if *r == single));
        assert!(matches!(&outcomes[1], BatchOutcome::Failed { .. }));
        let walked = om
            .run_drill_down_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                &DrillConfig::default(),
                om.exec_ctx(None),
            )
            .unwrap();
        assert!(matches!(&outcomes[2], BatchOutcome::Drill(levels) if *levels == walked));
    }

    #[test]
    fn views_render() {
        let (om, _) = engine();
        let overall = om.overall_view(&Default::default());
        assert!(overall.contains("dropped"));
        let detailed = om.detailed_view("PhoneModel", &Default::default()).unwrap();
        assert!(detailed.contains("ph1"));
        assert!(om.detailed_view("Nope", &Default::default()).is_err());
    }

    #[test]
    fn general_impressions_nonempty() {
        let (om, _) = engine();
        let gi = om.run_general_impressions(ExecCtx::serial()).unwrap();
        assert_eq!(
            gi.trends.len(),
            om.store().attrs().len() * om.dataset().schema().n_classes()
        );
        assert!(!gi.influence.is_empty());
        // The planted interaction produces at least one exception
        // somewhere (ph2-morning raises TimeOfCall=morning's drop rate).
        assert!(!gi.exceptions.is_empty());
    }

    #[test]
    fn rule_mining_through_engine() {
        let (om, _) = engine();
        let rules = om
            .mine_rules(&MinerConfig {
                min_support: 0.001,
                min_confidence: 0.01,
                max_conditions: 2,
                attrs: None,
            })
            .unwrap();
        assert!(!rules.is_empty());
        let phone = om.attr_index("PhoneModel").unwrap();
        let ph2 = om.value_id(phone, "ph2").unwrap();
        let restricted = om
            .mine_restricted(
                &[Condition::new(phone, ph2)],
                &MinerConfig {
                    min_support: 0.0,
                    min_confidence: 0.0,
                    max_conditions: 2,
                    attrs: None,
                },
            )
            .unwrap();
        assert!(!restricted.is_empty());
    }

    #[test]
    fn expired_budget_surfaces_as_overload_fault() {
        use std::time::Duration;
        let (om, truth) = engine();
        let spent = Budget::with_timeout(Duration::ZERO);
        let r = om.run_compare_by_name(
            &truth.compare_attr,
            &truth.baseline_value,
            &truth.target_value,
            &truth.target_class,
            ExecCtx::budgeted(&spent),
        );
        match r {
            Err(e @ EngineError::Fault(FaultError::DeadlineExceeded { .. })) => {
                assert!(e.is_overload());
                assert!(e.to_string().contains("deadline exceeded"));
            }
            other => panic!("expected deadline fault, got {other:?}"),
        }
        assert!(om.run_general_impressions(ExecCtx::budgeted(&spent)).is_err());
        assert!(om
            .run_drill_down_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                &DrillConfig::default(),
                ExecCtx::budgeted(&spent),
            )
            .is_err());
    }

    #[test]
    fn budgeted_results_match_plain_results() {
        let (om, truth) = engine();
        let plain = om
            .run_compare_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                ExecCtx::serial(),
            )
            .unwrap();
        let generous = Budget::with_timeout(std::time::Duration::from_secs(600));
        let budgeted = om
            .run_compare_by_name(
                &truth.compare_attr,
                &truth.baseline_value,
                &truth.target_value,
                &truth.target_class,
                ExecCtx::budgeted(&generous),
            )
            .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn name_resolution_errors() {
        let (om, _) = engine();
        assert!(om.attr_index("Bogus").is_err());
        assert!(om.class_id("bogus").is_err());
        let phone = om.attr_index("PhoneModel").unwrap();
        assert!(om.value_id(phone, "ph99").is_err());
        assert!(om
            .run_compare_by_name("PhoneModel", "ph1", "ph99", "dropped", ExecCtx::serial())
            .is_err());
        assert!(om.condition_by_name("PhoneModel", "ph99").is_err());
        assert!(om.condition_by_name("Bogus", "x").is_err());
    }
}
