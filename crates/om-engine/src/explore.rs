//! The OLAP exploration state machine behind the visualizer.
//!
//! "The user uses the visualizer to explore the rule space based on OLAP
//! operations" (Section V-A). An [`Explorer`] holds the cube currently on
//! screen plus the operation history, so a UI (or a test) can navigate
//! select → slice → dice → roll-up → undo.

use std::sync::Arc;

use om_cube::olap::{dice, rollup, slice};
use om_cube::{CubeError, CubeStore, RuleCube};
use om_data::ValueId;

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreOp {
    /// Load the 2-D cube of one attribute.
    SelectOne { attr: usize },
    /// Load the 3-D cube of an attribute pair.
    SelectPair { a: usize, b: usize },
    /// Fix dimension `dim` to `value`.
    Slice { dim: usize, value: ValueId },
    /// Restrict dimension `dim` to a value subset.
    Dice { dim: usize, values: Vec<ValueId> },
    /// Marginalize dimension `dim` out.
    Rollup { dim: usize },
}

/// Interactive navigation over a [`CubeStore`].
pub struct Explorer<'a> {
    store: &'a CubeStore,
    /// Stack of cubes; the top is what is "on screen". The bottom entry is
    /// the initial selection.
    stack: Vec<Arc<RuleCube>>,
    history: Vec<ExploreOp>,
}

impl<'a> Explorer<'a> {
    /// Start exploring; no cube is selected yet.
    pub fn new(store: &'a CubeStore) -> Self {
        Self {
            store,
            stack: Vec::new(),
            history: Vec::new(),
        }
    }

    /// The cube currently on screen.
    pub fn current(&self) -> Option<&RuleCube> {
        self.stack.last().map(Arc::as_ref)
    }

    /// The operations applied so far.
    pub fn history(&self) -> &[ExploreOp] {
        &self.history
    }

    /// Select the 2-D cube of `attr` (replaces any current exploration).
    ///
    /// # Errors
    /// Fails if `attr` is not in the store.
    pub fn select_one(&mut self, attr: usize) -> Result<&RuleCube, CubeError> {
        let cube = self.store.one_dim(attr)?;
        self.stack = vec![cube];
        self.history = vec![ExploreOp::SelectOne { attr }];
        Ok(self.current().expect("just pushed"))
    }

    /// Select the 3-D cube of the pair `(a, b)`.
    ///
    /// # Errors
    /// Fails if the pair is not in the store.
    pub fn select_pair(&mut self, a: usize, b: usize) -> Result<&RuleCube, CubeError> {
        let cube = self.store.pair(a, b)?;
        self.stack = vec![cube];
        self.history = vec![ExploreOp::SelectPair { a, b }];
        Ok(self.current().expect("just pushed"))
    }

    fn apply<F>(&mut self, op: ExploreOp, f: F) -> Result<&RuleCube, CubeError>
    where
        F: FnOnce(&RuleCube) -> Result<RuleCube, CubeError>,
    {
        let top = self
            .stack
            .last()
            .ok_or_else(|| CubeError::Invalid("no cube selected; call select_* first".into()))?;
        let next = f(top)?;
        self.stack.push(Arc::new(next));
        self.history.push(op);
        Ok(self.current().expect("just pushed"))
    }

    /// Slice the current cube.
    ///
    /// # Errors
    /// Fails without a selection or on invalid dim/value.
    pub fn slice(&mut self, dim: usize, value: ValueId) -> Result<&RuleCube, CubeError> {
        self.apply(ExploreOp::Slice { dim, value }, |c| slice(c, dim, value))
    }

    /// Dice the current cube.
    ///
    /// # Errors
    /// Fails without a selection or on invalid dim/values.
    pub fn dice(&mut self, dim: usize, values: &[ValueId]) -> Result<&RuleCube, CubeError> {
        self.apply(
            ExploreOp::Dice {
                dim,
                values: values.to_vec(),
            },
            |c| dice(c, dim, values),
        )
    }

    /// Roll the current cube up over `dim`.
    ///
    /// # Errors
    /// Fails without a selection or on an invalid dim.
    pub fn rollup(&mut self, dim: usize) -> Result<&RuleCube, CubeError> {
        self.apply(ExploreOp::Rollup { dim }, |c| rollup(c, dim))
    }

    /// Undo the last operation. Returns the cube now on screen (`None` if
    /// the initial selection itself was undone).
    pub fn undo(&mut self) -> Option<&RuleCube> {
        self.stack.pop();
        self.history.pop();
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::StoreBuildOptions;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn store() -> CubeStore {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 4,
            n_records: 2_000,
            seed: 5,
            ..ScaleUpConfig::default()
        });
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    #[test]
    fn navigation_sequence() {
        let store = store();
        let mut ex = Explorer::new(&store);
        assert!(ex.current().is_none());
        assert!(ex.slice(0, 0).is_err(), "no selection yet");

        ex.select_pair(0, 1).unwrap();
        assert_eq!(ex.current().unwrap().n_attr_dims(), 2);

        let total_before = ex.current().unwrap().total();
        ex.slice(0, 1).unwrap();
        assert_eq!(ex.current().unwrap().n_attr_dims(), 1);
        assert!(ex.current().unwrap().total() <= total_before);

        ex.dice(0, &[0, 2]).unwrap();
        assert_eq!(ex.current().unwrap().dims()[0].cardinality(), 2);

        ex.rollup(0).unwrap();
        assert_eq!(ex.current().unwrap().n_attr_dims(), 0);
        assert_eq!(ex.history().len(), 4);
    }

    #[test]
    fn undo_restores_previous_cube() {
        let store = store();
        let mut ex = Explorer::new(&store);
        ex.select_pair(1, 2).unwrap();
        let before = ex.current().unwrap().clone();
        ex.slice(0, 0).unwrap();
        assert_ne!(*ex.current().unwrap(), before);
        let restored = ex.undo().unwrap();
        assert_eq!(*restored, before);
        // Undoing the selection empties the screen.
        assert!(ex.undo().is_none());
        assert!(ex.history().is_empty());
    }

    #[test]
    fn select_replaces_history() {
        let store = store();
        let mut ex = Explorer::new(&store);
        ex.select_pair(0, 1).unwrap();
        ex.slice(0, 0).unwrap();
        ex.select_one(2).unwrap();
        assert_eq!(ex.history(), &[ExploreOp::SelectOne { attr: 2 }]);
        assert_eq!(ex.current().unwrap().n_attr_dims(), 1);
    }

    #[test]
    fn errors_do_not_corrupt_state() {
        let store = store();
        let mut ex = Explorer::new(&store);
        ex.select_pair(0, 1).unwrap();
        let before = ex.current().unwrap().clone();
        assert!(ex.slice(9, 0).is_err());
        assert_eq!(*ex.current().unwrap(), before);
        assert_eq!(ex.history().len(), 1);
    }
}
