//! The Opportunity Map engine.
//!
//! Section V-A: "The Opportunity Map system consists of six main
//! components: a discretizer, a class association rule (CAR) generator, a
//! general impression (GI) miner, a comparator and a visualizer. Given a
//! data set, all continuous attributes are first discretized … The
//! discretized data is fed into the CAR rule generator. The resulting
//! rules form 3-dimensional virtual rule cubes. … The user uses the
//! visualizer to explore the rule space based on OLAP operations. GI miner
//! is called when requested … The comparator is proposed in this paper."
//!
//! [`OpportunityMap`] wires those components into one façade;
//! [`explore::Explorer`] is the OLAP navigation state machine behind the
//! visualizer; [`session`] persists an analysis session.

pub mod engine;
pub mod explore;
pub mod scan;
pub mod session;

pub use engine::{EngineConfig, EngineError, ExecCtx, GiReport, OpportunityMap};
pub use explore::{ExploreOp, Explorer};
pub use scan::{ScanConfig, ScanFinding};
pub use session::Session;

// Re-exported so downstream crates (server, CLI) construct budgets,
// match faults and arm failpoints without depending on om-fault
// directly.
pub use om_fault::{fail, Budget, CancelToken, FaultError};

// Re-exported so downstream crates wire live ingestion and pin store
// snapshots without depending on om-ingest / om-cube directly.
pub use om_cube::{SharedStore, StoreSnapshot};
pub use om_ingest::{IngestConfig, IngestError, IngestHandle, IngestStats};

// Re-exported so downstream crates configure parallel execution and
// build comparison batches without depending on om-exec / om-car
// directly.
pub use om_car::Condition;
pub use om_exec::{BatchItem, BatchOutcome, ExecConfig};

// Smart drill-down: the engine surfaces om-explore's query/report types
// so service layers need no direct om-explore dependency for typing.
pub use om_explore::{
    CompareNames, CondLabel, ExploreError, ExploreQuery, ExploreReport, SummaryRow,
};
